//! Integration tests of the streaming trace-ingestion subsystem: the
//! checked-in fixture corpus parses through format auto-detection, streamed
//! detection equals materialised detection, and `ClusterEngine::replay`
//! bookkeeping reconciles with the engine counters.

use std::path::{Path, PathBuf};

use ftio_core::{
    detect_heatmap, detect_source, detect_trace, BackpressurePolicy, ClusterConfig, ClusterEngine,
    FtioConfig, Pacing, WindowStrategy,
};
use ftio_trace::source::{drain_single, open_path, DrainedInput, SourceFormat};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

fn fixtures() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("tests/data exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.is_file())
        // Sealed snapshots ride in the corpus for the restart-recovery lane
        // but are predictor state, not trace input (tests/robustness.rs
        // restores them).
        .filter(|p| p.extension().map_or(true, |ext| ext != "ftiosnap"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "fixture corpus shrank: {} files (regenerate with \
         `cargo run --example make_fixtures`)",
        paths.len()
    );
    paths
}

fn detection_config() -> FtioConfig {
    FtioConfig {
        sampling_freq: 2.0,
        ..Default::default()
    }
}

/// Every fixture format is represented in the corpus and auto-detects.
#[test]
fn corpus_covers_every_source_format() {
    let mut seen = Vec::new();
    for path in fixtures() {
        let (format, _) = open_path(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        seen.push(format);
    }
    for expected in [
        SourceFormat::Jsonl,
        SourceFormat::Msgpack,
        SourceFormat::TmioJson,
        SourceFormat::TmioMsgpack,
        SourceFormat::DarshanParser,
        SourceFormat::HeatmapText,
        SourceFormat::Recorder,
    ] {
        assert!(
            seen.contains(&expected),
            "no fixture sniffs as {expected:?} (saw {seen:?})"
        );
    }
}

/// The ingestion-corpus smoke check: every fixture parses, yields data, and
/// the detection pipeline finds the period the generator baked in. The
/// `scenario_*` fixtures from the adversarial evaluation harness are exempt
/// from the period guarantee — `scenario_drift.jsonl` exists precisely
/// because a drifting interval defeats the whole-trace DFT (the harness in
/// `tests/accuracy.rs` scores it piecewise instead) — but they must still
/// parse and yield samples.
#[test]
fn every_fixture_parses_and_detects_a_period() {
    for path in fixtures() {
        let (format, mut source) =
            open_path(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let result = detect_source(source.as_mut(), &detection_config())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            result.num_samples > 0,
            "{} ({format:?}): no samples",
            path.display()
        );
        let adversarial = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("scenario_"));
        if adversarial {
            continue;
        }
        let period = result.period().unwrap_or_else(|| {
            panic!(
                "{} ({format:?}): fixtures are periodic by construction",
                path.display()
            )
        });
        assert!(
            period.is_finite() && period > 0.0,
            "{}: period {period}",
            path.display()
        );
    }
}

/// The gzip transport is transparent: the gzipped fixture sniffs to the same
/// format as its plain sibling and produces a bit-identical detection.
#[test]
fn gzipped_fixture_equals_its_plain_sibling() {
    let plain = fixture_dir().join("ior_small.jsonl");
    let gzipped = fixture_dir().join("ior_small.jsonl.gz");
    assert!(
        gzipped.is_file(),
        "gzip fixture missing (regenerate with `cargo run --example make_fixtures`)"
    );
    let (plain_format, mut plain_source) = open_path(&plain).unwrap();
    let (gz_format, mut gz_source) = open_path(&gzipped).unwrap();
    assert_eq!(plain_format, SourceFormat::Jsonl);
    assert_eq!(
        gz_format,
        SourceFormat::Jsonl,
        "transport leaked into format"
    );
    let config = detection_config();
    let from_plain = detect_source(plain_source.as_mut(), &config).unwrap();
    let from_gz = detect_source(gz_source.as_mut(), &config).unwrap();
    assert_eq!(from_plain.num_samples, from_gz.num_samples);
    assert_eq!(from_plain.period(), from_gz.period());
}

/// Acceptance criterion: detection over the *streamed* file equals detection
/// over the *materialised* input, bit for bit, for every fixture.
#[test]
fn streamed_detection_equals_materialized_detection() {
    for path in fixtures() {
        let config = detection_config();
        let (_, mut source) = open_path(&path).unwrap();
        let streamed = detect_source(source.as_mut(), &config).unwrap();

        // Materialise through the same decoders a non-streaming consumer
        // would use, then run the classic entry points.
        let (_, mut source) = open_path(&path).unwrap();
        let materialized = match drain_single(source.as_mut(), "source").unwrap() {
            DrainedInput::Trace(trace) => detect_trace(&trace, &config),
            DrainedInput::Heatmap(heatmap) => detect_heatmap(&heatmap, &config),
        };

        let name = path.display();
        assert_eq!(
            streamed.num_samples, materialized.num_samples,
            "{name}: sample count"
        );
        assert_eq!(
            streamed.sampling_freq.to_bits(),
            materialized.sampling_freq.to_bits(),
            "{name}: sampling frequency"
        );
        assert_eq!(
            streamed.period().map(f64::to_bits),
            materialized.period().map(f64::to_bits),
            "{name}: period"
        );
        assert_eq!(
            streamed.confidence().to_bits(),
            materialized.confidence().to_bits(),
            "{name}: confidence"
        );
        assert_eq!(
            streamed.refined_confidence().to_bits(),
            materialized.refined_confidence().to_bits(),
            "{name}: refined confidence"
        );
    }
}

/// Satellite: replay bookkeeping reconciles with the engine counters for
/// every fixture (`ticks + coalesced + dropped == submitted - rejected`, and
/// the replay-side accept/reject split matches the engine's).
#[test]
fn replay_stats_reconcile_across_the_corpus() {
    for path in fixtures() {
        let (_, mut source) = open_path(&path).unwrap();
        let engine = ClusterEngine::spawn(ClusterConfig {
            shards: 2,
            queue_capacity: 64,
            max_batch: 4,
            policy: BackpressurePolicy::Block,
            ftio: FtioConfig {
                sampling_freq: 2.0,
                use_autocorrelation: false,
                ..Default::default()
            },
            strategy: WindowStrategy::FullHistory,
            ..ClusterConfig::default()
        });
        let replay = engine.replay(source.as_mut(), Pacing::AsFast).unwrap();
        engine.flush();
        let stats = engine.stats();
        let name = path.display();
        assert!(replay.batches > 0, "{name}: no batches replayed");
        assert!(replay.requests > 0, "{name}: no requests replayed");
        assert_eq!(
            stats.submitted,
            replay.accepted + replay.rejected,
            "{name}: engine saw a different submission count"
        );
        assert_eq!(stats.rejected, replay.rejected, "{name}");
        assert_eq!(
            stats.ticks + stats.coalesced + stats.dropped,
            stats.submitted - stats.rejected,
            "{name}: accounting broken: {stats:?}"
        );
        let predictions: usize = engine.finish().values().map(Vec::len).sum();
        assert_eq!(predictions as u64, stats.ticks, "{name}");
    }
}

/// The fixtures are regenerable: the checked-in bytes match what
/// `examples/make_fixtures.rs` describes (spot check via the JSONL fixture).
#[test]
fn jsonl_fixture_matches_its_generator_spec() {
    let path = fixture_dir().join("ior_small.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let requests = ftio_trace::jsonl::decode_requests(&text).unwrap();
    // 2 ranks x 20 bursts, period 10 s, first burst at 5 s.
    assert_eq!(requests.len(), 40);
    assert_eq!(requests[0].start, 5.0);
    assert_eq!(requests[0].end, 7.0);
    assert_eq!(requests[2].start - requests[0].start, 10.0);
}
