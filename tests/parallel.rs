//! Parallel-execution integration tests: the engine's worker/shard
//! decoupling observed from outside the crate.
//!
//! The contracts pinned here:
//!
//! * **Layout-independent results** — replaying the adversarial scenario
//!   suite through the cluster engine produces bit-for-bit identical
//!   predictions whether the engine runs one worker per shard (the historical
//!   layout) or any smaller thread budget. Routing, batching and per-app
//!   ordering are functions of the shard count alone, so the worker count is
//!   purely a throughput knob.
//! * **Zero-allocation steady state under a thread budget** — with fewer
//!   workers than shards, each worker's thread-local FFT plan cache still
//!   converges: steady-state ticks build no plans and grow no scratch.
//! * **Thread-budget derivation** — the `FTIO_THREADS`-style strings the CLI
//!   and the env variable accept parse to the same budgets everywhere, and a
//!   serve daemon's CPU budget is exactly the configured worker count.

use ftio_core::pool;
use ftio_core::server::{Server, ServerConfig, ServerListener};
use ftio_core::{
    BackpressurePolicy, ClusterConfig, ClusterEngine, FtioConfig, OnlinePrediction, Pacing,
    WindowStrategy,
};
use ftio_synth::drift::{all_scenarios, Scenario};
use ftio_trace::{AppId, IoRequest};

fn engine_config(shards: usize, threads: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        queue_capacity: 1024,
        // One submission per tick keeps coalescing independent of worker
        // scheduling, which is what makes cross-layout runs comparable.
        max_batch: 1,
        threads,
        policy: BackpressurePolicy::Block,
        ftio: FtioConfig {
            sampling_freq: 2.0,
            use_autocorrelation: false,
            ..Default::default()
        },
        strategy: WindowStrategy::Adaptive { multiple: 3 },
        ..ClusterConfig::default()
    }
}

/// One prediction as raw bit patterns: time, period, confidence.
type PredictionBits = (u64, Option<u64>, u64);

/// Replays one scenario and returns every prediction as raw bit patterns,
/// sorted per app, so equality means bit-for-bit equality.
fn replay_bits(scenario: &Scenario, threads: usize) -> Vec<(AppId, Vec<PredictionBits>)> {
    let engine = ClusterEngine::spawn(engine_config(4, threads));
    let mut source = scenario.to_source();
    engine
        .replay(&mut source, Pacing::AsFast)
        .expect("memory source cannot fail");
    engine.flush();
    let results = engine.finish();
    let mut apps: Vec<AppId> = scenario.apps();
    apps.sort();
    apps.into_iter()
        .map(|app| {
            let bits = results
                .get(&app)
                .map(|history| {
                    history
                        .iter()
                        .map(|p: &OnlinePrediction| {
                            (
                                p.time.to_bits(),
                                p.period().map(f64::to_bits),
                                p.confidence().to_bits(),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            (app, bits)
        })
        .collect()
}

/// Every adversarial scenario, replayed under shrinking thread budgets, lands
/// on exactly the predictions the historical one-worker-per-shard layout
/// produces.
#[test]
fn scenario_suite_is_bit_identical_across_thread_budgets() {
    for scenario in all_scenarios(42) {
        let legacy = replay_bits(&scenario, 0);
        assert!(
            legacy.iter().any(|(_, bits)| !bits.is_empty()),
            "scenario {} produced no predictions",
            scenario.name
        );
        for threads in [1, 2, 4] {
            let threaded = replay_bits(&scenario, threads);
            assert_eq!(
                legacy, threaded,
                "scenario {} diverged at {threads} worker threads",
                scenario.name
            );
        }
    }
}

fn burst(ranks: usize, start: f64, duration: f64, bytes: u64) -> Vec<IoRequest> {
    (0..ranks)
        .map(|rank| IoRequest::write(rank, start, start + duration, bytes))
        .collect()
}

/// With a thread budget below the shard count, each worker serves several
/// shards from one thread-local plan cache — steady-state ticks must still
/// build no FFT plans and grow no scratch on any worker.
#[test]
fn thread_budgeted_steady_state_builds_no_plans() {
    let config = FtioConfig {
        sampling_freq: 2.0,
        use_autocorrelation: true,
        ..Default::default()
    };
    let engine = ClusterEngine::spawn(ClusterConfig {
        shards: 4,
        queue_capacity: 256,
        max_batch: 1,
        threads: 2,
        policy: BackpressurePolicy::Block,
        ftio: config,
        strategy: WindowStrategy::Fixed { length: 300.0 },
        ..ClusterConfig::default()
    });
    assert_eq!(engine.worker_count(), 2);
    let apps: Vec<AppId> = (0..4).map(AppId::new).collect();
    let period = 10.0;
    for &app in &apps {
        let mut history = Vec::new();
        for tick in 0..40 {
            history.extend(burst(4, tick as f64 * period, 2.0, 2_000_000_000));
        }
        engine.submit(app, history, 400.0);
    }
    for tick in 1..4 {
        for &app in &apps {
            let now = 400.0 + tick as f64 * period;
            engine.submit(app, burst(4, now - 2.0, 2.0, 2_000_000_000), now);
        }
    }
    engine.flush();
    let before = engine.plan_cache_stats();
    assert_eq!(before.len(), 2, "one stats slot per worker, not per shard");
    for tick in 4..11 {
        for &app in &apps {
            let now = 400.0 + tick as f64 * period;
            engine.submit(app, burst(4, now - 2.0, 2.0, 2_000_000_000), now);
        }
    }
    engine.flush();
    let after = engine.plan_cache_stats();
    for (worker, (b, a)) in before.iter().zip(&after).enumerate() {
        assert_eq!(
            a.plans_built(),
            b.plans_built(),
            "worker {worker} built FFT plans in steady state: {b:?} -> {a:?}"
        );
        assert_eq!(
            a.scratch_grows, b.scratch_grows,
            "worker {worker} grew FFT scratch in steady state: {b:?} -> {a:?}"
        );
        assert!(a.plan_hits > b.plan_hits, "worker {worker} ran no ticks");
    }
    let results = engine.finish();
    for &app in &apps {
        assert_eq!(results[&app].len(), 11);
    }
}

/// The budget strings accepted by `--threads` and `FTIO_THREADS` resolve the
/// same way everywhere: explicit counts pass through (clamped), `auto`/empty/
/// zero/garbage defer to the machine.
#[test]
fn thread_budget_parsing_is_uniform() {
    assert_eq!(pool::parse_threads(Some("1")), Some(1));
    assert_eq!(pool::parse_threads(Some("8")), Some(8));
    assert_eq!(pool::parse_threads(Some(" 4 ")), Some(4));
    // Deferred to the machine: unset, empty, auto, zero, garbage.
    assert_eq!(pool::parse_threads(None), None);
    assert_eq!(pool::parse_threads(Some("")), None);
    assert_eq!(pool::parse_threads(Some("auto")), None);
    assert_eq!(pool::parse_threads(Some("0")), None);
    assert_eq!(pool::parse_threads(Some("not-a-number")), None);
    // The derived budget is always usable as a pool size.
    assert!(pool::thread_budget() >= 1);
}

/// A serve daemon's CPU-bound budget is the engine worker count: the
/// configured thread knob, clamped to the shard count, with 0 falling back
/// to one worker per shard.
#[test]
fn serve_worker_budget_follows_the_thread_knob() {
    for (shards, threads, expected) in [(8usize, 3usize, 3usize), (4, 0, 4), (2, 16, 2)] {
        let server = Server::start(
            ServerListener::tcp("127.0.0.1:0").expect("bind an ephemeral port"),
            ServerConfig {
                max_connections: 4,
                batch_size: 256,
                cluster: ClusterConfig {
                    shards,
                    threads,
                    ftio: FtioConfig {
                        sampling_freq: 2.0,
                        use_autocorrelation: false,
                        ..Default::default()
                    },
                    ..ClusterConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("server boots");
        assert_eq!(
            server.worker_count(),
            expected,
            "shards {shards}, threads {threads}"
        );
        server.finish();
    }
}
