//! Cross-crate integration tests: the Set-10 scheduling use case (paper §IV,
//! Fig. 17) and the tracing-overhead study (§III-C, Fig. 16), on reduced
//! workloads so the suite stays fast. The full-size experiments are the
//! `fig16`/`fig17` binaries of `ftio-bench`.

use ftio_sched::{run_variant, ExperimentConfig, SchedulerVariant};
use ftio_sim::{OverheadModel, Set10WorkloadConfig};

fn small_experiment() -> ExperimentConfig {
    ExperimentConfig {
        workload: Set10WorkloadConfig {
            low_freq_jobs: 7,
            low_freq_iterations: 3,
            ..Default::default()
        },
        repetitions: 3,
        ..Default::default()
    }
}

#[test]
fn set10_with_ftio_beats_the_unmanaged_baseline() {
    // Paper: compared to not using Set-10, the FTIO-powered version decreases
    // stretch and I/O slowdown and increases utilisation (by 20%, 56%, 26% on
    // the full workload — here we only require the ordering).
    let config = small_experiment();
    let original = run_variant(&config, SchedulerVariant::Original);
    let ftio = run_variant(&config, SchedulerVariant::Ftio);

    assert!(
        ftio.mean_io_slowdown() < original.mean_io_slowdown(),
        "ftio {} vs original {}",
        ftio.mean_io_slowdown(),
        original.mean_io_slowdown()
    );
    assert!(
        ftio.mean_stretch() <= original.mean_stretch() + 1e-9,
        "ftio {} vs original {}",
        ftio.mean_stretch(),
        original.mean_stretch()
    );
    assert!(
        ftio.mean_utilization() >= original.mean_utilization() - 1e-9,
        "ftio {} vs original {}",
        ftio.mean_utilization(),
        original.mean_utilization()
    );
}

#[test]
fn ftio_fed_set10_is_close_to_the_clairvoyant_version() {
    // Paper: only 2.2% worse stretch, 19% worse I/O slowdown, 2.3% worse
    // utilisation. Allow wider margins on the reduced workload.
    let config = small_experiment();
    let clairvoyant = run_variant(&config, SchedulerVariant::Clairvoyant);
    let ftio = run_variant(&config, SchedulerVariant::Ftio);

    let stretch_gap =
        (ftio.mean_stretch() - clairvoyant.mean_stretch()).abs() / clairvoyant.mean_stretch();
    let slowdown_gap = (ftio.mean_io_slowdown() - clairvoyant.mean_io_slowdown()).abs()
        / clairvoyant.mean_io_slowdown();
    let util_gap = (ftio.mean_utilization() - clairvoyant.mean_utilization()).abs()
        / clairvoyant.mean_utilization();
    assert!(stretch_gap < 0.10, "stretch gap {stretch_gap}");
    assert!(slowdown_gap < 0.40, "slowdown gap {slowdown_gap}");
    assert!(util_gap < 0.10, "utilization gap {util_gap}");
}

#[test]
fn error_injection_does_not_beat_clean_ftio_predictions() {
    // Paper: the ±50% error variant is worse than "Set-10 + FTIO" on all
    // three metrics and shows higher variability.
    let config = ExperimentConfig {
        repetitions: 3,
        ..small_experiment()
    };
    let ftio = run_variant(&config, SchedulerVariant::Ftio);
    let error = run_variant(&config, SchedulerVariant::FtioWithError);
    assert!(
        error.mean_io_slowdown() >= ftio.mean_io_slowdown() * 0.98,
        "error {} vs ftio {}",
        error.mean_io_slowdown(),
        ftio.mean_io_slowdown()
    );
    assert!(
        error.mean_stretch() >= ftio.mean_stretch() * 0.98,
        "error {} vs ftio {}",
        error.mean_stretch(),
        ftio.mean_stretch()
    );
}

#[test]
fn tracing_overhead_stays_within_the_paper_bounds_across_scales() {
    // Paper Fig. 16: online aggregated overhead <= 0.6%, rank-0 overhead <= 6.9%.
    let model = OverheadModel::default();
    for &ranks in &[96usize, 768, 3072, 9216, 10752] {
        let report = model.estimate(ranks, 780.0, 160, 16);
        assert!(
            report.aggregated_fraction() < 0.006,
            "{ranks} ranks: aggregated fraction {}",
            report.aggregated_fraction()
        );
        assert!(
            report.rank0_fraction() < 0.069,
            "{ranks} ranks: rank-0 fraction {}",
            report.rank0_fraction()
        );
        // Offline mode is cheaper still.
        let offline = model.estimate(ranks, 780.0, 160, 1);
        assert!(offline.rank0_overhead < report.rank0_overhead);
    }
}
