//! Long-horizon robustness integration tests: bounded memory, crash-safe
//! checkpoint/restore, and corrupted-snapshot handling across crates.
//!
//! Three contracts are pinned here (unit-level variants live next to the
//! implementations in `ftio-core`):
//!
//! * **Bounded memory** — with ring retention, the predictor's peak
//!   bin-buffer footprint stays *flat* while the ingested history grows 8×
//!   ([`ftio_synth::scenarios::long_history_requests`] sweep), whereas the
//!   historical keep-all mode grows linearly.
//! * **Restore equivalence** — a predictor (or a whole cluster engine)
//!   snapshotted mid-run and restored into a fresh instance continues
//!   **bit-for-bit** like the uninterrupted original, for every window
//!   strategy.
//! * **Corruption safety** — truncated or bit-flipped snapshots fail with a
//!   positioned [`TraceError`]; they never panic and never restore silently.

use ftio_core::{
    ClusterConfig, ClusterEngine, FtioConfig, MemoryPolicy, OnlinePredictor, Pacing,
    RetentionPolicy, WindowStrategy,
};
use ftio_synth::scenarios::{long_history_burst, long_history_requests, LongHistoryConfig};
use ftio_trace::snapshot::HEADER_LEN;
use ftio_trace::{AppId, MemorySource, TraceError};

fn analysis_config() -> FtioConfig {
    FtioConfig {
        sampling_freq: 2.0,
        use_autocorrelation: false,
        ..Default::default()
    }
}

/// The three window strategies the restore-equivalence contract covers.
fn all_strategies() -> [WindowStrategy; 3] {
    [
        WindowStrategy::FullHistory,
        WindowStrategy::Adaptive { multiple: 3 },
        WindowStrategy::Fixed { length: 120.0 },
    ]
}

fn long_history(bursts: usize) -> (LongHistoryConfig, Vec<ftio_trace::IoRequest>) {
    let config = LongHistoryConfig {
        bursts,
        ranks: 4,
        ..Default::default()
    };
    let requests = long_history_requests(&config);
    (config, requests)
}

/// Satellite: ring retention holds the peak bin-buffer footprint flat across
/// an 8× history sweep, while keep-all grows with the horizon. This is the
/// predictor-level (cross-crate) version of the sampler unit test: the whole
/// ingest → retention → windowed-detection path runs for every sweep point.
#[test]
fn ring_retention_keeps_predictor_memory_flat_across_8x_history_sweep() {
    let memory = MemoryPolicy {
        retention: RetentionPolicy::Ring { max_bins: 512 },
        retain_requests: false,
    };
    let mut ring_peaks = Vec::new();
    let mut keep_all_peaks = Vec::new();
    for scale in [1usize, 2, 4, 8] {
        let (config, requests) = long_history(64 * scale);
        let span = config.span();

        let mut ring = OnlinePredictor::with_memory(
            analysis_config(),
            WindowStrategy::Fixed { length: 120.0 },
            memory,
        );
        ring.ingest(requests.iter().copied());
        let prediction = ring.predict(span);
        let period = prediction.period().expect("ring mode must still detect");
        assert!(
            (period - config.period).abs() < 1.0,
            "ring mode mis-detected at scale {scale}: {period} s"
        );
        ring_peaks.push(ring.sampler().peak_bin_buffer_bytes());

        let mut keep_all = OnlinePredictor::with_memory(
            analysis_config(),
            WindowStrategy::Fixed { length: 120.0 },
            MemoryPolicy::default(),
        );
        keep_all.ingest(requests.iter().copied());
        keep_all.predict(span);
        keep_all_peaks.push(keep_all.sampler().peak_bin_buffer_bytes());
    }
    assert!(
        ring_peaks.iter().all(|&peak| peak == ring_peaks[0]),
        "ring peak moved across the sweep: {ring_peaks:?}"
    );
    assert!(
        keep_all_peaks[3] >= 4 * keep_all_peaks[0],
        "keep-all should grow with history: {keep_all_peaks:?}"
    );
    assert!(
        keep_all_peaks[3] > 8 * ring_peaks[0],
        "at 8x history the ring ceiling must be far below keep-all \
         (ring {}, keep-all {})",
        ring_peaks[0],
        keep_all_peaks[3]
    );
}

/// Collects the full prediction history of a predictor as raw bits, so two
/// runs can be compared for exact (not approximate) equality.
fn history_bits(predictor: &OnlinePredictor) -> Vec<[u64; 4]> {
    predictor
        .history()
        .iter()
        .map(|p| {
            [
                p.time.to_bits(),
                p.frequency.to_bits(),
                p.confidence.to_bits(),
                p.window_length.to_bits(),
            ]
        })
        .collect()
}

/// Drives a predictor through the long-history workload burst by burst,
/// ticking every third burst. When `interrupt` is set, the predictor is
/// snapshotted and replaced by its restored copy right after that burst —
/// simulating a crash plus recovery in a fresh process image.
fn drive(mut predictor: OnlinePredictor, interrupt: Option<usize>) -> OnlinePredictor {
    let config = LongHistoryConfig {
        bursts: 24,
        ranks: 2,
        ..Default::default()
    };
    for index in 0..config.bursts {
        predictor.ingest(long_history_burst(&config, index));
        if index % 3 == 2 {
            predictor.predict((index + 1) as f64 * config.period);
        }
        if interrupt == Some(index) {
            let bytes = predictor.snapshot();
            predictor = OnlinePredictor::restore(&bytes).expect("mid-run snapshot must restore");
        }
    }
    predictor
}

/// Acceptance criterion (synchronous half): snapshot → restore → continue is
/// bit-for-bit identical to an uninterrupted run, for all window strategies.
#[test]
fn predictor_restore_is_bit_for_bit_for_every_window_strategy() {
    for strategy in all_strategies() {
        let uninterrupted = drive(OnlinePredictor::new(analysis_config(), strategy), None);
        let resumed = drive(OnlinePredictor::new(analysis_config(), strategy), Some(11));
        assert!(
            !uninterrupted.history().is_empty(),
            "the workload must produce predictions ({strategy:?})"
        );
        assert_eq!(
            history_bits(&uninterrupted),
            history_bits(&resumed),
            "restore diverged under {strategy:?}"
        );
        assert_eq!(
            uninterrupted.collected_requests(),
            resumed.collected_requests(),
            "request accounting diverged under {strategy:?}"
        );
    }
}

/// Acceptance criterion (cluster half): interrupting a `ClusterEngine::replay`
/// with a snapshot and resuming in a fresh engine yields exactly the
/// predictions the uninterrupted replay produces for the resumed stretch,
/// for all window strategies.
#[test]
fn cluster_replay_resumes_bit_for_bit_for_every_window_strategy() {
    let app = AppId::new(7);
    let batch_size = 8;
    let (_, requests) = long_history(48);
    let half = requests.len() / 2;
    assert_eq!(half % batch_size, 0, "cut must align with batch boundaries");
    for strategy in all_strategies() {
        // `max_batch: 1` pins coalescing: every batch is one tick, so the
        // uninterrupted and resumed runs see identical tick sequences.
        let config = ClusterConfig {
            shards: 2,
            max_batch: 1,
            ftio: analysis_config(),
            strategy,
            ..ClusterConfig::default()
        };

        let engine = ClusterEngine::spawn(config);
        let mut source = MemorySource::from_requests(app, requests.clone(), batch_size);
        engine.replay(&mut source, Pacing::AsFast).unwrap();
        let full = engine.finish();
        let full_history = &full[&app];

        let engine = ClusterEngine::spawn(config);
        let mut first = MemorySource::from_requests(app, requests[..half].to_vec(), batch_size);
        engine.replay(&mut first, Pacing::AsFast).unwrap();
        let bytes = engine.snapshot();
        drop(engine);

        let engine = ClusterEngine::restore(&bytes).expect("cluster snapshot must restore");
        let mut rest = MemorySource::from_requests(app, requests[half..].to_vec(), batch_size);
        engine.replay(&mut rest, Pacing::AsFast).unwrap();
        let resumed = engine.finish();
        let resumed_history = &resumed[&app];

        // The result store is not part of the snapshot: the resumed engine
        // reports only the post-restore predictions, which must equal the
        // tail of the uninterrupted run exactly.
        assert!(!resumed_history.is_empty(), "{strategy:?}");
        let tail = &full_history[full_history.len() - resumed_history.len()..];
        for (expected, actual) in tail.iter().zip(resumed_history.iter()) {
            assert_eq!(
                expected.time.to_bits(),
                actual.time.to_bits(),
                "{strategy:?}"
            );
            assert_eq!(
                expected.window_start.to_bits(),
                actual.window_start.to_bits(),
                "{strategy:?}"
            );
            assert_eq!(
                expected.window_end.to_bits(),
                actual.window_end.to_bits(),
                "{strategy:?}"
            );
            assert_eq!(
                expected.period().map(f64::to_bits),
                actual.period().map(f64::to_bits),
                "{strategy:?}"
            );
            assert_eq!(
                expected.confidence().to_bits(),
                actual.confidence().to_bits(),
                "{strategy:?}"
            );
        }
    }
}

/// Satellite: corrupted checkpoints — truncations and single-bit flips at
/// representative offsets — must fail with a *positioned* [`TraceError`],
/// never panic, and never restore silently.
#[test]
fn corrupted_snapshots_fail_with_positioned_errors_and_never_panic() {
    let predictor = drive(
        OnlinePredictor::new(analysis_config(), WindowStrategy::default()),
        None,
    );
    let bytes = predictor.snapshot();
    assert!(bytes.len() > HEADER_LEN);

    let positioned = |err: TraceError| match err {
        TraceError::Malformed { position, .. } => position,
        other => panic!("expected a positioned malformed error, got {other}"),
    };

    for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
        let err = OnlinePredictor::restore(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("a snapshot truncated to {cut} bytes must not restore"));
        let position = positioned(err);
        assert!(
            position <= cut,
            "error position {position} points past the {cut}-byte input"
        );
    }

    for index in [0, 9, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
        let mut flipped = bytes.clone();
        flipped[index] ^= 0x40;
        assert!(
            OnlinePredictor::restore(&flipped).is_err(),
            "a bit flip at byte {index} must not restore"
        );
    }

    // Kind confusion: a predictor snapshot is not a cluster snapshot and
    // vice versa — both directions fail with a telling message.
    let err = match ClusterEngine::restore(&bytes) {
        Err(err) => err,
        Ok(_) => panic!("a predictor snapshot must not restore as a cluster"),
    };
    assert!(err.to_string().contains("expected `cluster`"), "{err}");
    let engine = ClusterEngine::spawn(ClusterConfig {
        ftio: analysis_config(),
        ..ClusterConfig::default()
    });
    let cluster_bytes = engine.snapshot();
    drop(engine);
    let err = match OnlinePredictor::restore(&cluster_bytes) {
        Err(err) => err,
        Ok(_) => panic!("a cluster snapshot must not restore as a predictor"),
    };
    assert!(err.to_string().contains("expected `predictor`"), "{err}");

    // Arbitrary non-snapshot bytes (long enough to carry a header) are
    // rejected up front by the container's magic check.
    let garbage = vec![b'x'; HEADER_LEN + 16];
    let err = positioned(OnlinePredictor::restore(&garbage).unwrap_err());
    assert_eq!(err, 0, "bad magic must be reported at offset 0");
}

/// The committed snapshot fixture (regenerated by
/// `cargo run --example make_fixtures`, determinism-checked in CI) restores
/// into a live predictor. The fixture is ingest-only — the 40-request IOR
/// workload with no prediction ticks, because FFT outputs are not bit-stable
/// across platforms — so the tick runs here, after restore.
#[test]
fn committed_checkpoint_fixture_restores_and_predicts() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/checkpoint_predictor.ftiosnap");
    let bytes =
        std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {} ({e})", path.display()));
    let mut predictor = OnlinePredictor::restore(&bytes).expect("committed fixture must restore");
    assert_eq!(predictor.collected_requests(), 40);
    assert!(
        predictor.history().is_empty(),
        "fixture must be ingest-only"
    );
    let prediction = predictor.predict(250.0);
    let period = prediction.period().expect("restored state must detect");
    assert!((period - 10.0).abs() < 1.0, "detected {period} s");
}
