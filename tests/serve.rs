//! Serving-layer integration tests: the socket daemon end to end.
//!
//! The contracts pinned here:
//!
//! * **Concurrent multiplexing** — two framed clients over one Unix socket
//!   each get the predictions of *their* application, and a graceful
//!   shutdown drains the shard queues with the accounting invariant intact.
//! * **Raw ingestion** — a plain `nc`-style connection (bytes, close) is
//!   sniffed, replayed, and answered with a summary line; gzipped bytes are
//!   decompressed transparently.
//! * **Fault isolation at the network edge** — a malformed frame, a
//!   disconnect mid-frame, or a connection over the admission limit affects
//!   only the offending connection; every other client keeps being served
//!   and the engine's counters still balance.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use ftio_core::server::{Server, ServerConfig, ServerListener, ServerReport};
use ftio_core::{ClusterConfig, ClusterStats, FtioConfig};
use ftio_trace::wire::{Frame, FrameReader, FRAME_MAGIC};
use ftio_trace::{jsonl, AppId, IoRequest};

fn test_config(shards: usize, max_connections: usize) -> ServerConfig {
    ServerConfig {
        max_connections,
        batch_size: 256,
        cluster: ClusterConfig {
            shards,
            // One tick per Data frame keeps the counters exact.
            max_batch: 1,
            ftio: FtioConfig {
                sampling_freq: 2.0,
                use_autocorrelation: false,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The observable engine contract: every accepted submission is accounted
/// for — ticked, coalesced, dropped, or panicked.
fn assert_balanced(stats: &ClusterStats) {
    assert_eq!(
        stats.ticks + stats.panicked + stats.coalesced + stats.dropped,
        stats.submitted - stats.rejected,
        "accounting invariant violated: {stats:?}"
    );
}

fn periodic_jsonl(period: f64, bursts: usize) -> Vec<u8> {
    let requests: Vec<IoRequest> = (0..bursts)
        .map(|i| {
            let start = i as f64 * period;
            IoRequest::write(0, start, start + 2.0, 1_000_000_000)
        })
        .collect();
    jsonl::encode_requests(&requests).into_bytes()
}

#[cfg(unix)]
fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ftio_serve_it_{name}.sock"))
}

/// One full framed session: hello, subscribe, stream the payload in `frames`
/// data frames, end, collect predictions until the ack.
fn framed_session<S: Read + Write>(
    mut stream: S,
    name: &str,
    payload: &[u8],
    frames: usize,
) -> Vec<ftio_trace::wire::PredictionUpdate> {
    Frame::Hello { name: name.into() }
        .write_to(&mut stream)
        .unwrap();
    Frame::Subscribe {
        app: Some(AppId::from_name(name)),
        from_seq: None,
    }
    .write_to(&mut stream)
    .unwrap();
    // Split at line boundaries so every frame is a self-contained chunk.
    let mut rest = payload;
    for i in (1..=frames).rev() {
        let take = if i == 1 {
            rest.len()
        } else {
            let target = rest.len() / i;
            rest[..target]
                .iter()
                .rposition(|&b| b == b'\n')
                .map(|p| p + 1)
                .unwrap_or(target)
        };
        let (chunk, remainder) = rest.split_at(take);
        Frame::Data(chunk.to_vec()).write_to(&mut stream).unwrap();
        rest = remainder;
    }
    Frame::End.write_to(&mut stream).unwrap();
    stream.flush().unwrap();
    let mut reader = FrameReader::new(stream);
    let mut predictions = Vec::new();
    loop {
        match reader.read_frame().unwrap().expect("server closed early") {
            Frame::Welcome { .. } => {} // the hello's ack
            Frame::Prediction(update) => predictions.push(update),
            Frame::Ack => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    predictions
}

fn shutdown_via_client<S: Read + Write>(mut stream: S) -> ftio_trace::wire::WireStats {
    Frame::Hello {
        name: "stopper".into(),
    }
    .write_to(&mut stream)
    .unwrap();
    Frame::Shutdown.write_to(&mut stream).unwrap();
    stream.flush().unwrap();
    let mut reader = FrameReader::new(stream);
    loop {
        match reader.read_frame().unwrap() {
            Some(Frame::Welcome { .. }) => continue, // the hello's ack
            Some(Frame::Stats(stats)) => return stats,
            other => panic!("expected stats, got {other:?}"),
        }
    }
}

fn finish_and_check(server: Server) -> ServerReport {
    let report = server.wait();
    assert_balanced(&report.cluster);
    report
}

#[cfg(unix)]
#[test]
fn two_concurrent_framed_clients_get_their_own_predictions() {
    let path = socket_path("two_clients");
    let server = Server::start(ServerListener::unix(&path).unwrap(), test_config(2, 8)).unwrap();

    let path_a = path.clone();
    let a = std::thread::spawn(move || {
        framed_session(
            UnixStream::connect(&path_a).unwrap(),
            "app-a",
            &periodic_jsonl(10.0, 12),
            3,
        )
    });
    let path_b = path.clone();
    let b = std::thread::spawn(move || {
        framed_session(
            UnixStream::connect(&path_b).unwrap(),
            "app-b",
            &periodic_jsonl(20.0, 12),
            2,
        )
    });
    let predictions_a = a.join().unwrap();
    let predictions_b = b.join().unwrap();

    // Each subscriber saw only its own application, one tick per data frame.
    assert_eq!(predictions_a.len(), 3);
    assert_eq!(predictions_b.len(), 2);
    assert!(predictions_a
        .iter()
        .all(|p| p.app == AppId::from_name("app-a")));
    assert!(predictions_b
        .iter()
        .all(|p| p.app == AppId::from_name("app-b")));
    let period_a = predictions_a.last().unwrap().period.expect("periodic");
    let period_b = predictions_b.last().unwrap().period.expect("periodic");
    assert!((period_a - 10.0).abs() < 1.5, "app-a period {period_a}");
    assert!((period_b - 20.0).abs() < 3.0, "app-b period {period_b}");

    let stats = shutdown_via_client(UnixStream::connect(&path).unwrap());
    assert!(stats.is_balanced(), "{stats:?}");
    assert_eq!(stats.ticks, 5);

    let report = finish_and_check(server);
    assert_eq!(report.server.accepted, 3);
    assert_eq!(report.server.protocol_errors, 0);
    assert_eq!(report.predictions.len(), 2);
    assert!(!path.exists(), "socket not unlinked after drain");
}

#[cfg(unix)]
#[test]
fn raw_connection_is_sniffed_and_summarised() {
    let path = socket_path("raw");
    let server = Server::start(ServerListener::unix(&path).unwrap(), test_config(1, 4)).unwrap();
    let mut client = UnixStream::connect(&path).unwrap();
    client.write_all(&periodic_jsonl(10.0, 12)).unwrap();
    client.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    client.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("# ftio raw-"), "{reply}");
    assert!(reply.contains("period 10."), "{reply}");
    server.shutdown();
    let report = finish_and_check(server);
    assert_eq!(report.server.raw_connections, 1);
    assert_eq!(report.cluster.ticks, 1);
}

#[cfg(unix)]
#[test]
fn gzipped_raw_connection_is_decompressed() {
    let path = socket_path("gzip");
    let server = Server::start(ServerListener::unix(&path).unwrap(), test_config(1, 4)).unwrap();
    let mut client = UnixStream::connect(&path).unwrap();
    client
        .write_all(&flate2::gzip_stored(&periodic_jsonl(8.0, 10)))
        .unwrap();
    client.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    client.read_to_string(&mut reply).unwrap();
    assert!(reply.contains("period 8."), "{reply}");
    server.shutdown();
    let report = finish_and_check(server);
    assert_eq!(report.server.raw_connections, 1);
    assert_eq!(report.server.protocol_errors, 0);
}

/// A gzipped payload inside a framed `Data` chunk: the same transparent
/// transport decompression applies on the framed path.
#[test]
fn gzipped_data_frame_is_decompressed() {
    let server = Server::start(
        ServerListener::tcp("127.0.0.1:0").unwrap(),
        test_config(1, 4),
    )
    .unwrap();
    let client = TcpStream::connect(server.address()).unwrap();
    let gz = flate2::gzip_stored(&periodic_jsonl(10.0, 12));
    let mut stream = client;
    Frame::Hello {
        name: "gz-app".into(),
    }
    .write_to(&mut stream)
    .unwrap();
    Frame::Subscribe {
        app: None,
        from_seq: None,
    }
    .write_to(&mut stream)
    .unwrap();
    Frame::Data(gz).write_to(&mut stream).unwrap();
    Frame::End.write_to(&mut stream).unwrap();
    stream.flush().unwrap();
    let mut reader = FrameReader::new(stream);
    let mut saw_prediction = false;
    loop {
        match reader.read_frame().unwrap().expect("server closed early") {
            Frame::Welcome { .. } => {}
            Frame::Prediction(update) => {
                saw_prediction = true;
                let period = update.period.expect("periodic input");
                assert!((period - 10.0).abs() < 1.5, "period {period}");
            }
            Frame::Ack => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(saw_prediction);
    server.shutdown();
    let report = finish_and_check(server);
    assert_eq!(report.server.data_frames, 1);
    assert_eq!(report.server.protocol_errors, 0);
}

#[cfg(unix)]
#[test]
fn malformed_frame_closes_only_the_offending_connection() {
    let path = socket_path("malformed");
    let server = Server::start(ServerListener::unix(&path).unwrap(), test_config(2, 8)).unwrap();

    // The well-behaved client, streaming slowly in a thread.
    let path_good = path.clone();
    let good = std::thread::spawn(move || {
        framed_session(
            UnixStream::connect(&path_good).unwrap(),
            "good-app",
            &periodic_jsonl(10.0, 12),
            2,
        )
    });

    // The hostile client: a valid hello, then garbage with a bad magic.
    let mut bad = UnixStream::connect(&path).unwrap();
    Frame::Hello {
        name: "bad-app".into(),
    }
    .write_to(&mut bad)
    .unwrap();
    bad.write_all(&[FRAME_MAGIC[0], 0x99, 2, 0, 0, 0, 0, 0xAB])
        .unwrap();
    bad.flush().unwrap();
    let mut reader = FrameReader::new(&mut bad);
    // The hello's Welcome arrives first, then the positioned error.
    assert!(matches!(
        reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));
    match reader.read_frame().unwrap() {
        Some(Frame::Error { message, .. }) => {
            assert!(
                message.contains("position"),
                "unpositioned error: {message}"
            );
        }
        other => panic!("expected a positioned error frame, got {other:?}"),
    }
    // The server closed the hostile connection (a clean EOF, or a reset when
    // the unread garbage was still in the server's receive buffer).
    match reader.read_frame() {
        Ok(None) | Err(_) => {}
        Ok(Some(frame)) => panic!("connection not closed, got {frame:?}"),
    }

    // ...while the good client was served to completion.
    let predictions = good.join().unwrap();
    assert_eq!(predictions.len(), 2);
    assert!((predictions.last().unwrap().period.unwrap() - 10.0).abs() < 1.5);

    let stats = shutdown_via_client(UnixStream::connect(&path).unwrap());
    assert!(stats.is_balanced(), "{stats:?}");
    let report = finish_and_check(server);
    assert_eq!(report.server.protocol_errors, 1);
    assert_eq!(report.server.accepted, 3);
}

#[cfg(unix)]
#[test]
fn disconnect_mid_frame_does_not_disturb_other_connections() {
    let path = socket_path("disconnect");
    let server = Server::start(ServerListener::unix(&path).unwrap(), test_config(2, 8)).unwrap();

    // The vanishing client: announce a large data frame, send half, hang up.
    let mut ghost = UnixStream::connect(&path).unwrap();
    Frame::Hello {
        name: "ghost".into(),
    }
    .write_to(&mut ghost)
    .unwrap();
    let payload = periodic_jsonl(10.0, 12);
    let encoded = Frame::Data(payload).encode();
    ghost.write_all(&encoded[..encoded.len() / 2]).unwrap();
    ghost.flush().unwrap();
    // Half-close: the server sees EOF mid-frame (keeping our read half open
    // lets its Welcome and the positioned error frame go out normally).
    ghost.shutdown(std::net::Shutdown::Write).unwrap();

    // A full session on a second connection still works end to end.
    let predictions = framed_session(
        UnixStream::connect(&path).unwrap(),
        "survivor",
        &periodic_jsonl(10.0, 12),
        2,
    );
    assert_eq!(predictions.len(), 2);

    let stats = shutdown_via_client(UnixStream::connect(&path).unwrap());
    assert!(stats.is_balanced(), "{stats:?}");
    drop(ghost);
    let report = finish_and_check(server);
    // The mid-frame EOF is a protocol error; the ghost's half-frame never
    // reached the engine.
    assert_eq!(report.server.protocol_errors, 1);
    assert_eq!(report.cluster.ticks, 2);
}

#[cfg(unix)]
#[test]
fn connections_over_the_limit_are_rejected_with_an_error_frame() {
    let path = socket_path("limit");
    // Limit 2: two parked connections fill the daemon.
    let server = Server::start(ServerListener::unix(&path).unwrap(), test_config(1, 2)).unwrap();

    let hold_a = UnixStream::connect(&path).unwrap();
    let hold_b = UnixStream::connect(&path).unwrap();
    // The holders must be *counted* before the third connect: send a byte and
    // wait until the server reports two active connections.
    for mut hold in [&hold_a, &hold_b] {
        Frame::Hello {
            name: "holder".into(),
        }
        .write_to(&mut hold)
        .unwrap();
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.server_stats().active < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "holders never counted"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let rejected = UnixStream::connect(&path).unwrap();
    let mut reader = FrameReader::new(rejected);
    match reader.read_frame().unwrap() {
        Some(Frame::Error {
            message,
            retry_after_ms,
        }) => {
            assert!(message.contains("connection limit"), "{message}");
            assert!(retry_after_ms.is_some(), "limit rejections hint a retry");
        }
        other => panic!("expected a limit error, got {other:?}"),
    }
    assert_eq!(reader.read_frame().unwrap(), None, "rejected socket closed");

    // Releasing a holder frees a slot: the next client is served normally.
    drop(hold_a);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.server_stats().active >= 2 {
        assert!(std::time::Instant::now() < deadline, "slot never freed");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let predictions = framed_session(
        UnixStream::connect(&path).unwrap(),
        "late-app",
        &periodic_jsonl(10.0, 12),
        1,
    );
    assert_eq!(predictions.len(), 1);

    drop(hold_b);
    server.shutdown();
    let report = finish_and_check(server);
    assert_eq!(report.server.rejected_connections, 1);
    assert_eq!(report.cluster.ticks, 1);
}

#[test]
fn tcp_smoke_round_trip() {
    let server = Server::start(
        ServerListener::tcp("127.0.0.1:0").unwrap(),
        test_config(2, 4),
    )
    .unwrap();
    let predictions = framed_session(
        TcpStream::connect(server.address()).unwrap(),
        "tcp-app",
        &periodic_jsonl(10.0, 12),
        2,
    );
    assert_eq!(predictions.len(), 2);
    let stats = shutdown_via_client(TcpStream::connect(server.address()).unwrap());
    assert!(stats.is_balanced(), "{stats:?}");
    let report = finish_and_check(server);
    assert_eq!(report.server.accepted, 2);
    assert_balanced(&report.cluster);
}
