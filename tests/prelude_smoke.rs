//! Workspace smoke test: the `ftio::prelude` end-to-end path.
//!
//! The umbrella crate promises that a user can depend on `ftio` alone and run
//! the whole detection pipeline through the flat re-exports. This test keeps
//! those re-exports honest: if a member crate renames or stops exporting one
//! of the prelude types, this fails to compile.

use ftio::prelude::*;

/// A job writing a 3 s burst every 30 s across 8 ranks.
fn periodic_trace(period: f64, iterations: usize) -> AppTrace {
    let mut trace = AppTrace::named("smoke", 8);
    for i in 0..iterations {
        let t = i as f64 * period;
        for rank in 0..8 {
            trace.push(IoRequest::write(rank, t, t + 3.0, 250_000_000));
        }
    }
    trace
}

#[test]
fn prelude_detects_a_periodic_trace_end_to_end() {
    let trace = periodic_trace(30.0, 20);
    let config = FtioConfig::with_sampling_freq(1.0);
    let result = detect_trace(&trace, &config);

    assert_eq!(result.verdict(), PeriodicityVerdict::Periodic);
    let period = result.period().expect("dominant frequency found");
    assert!((period - 30.0).abs() < 2.0, "period {period}");
    // A 10% duty cycle spreads power into harmonics, so the Z-score
    // confidence is moderate; it must still be meaningful and in range.
    assert!(
        result.confidence() > 0.2,
        "confidence {}",
        result.confidence()
    );
    assert!(result.confidence() <= 1.0);
}

#[test]
fn prelude_covers_the_online_path_too() {
    let config = FtioConfig {
        sampling_freq: 1.0,
        use_autocorrelation: false,
        ..Default::default()
    };
    let mut predictor = OnlinePredictor::new(config, WindowStrategy::default());
    for i in 0..12 {
        let start = i as f64 * 25.0;
        predictor
            .ingest((0..4).map(|rank| IoRequest::write(rank, start, start + 2.0, 500_000_000)));
        predictor.predict(start + 2.0);
    }
    let last = predictor.predict(12.0 * 25.0);
    let period = last.period().expect("online prediction converged");
    assert!((period - 25.0).abs() < 2.0, "period {period}");
}

#[test]
fn prelude_exposes_the_simulator_and_scheduler_types() {
    // Construction-level checks: these types exist, are re-exported flat, and
    // their basic invariants hold. The deep behaviour is covered by the
    // member-crate tests and `tests/scheduling_and_overhead.rs`.
    let fs = FileSystem::with_bandwidth(10.0e9);
    assert!(fs.aggregate_bandwidth > 0.0);

    let job = JobSpec::periodic("smoke", 16, 1, 30.0, 0.2, 3, 1.0e9);
    assert_eq!(job.iterations.len(), 3);

    let experiment = ExperimentConfig::default();
    assert!(experiment.repetitions >= 1);
    let _variant = SchedulerVariant::Clairvoyant;

    let library = PhaseLibrary::paper_default(7);
    assert!(!library.is_empty());
    let semi = SemiSyntheticConfig::default();
    assert!(semi.iterations >= 1);

    let heatmap = Heatmap::from_trace(&periodic_trace(20.0, 4), 5.0);
    assert!(heatmap.total_volume() > 0.0);
    let timeline = BandwidthTimeline::from_requests(periodic_trace(20.0, 4).requests());
    assert!(timeline.total_volume() > 0.0);
}

#[test]
fn umbrella_modules_reach_the_member_crates() {
    // The module-style re-exports (`ftio::core`, `ftio::dsp`, ...) must stay
    // in sync with the flat prelude.
    let signal: Vec<f64> = (0..120)
        .map(|i| if i % 12 < 3 { 5.0 } else { 0.0 })
        .collect();
    let spectrum = ftio::dsp::spectrum::Spectrum::from_signal(&signal, 1.0);
    assert!(!spectrum.powers().is_empty());

    let sampled = ftio::core::sampling::SampledSignal::from_samples(signal, 1.0, 0.0);
    let result = ftio::core::detect_signal(&sampled, &FtioConfig::with_sampling_freq(1.0));
    assert!((result.period().expect("periodic") - 12.0).abs() < 1.0);
}
