//! Chaos tests: the serving layer under deterministic hostile traffic.
//!
//! Everything here drives a *real* daemon over real sockets — no mocks — and
//! pins the robustness contracts of the hardening work:
//!
//! * **Deadlines** — a client stalled mid-frame is evicted within the read
//!   deadline while concurrent healthy clients are served to completion; a
//!   connection idle past the idle deadline is swept.
//! * **Resumable subscriptions** — a subscriber that reconnects with
//!   `Subscribe{from_seq}` receives exactly the predictions it missed (no
//!   gaps, no duplicates), end to end.
//! * **Fault injection** — every seeded [`FaultPlan`] run preserves the
//!   engine accounting invariant and a blast radius of one connection: the
//!   chaotic client may lose its own session, never anybody else's.
//! * **Decode totality** — seeded random bytes thrown at the frame decoder
//!   error out; they never panic and never get accepted as a frame.
//! * **Overload and quotas** — tenant budgets reject at Hello time, byte
//!   budgets shed `Data` frames with a retryable error while the connection
//!   lives on, and `Shutdown` during active ingest always drains balanced.
//!
//! The slow-subscriber tests fill real socket buffers, so they are
//! `#[ignore]`d by default; the CI `chaos` lane runs them in release with
//! `--include-ignored`.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use ftio_core::server::{
    Server, ServerConfig, ServerListener, ServerReport, SlowSubscriberPolicy, TenantPolicy,
    TenantQuota,
};
use ftio_core::{ClusterConfig, ClusterStats, FtioConfig, WindowStrategy};
use ftio_trace::wire::{Frame, FrameReader, PredictionUpdate, FRAME_MAGIC};
use ftio_trace::{jsonl, AppId, FaultPlan, FaultStream, IoRequest};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A hardened test daemon: snappy deadlines so eviction is observable in
/// test time, one tick per data frame so the counters are exact.
fn chaos_config() -> ServerConfig {
    ServerConfig {
        max_connections: 16,
        batch_size: 256,
        read_timeout: Some(Duration::from_millis(150)),
        write_timeout: Some(Duration::from_secs(2)),
        idle_timeout: Some(Duration::from_secs(30)),
        cluster: ClusterConfig {
            shards: 2,
            max_batch: 1,
            ftio: FtioConfig {
                sampling_freq: 2.0,
                use_autocorrelation: false,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

fn assert_balanced(stats: &ClusterStats) {
    assert_eq!(
        stats.ticks + stats.panicked + stats.coalesced + stats.dropped,
        stats.submitted - stats.rejected,
        "accounting invariant violated: {stats:?}"
    );
}

fn periodic_jsonl(period: f64, bursts: usize) -> Vec<u8> {
    let requests: Vec<IoRequest> = (0..bursts)
        .map(|i| {
            let start = i as f64 * period;
            IoRequest::write(0, start, start + 2.0, 1_000_000_000)
        })
        .collect();
    jsonl::encode_requests(&requests).into_bytes()
}

/// One burst as a self-contained jsonl chunk, offset in time so successive
/// chunks continue the same periodic signal.
fn burst_jsonl(period: f64, index: usize) -> Vec<u8> {
    let start = index as f64 * period;
    jsonl::encode_requests(&[IoRequest::write(0, start, start + 2.0, 1_000_000_000)]).into_bytes()
}

/// Full healthy framed session: hello, subscribe, stream, end, collect until
/// ack. Skips the Welcome.
fn framed_session<S: Read + Write>(
    mut stream: S,
    name: &str,
    payload: &[u8],
    frames: usize,
) -> Vec<PredictionUpdate> {
    Frame::Hello { name: name.into() }
        .write_to(&mut stream)
        .unwrap();
    Frame::Subscribe {
        app: Some(AppId::from_name(name)),
        from_seq: None,
    }
    .write_to(&mut stream)
    .unwrap();
    let mut rest = payload;
    for i in (1..=frames).rev() {
        let take = if i == 1 {
            rest.len()
        } else {
            let target = rest.len() / i;
            rest[..target]
                .iter()
                .rposition(|&b| b == b'\n')
                .map(|p| p + 1)
                .unwrap_or(target)
        };
        let (chunk, remainder) = rest.split_at(take);
        Frame::Data(chunk.to_vec()).write_to(&mut stream).unwrap();
        rest = remainder;
    }
    Frame::End.write_to(&mut stream).unwrap();
    stream.flush().unwrap();
    let mut reader = FrameReader::new(stream);
    let mut predictions = Vec::new();
    loop {
        match reader.read_frame().unwrap().expect("server closed early") {
            Frame::Welcome { .. } => {}
            Frame::Prediction(update) => predictions.push(update),
            Frame::Ack => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    predictions
}

fn shutdown_via_client<S: Read + Write>(mut stream: S) -> ftio_trace::wire::WireStats {
    Frame::Hello {
        name: "stopper".into(),
    }
    .write_to(&mut stream)
    .unwrap();
    Frame::Shutdown.write_to(&mut stream).unwrap();
    stream.flush().unwrap();
    let mut reader = FrameReader::new(stream);
    loop {
        match reader.read_frame().unwrap() {
            Some(Frame::Welcome { .. }) | Some(Frame::Prediction(_)) => continue,
            Some(Frame::Stats(stats)) => return stats,
            other => panic!("expected stats, got {other:?}"),
        }
    }
}

/// Waits for `server.wait()` off-thread with a hard deadline, so a hang
/// fails the test instead of wedging the suite.
fn wait_with_deadline(server: Server, deadline: Duration) -> ServerReport {
    let handle = std::thread::spawn(move || server.wait());
    let end = Instant::now() + deadline;
    while !handle.is_finished() {
        assert!(Instant::now() < end, "server.wait() hung past {deadline:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.join().expect("wait thread panicked")
}

fn poll_until(deadline: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !check() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(unix)]
fn socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ftio_chaos_{name}.sock"))
}

// ---------------------------------------------------------------------------
// Deadlines & liveness
// ---------------------------------------------------------------------------

/// The tentpole liveness contract: a client that sends half a frame and goes
/// quiet is evicted within the read deadline — with a positioned error —
/// while a concurrent healthy client is served to completion.
#[test]
fn stalled_mid_frame_client_is_evicted_while_others_are_served() {
    let server =
        Server::start(ServerListener::tcp("127.0.0.1:0").unwrap(), chaos_config()).unwrap();
    let address = server.address().to_string();

    // The healthy client, streaming concurrently in a thread.
    let healthy_address = address.clone();
    let healthy = std::thread::spawn(move || {
        framed_session(
            TcpStream::connect(&healthy_address).unwrap(),
            "healthy",
            &periodic_jsonl(10.0, 12),
            3,
        )
    });

    // The stalled client: a complete hello, then half a data frame, then
    // silence.
    let mut stalled = TcpStream::connect(&address).unwrap();
    Frame::Hello {
        name: "staller".into(),
    }
    .write_to(&mut stalled)
    .unwrap();
    let encoded = Frame::Data(periodic_jsonl(10.0, 12)).encode();
    stalled.write_all(&encoded[..encoded.len() / 2]).unwrap();
    stalled.flush().unwrap();

    // The server must evict within the 150 ms read deadline (plus margin for
    // scheduling): Welcome, then the positioned stall error, then EOF.
    let evicted_at = Instant::now();
    let mut reader = FrameReader::new(&stalled);
    assert!(matches!(
        reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));
    match reader.read_frame().unwrap() {
        Some(Frame::Error {
            message,
            retry_after_ms,
        }) => {
            assert!(message.contains("stalled mid-frame"), "{message}");
            assert!(message.contains("byte"), "unpositioned: {message}");
            assert_eq!(retry_after_ms, None, "a stall is not retryable");
        }
        other => panic!("expected the stall error, got {other:?}"),
    }
    match reader.read_frame() {
        Ok(None) | Err(_) => {}
        Ok(Some(frame)) => panic!("connection not closed after eviction: {frame:?}"),
    }
    assert!(
        evicted_at.elapsed() < Duration::from_secs(3),
        "eviction took {:?}, deadline is 150 ms",
        evicted_at.elapsed()
    );

    // Blast radius: the healthy session never noticed.
    let predictions = healthy.join().unwrap();
    assert_eq!(predictions.len(), 3);
    assert!((predictions.last().unwrap().period.unwrap() - 10.0).abs() < 1.5);

    let stats = shutdown_via_client(TcpStream::connect(&address).unwrap());
    assert!(stats.is_balanced(), "{stats:?}");
    let report = wait_with_deadline(server, Duration::from_secs(20));
    assert_eq!(report.server.evicted_stalled, 1);
    assert_balanced(&report.cluster);
}

/// A connection that completes no frame for the idle deadline is swept by
/// the accept loop, without being charged as a protocol error.
#[test]
fn idle_connection_is_swept_after_the_idle_deadline() {
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        read_timeout: Some(Duration::from_millis(50)),
        ..chaos_config()
    };
    let server = Server::start(ServerListener::tcp("127.0.0.1:0").unwrap(), config).unwrap();
    let mut idler = TcpStream::connect(server.address()).unwrap();
    Frame::Hello {
        name: "idler".into(),
    }
    .write_to(&mut idler)
    .unwrap();
    idler.flush().unwrap();
    // Hello is answered, then nothing more happens on this connection: the
    // sweep closes it and the read sees EOF.
    let mut reader = FrameReader::new(&idler);
    assert!(matches!(
        reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));
    let swept_at = Instant::now();
    match reader.read_frame() {
        Ok(None) | Err(_) => {}
        Ok(Some(frame)) => panic!("expected the sweep to close the socket, got {frame:?}"),
    }
    assert!(
        swept_at.elapsed() < Duration::from_secs(5),
        "sweep took {:?}, deadline is 200 ms",
        swept_at.elapsed()
    );
    poll_until(Duration::from_secs(5), "idle eviction counted", || {
        server.server_stats().evicted_idle == 1
    });
    let report = server.finish();
    assert_eq!(report.server.evicted_idle, 1);
    assert_eq!(report.server.protocol_errors, 0, "idle is not an offence");
    assert_balanced(&report.cluster);
}

// ---------------------------------------------------------------------------
// Resumable sequenced subscriptions
// ---------------------------------------------------------------------------

/// The tentpole resume contract, end to end: predictions carry dense
/// sequence numbers; a subscriber that comes back with `Subscribe{from_seq}`
/// receives exactly the missed updates — replayed from the ring — and then
/// the live tail, with no gap and no duplicate at the splice point.
#[test]
fn reconnecting_subscriber_resumes_exactly_where_it_left_off() {
    let server =
        Server::start(ServerListener::tcp("127.0.0.1:0").unwrap(), chaos_config()).unwrap();
    let address = server.address().to_string();
    let app = "resume-app";

    // The feeder connection, kept open across both phases.
    let mut feeder = TcpStream::connect(&address).unwrap();
    Frame::Hello { name: app.into() }
        .write_to(&mut feeder)
        .unwrap();
    let mut feeder_reader = FrameReader::new(feeder.try_clone().unwrap());
    assert!(matches!(
        feeder_reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));
    let mut feed = |from: usize, to: usize| {
        for i in from..to {
            Frame::Data(burst_jsonl(10.0, i))
                .write_to(&mut feeder)
                .unwrap();
        }
        Frame::End.write_to(&mut feeder).unwrap();
        feeder.flush().unwrap();
        match feeder_reader.read_frame().unwrap() {
            Some(Frame::Ack) => {}
            other => panic!("expected ack, got {other:?}"),
        }
    };

    // Phase 1: four predictions (seqs 0..4) happen while nobody watches.
    feed(0, 4);

    // The subscriber arrives late. Its Welcome advertises the window, and
    // resuming from seq 2 replays exactly 2 and 3.
    let mut subscriber = TcpStream::connect(&address).unwrap();
    Frame::Hello { name: app.into() }
        .write_to(&mut subscriber)
        .unwrap();
    subscriber.flush().unwrap();
    let mut sub_reader = FrameReader::new(subscriber.try_clone().unwrap());
    match sub_reader.read_frame().unwrap() {
        Some(Frame::Welcome {
            app: welcomed,
            oldest_seq,
            next_seq,
        }) => {
            assert_eq!(welcomed, AppId::from_name(app));
            assert_eq!((oldest_seq, next_seq), (0, 4), "4 retained predictions");
        }
        other => panic!("expected welcome, got {other:?}"),
    }
    Frame::Subscribe {
        app: Some(AppId::from_name(app)),
        from_seq: Some(2),
    }
    .write_to(&mut subscriber)
    .unwrap();
    subscriber.flush().unwrap();

    let mut received = Vec::new();
    for _ in 0..2 {
        match sub_reader.read_frame().unwrap() {
            Some(Frame::Prediction(update)) => received.push(update),
            other => panic!("expected a replayed prediction, got {other:?}"),
        }
    }

    // Phase 2: four more predictions arrive live (seqs 4..8).
    feed(4, 8);
    for _ in 0..4 {
        match sub_reader.read_frame().unwrap() {
            Some(Frame::Prediction(update)) => received.push(update),
            other => panic!("expected a live prediction, got {other:?}"),
        }
    }

    // Exactly the missed predictions, then the live tail: 2..8, dense.
    let seqs: Vec<u64> = received.iter().map(|p| p.seq).collect();
    assert_eq!(
        seqs,
        vec![2, 3, 4, 5, 6, 7],
        "gap or duplicate at the splice"
    );
    assert!(received.iter().all(|p| p.app == AppId::from_name(app)));
    // Replayed updates carry real prediction state, not placeholders: the
    // prediction times are strictly increasing across the splice.
    for pair in received.windows(2) {
        assert!(
            pair[1].time > pair[0].time,
            "prediction times not increasing: {:?}",
            received.iter().map(|p| p.time).collect::<Vec<_>>()
        );
    }

    let stats = shutdown_via_client(TcpStream::connect(&address).unwrap());
    assert!(stats.is_balanced(), "{stats:?}");
    let report = wait_with_deadline(server, Duration::from_secs(20));
    assert_eq!(report.server.resumed_subscriptions, 1);
    assert_eq!(report.cluster.ticks, 8);
    assert_balanced(&report.cluster);
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// The fault matrix: for every seeded plan, a chaotic client runs a full
/// session through the injector while a healthy client runs beside it. The
/// chaotic session may fail — that is the point — but the accounting
/// invariant must survive and the healthy session must complete untouched.
#[test]
fn seeded_fault_plans_preserve_the_invariant_and_the_blast_radius() {
    let plans = [
        // Byte-level turbulence only: the session must actually succeed.
        ("seed=5,short=0.6,interrupt=0.3", true),
        // Bit flips: the session may die (server-side decode error, client-
        // side broken reply) but must die alone.
        ("seed=9,corrupt=0.02", false),
        // The wire goes dead after 900 bytes in either direction.
        ("seed=13,truncate=900", false),
        // Everything at once.
        (
            "seed=17,short=0.5,interrupt=0.2,corrupt=0.05,truncate=1500",
            false,
        ),
    ];
    for (spec, must_succeed) in plans {
        let plan = FaultPlan::parse(spec).unwrap();
        let server =
            Server::start(ServerListener::tcp("127.0.0.1:0").unwrap(), chaos_config()).unwrap();
        let address = server.address().to_string();

        let healthy_address = address.clone();
        let healthy = std::thread::spawn(move || {
            framed_session(
                TcpStream::connect(&healthy_address).unwrap(),
                "bystander",
                &periodic_jsonl(10.0, 12),
                2,
            )
        });

        // The chaotic session, through the injector. Failures are expected
        // for the destructive plans; panics are not.
        let chaotic = std::panic::catch_unwind(|| {
            let stream = TcpStream::connect(&address).unwrap();
            let mut faulted = FaultStream::new(stream, plan.clone());
            let mut run = || -> Result<(), Box<dyn std::error::Error>> {
                Frame::Hello {
                    name: "chaotic".into(),
                }
                .write_to(&mut faulted)?;
                for i in 0..4 {
                    Frame::Data(burst_jsonl(10.0, i)).write_to(&mut faulted)?;
                }
                Frame::End.write_to(&mut faulted)?;
                faulted.flush()?;
                let mut reader = FrameReader::new(&mut faulted);
                loop {
                    match reader.read_frame()? {
                        Some(Frame::Ack) | None => return Ok(()),
                        Some(_) => continue,
                    }
                }
            };
            run().is_ok()
        });
        let outcome = chaotic.expect("fault injection must never panic the client");
        if must_succeed {
            assert!(outcome, "benign plan `{spec}` broke the session");
        }

        // Blast radius: the bystander finished, whatever happened next door.
        let predictions = healthy.join().unwrap();
        assert_eq!(predictions.len(), 2, "plan `{spec}` disturbed a bystander");
        assert!((predictions.last().unwrap().period.unwrap() - 10.0).abs() < 1.5);

        // And the books balance, counting whatever the chaotic client
        // actually managed to submit.
        let stats = shutdown_via_client(TcpStream::connect(&address).unwrap());
        assert!(stats.is_balanced(), "plan `{spec}`: {stats:?}");
        let report = wait_with_deadline(server, Duration::from_secs(30));
        assert_balanced(&report.cluster);
    }
}

/// Decode totality: seeded random garbage — bare, and dressed in a valid
/// frame header — errors out without panicking, across every seed.
#[test]
fn random_bytes_never_panic_the_frame_decoder() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Bare garbage of random length.
        let len = rng.gen_range(1..4096usize);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let mut reader = FrameReader::new(&bytes[..]);
        // A decoded frame from garbage is astronomically unlikely, still legal.
        while let Ok(Some(_)) = reader.read_frame() {}
        // The same garbage framed under a valid magic + kind + length: the
        // payload decoder must reject it rather than crash.
        let kind = rng.gen_range(0..32u8);
        let payload_len = (bytes.len() as u32).to_be_bytes();
        let mut framed = vec![FRAME_MAGIC[0], FRAME_MAGIC[1], kind];
        framed.extend_from_slice(&payload_len);
        framed.append(&mut bytes);
        let mut reader = FrameReader::new(&framed[..]);
        while let Ok(Some(_)) = reader.read_frame() {}
    }
}

// ---------------------------------------------------------------------------
// Shutdown under load
// ---------------------------------------------------------------------------

/// `Shutdown` while several connections are mid-ingest: the daemon must
/// drain and report balanced books, never hang, and the feeders must all
/// come unstuck.
#[test]
fn shutdown_during_active_ingest_drains_balanced() {
    // A fixed analysis window keeps the drain-time ticks cheap no matter how
    // far the feeders' burst clocks ran ahead — this test is about shutdown
    // semantics, not detection quality.
    let config = ServerConfig {
        cluster: ClusterConfig {
            strategy: WindowStrategy::Fixed { length: 100.0 },
            ..chaos_config().cluster
        },
        ..chaos_config()
    };
    let server = Server::start(ServerListener::tcp("127.0.0.1:0").unwrap(), config).unwrap();
    let address = server.address().to_string();

    let mut feeders = Vec::new();
    for worker in 0..3 {
        let address = address.clone();
        feeders.push(std::thread::spawn(move || {
            let Ok(mut stream) = TcpStream::connect(&address) else {
                return;
            };
            let hello = Frame::Hello {
                name: format!("flood-{worker}"),
            };
            if hello.write_to(&mut stream).is_err() {
                return;
            }
            // Flood until the daemon hangs up on us. The write deadline
            // matters: a flooded connection ends up with a zero receive
            // window, and a client blocked in `write` with no deadline only
            // learns of the close when a persist-mode window probe finally
            // meets the dead socket — minutes later. Deadlines everywhere,
            // client side included.
            stream
                .set_write_timeout(Some(Duration::from_secs(1)))
                .unwrap();
            for i in 0.. {
                if Frame::Data(burst_jsonl(10.0, i))
                    .write_to(&mut stream)
                    .is_err()
                {
                    return;
                }
            }
        }));
    }

    // Let the flood develop, then pull the plug mid-stream.
    poll_until(Duration::from_secs(10), "ingest to start", || {
        server.cluster_stats().submitted > 10
    });
    let stats = shutdown_via_client(TcpStream::connect(&address).unwrap());
    assert!(stats.is_balanced(), "{stats:?}");

    // The feeders must come unstuck promptly — their own write deadline
    // bounds how long a blocked flood outlives the daemon.
    let unstuck = Instant::now();
    for feeder in feeders {
        feeder.join().expect("feeder panicked");
    }
    assert!(
        unstuck.elapsed() < Duration::from_secs(10),
        "feeders stayed stuck {:?} after shutdown",
        unstuck.elapsed()
    );
    let report = wait_with_deadline(server, Duration::from_secs(30));
    assert_balanced(&report.cluster);
    assert!(report.cluster.submitted > 10);
}

// ---------------------------------------------------------------------------
// Tenant quotas & overload shedding
// ---------------------------------------------------------------------------

fn tenant_config(tenant: &str, quota: TenantQuota) -> ServerConfig {
    let mut tenants = TenantPolicy::default();
    tenants.tenants.insert(tenant.into(), quota);
    ServerConfig {
        tenants,
        ..chaos_config()
    }
}

/// Two concurrent Hellos from one budgeted tenant: exactly one is admitted.
/// Releasing the slot lets the next connection in.
#[test]
fn tenant_connection_quota_is_enforced_at_hello_time() {
    let config = tenant_config(
        "acme",
        TenantQuota {
            max_connections: 1,
            ..Default::default()
        },
    );
    let server = Server::start(ServerListener::tcp("127.0.0.1:0").unwrap(), config).unwrap();
    let address = server.address().to_string();

    let mut first = TcpStream::connect(&address).unwrap();
    Frame::Hello {
        name: "acme/run-1".into(),
    }
    .write_to(&mut first)
    .unwrap();
    let mut first_reader = FrameReader::new(first.try_clone().unwrap());
    assert!(matches!(
        first_reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));

    // Second connection of the same tenant: bounced with a typed error.
    let mut second = TcpStream::connect(&address).unwrap();
    Frame::Hello {
        name: "acme/run-2".into(),
    }
    .write_to(&mut second)
    .unwrap();
    let mut second_reader = FrameReader::new(second);
    match second_reader.read_frame().unwrap() {
        Some(Frame::Error { message, .. }) => {
            assert!(message.contains("connection quota"), "{message}");
        }
        other => panic!("expected the quota error, got {other:?}"),
    }

    // A different tenant is exempt (no budget configured for it).
    let mut other = TcpStream::connect(&address).unwrap();
    Frame::Hello {
        name: "zen/run-1".into(),
    }
    .write_to(&mut other)
    .unwrap();
    let mut other_reader = FrameReader::new(other.try_clone().unwrap());
    assert!(matches!(
        other_reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));

    // Releasing acme's slot admits the tenant again. The tenant slot is
    // released before the `active` counter drops, so `active == 1` (only the
    // zen connection left) proves the slot is free.
    drop(first_reader);
    drop(first);
    poll_until(Duration::from_secs(5), "slot release", || {
        server.server_stats().active == 1
    });
    let mut third = TcpStream::connect(&address).unwrap();
    Frame::Hello {
        name: "acme/run-3".into(),
    }
    .write_to(&mut third)
    .unwrap();
    let mut third_reader = FrameReader::new(third.try_clone().unwrap());
    assert!(matches!(
        third_reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));

    drop(third_reader);
    drop(third);
    drop(other_reader);
    let report = server.finish();
    assert_eq!(report.server.quota_rejections, 1);
    assert_balanced(&report.cluster);
}

/// An exhausted tenant byte budget sheds the `Data` frame with a retryable
/// error — and the connection lives on to send within budget and flush.
#[test]
fn rate_limited_data_is_shed_with_a_retry_hint_and_the_connection_survives() {
    let config = tenant_config(
        "metered",
        TenantQuota {
            bytes_per_sec: 1000.0,
            burst_bytes: 1000.0,
            ..Default::default()
        },
    );
    let server = Server::start(ServerListener::tcp("127.0.0.1:0").unwrap(), config).unwrap();
    let mut client = TcpStream::connect(server.address()).unwrap();
    Frame::Hello {
        name: "metered/app".into(),
    }
    .write_to(&mut client)
    .unwrap();
    let mut reader = FrameReader::new(client.try_clone().unwrap());
    assert!(matches!(
        reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));

    // Far over the 1000-byte burst: refused with a proportional retry hint.
    let oversized = periodic_jsonl(10.0, 40);
    assert!(oversized.len() > 2000, "test payload too small");
    Frame::Data(oversized).write_to(&mut client).unwrap();
    client.flush().unwrap();
    match reader.read_frame().unwrap() {
        Some(Frame::Error {
            message,
            retry_after_ms,
        }) => {
            assert!(message.contains("byte budget"), "{message}");
            let wait = retry_after_ms.expect("rate limiting is retryable");
            assert!(wait >= 100, "retry hint {wait}ms for a >1000-byte deficit");
        }
        other => panic!("expected the budget error, got {other:?}"),
    }

    // The connection is still alive and serves within-budget data.
    let small = burst_jsonl(10.0, 0);
    assert!(small.len() < 500, "within burst");
    Frame::Data(small).write_to(&mut client).unwrap();
    Frame::End.write_to(&mut client).unwrap();
    client.flush().unwrap();
    loop {
        match reader.read_frame().unwrap() {
            Some(Frame::Ack) => break,
            Some(Frame::Prediction(_)) => continue,
            other => panic!("expected ack, got {other:?}"),
        }
    }

    drop(reader);
    drop(client);
    let report = server.finish();
    assert_eq!(report.server.rate_limited, 1);
    assert_eq!(report.server.protocol_errors, 0);
    assert_eq!(
        report.cluster.ticks, 1,
        "only the within-budget frame ticked"
    );
    assert_balanced(&report.cluster);
}

// ---------------------------------------------------------------------------
// Slow subscribers (socket-buffer-filling: chaos lane only)
// ---------------------------------------------------------------------------

/// Config for the slow-subscriber tests: tiny push queue, cheap ticks (fixed
/// analysis window keeps the per-tick FFT small however many bursts flow).
fn slow_subscriber_config(policy: SlowSubscriberPolicy) -> ServerConfig {
    ServerConfig {
        push_queue: 4,
        slow_policy: policy,
        write_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(150)),
        cluster: ClusterConfig {
            shards: 1,
            max_batch: 1,
            strategy: WindowStrategy::Fixed { length: 100.0 },
            ftio: FtioConfig {
                sampling_freq: 2.0,
                use_autocorrelation: false,
                ..Default::default()
            },
            ..Default::default()
        },
        ..chaos_config()
    }
}

/// A subscriber that stops reading entirely: once the socket buffer fills,
/// the pusher's write deadline expires mid-frame and the subscriber is
/// disconnected — the feeder and the engine never block. `#[ignore]`d: fills
/// a real socket buffer (CI chaos lane runs it in release).
#[cfg(unix)]
#[test]
#[ignore = "fills a socket buffer; run in the chaos lane (--include-ignored)"]
fn unresponsive_subscriber_is_disconnected_not_waited_for() {
    let path = socket_path("slow_disconnect");
    let server = Server::start(
        ServerListener::unix(&path).unwrap(),
        slow_subscriber_config(SlowSubscriberPolicy::Disconnect),
    )
    .unwrap();

    // The lazy subscriber: subscribes to everything, reads only its Welcome,
    // then never touches the socket again.
    let mut lazy = UnixStream::connect(&path).unwrap();
    Frame::Hello {
        name: "lazy".into(),
    }
    .write_to(&mut lazy)
    .unwrap();
    Frame::Subscribe {
        app: None,
        from_seq: None,
    }
    .write_to(&mut lazy)
    .unwrap();
    lazy.flush().unwrap();
    let mut lazy_reader = FrameReader::new(lazy.try_clone().unwrap());
    assert!(matches!(
        lazy_reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));

    // The feeder floods predictions until the subscriber's socket buffer is
    // full, the pusher's write times out, and the disconnect is counted.
    let mut feeder = UnixStream::connect(&path).unwrap();
    Frame::Hello {
        name: "pump".into(),
    }
    .write_to(&mut feeder)
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut sent = 0usize;
    while server.server_stats().slow_disconnects == 0 {
        assert!(
            Instant::now() < deadline,
            "no slow disconnect after {sent} bursts"
        );
        Frame::Data(burst_jsonl(10.0, sent))
            .write_to(&mut feeder)
            .unwrap();
        sent += 1;
        if sent % 64 == 0 {
            feeder.flush().unwrap();
        }
    }
    drop(feeder);

    let report = server.finish();
    assert!(report.server.slow_disconnects >= 1);
    assert_balanced(&report.cluster);
}

/// The drop-oldest policy under the same flood, with a subscriber that reads
/// in slow trickles: the bounded push queue overflows and sheds the oldest
/// updates — observable as a sequence gap at the reader between a delivered
/// prefix and the post-drop tail — instead of growing without bound.
/// `#[ignore]`d: timing-heavy. Run in the chaos lane (`--include-ignored`).
#[cfg(unix)]
#[test]
#[ignore = "fills a socket buffer; run in the chaos lane (--include-ignored)"]
fn slow_subscriber_drop_oldest_sheds_updates_not_memory() {
    let path = socket_path("slow_drop");
    let server = Server::start(
        ServerListener::unix(&path).unwrap(),
        ServerConfig {
            write_timeout: Some(Duration::from_secs(5)),
            ..slow_subscriber_config(SlowSubscriberPolicy::DropOldest)
        },
    )
    .unwrap();

    let mut slow = UnixStream::connect(&path).unwrap();
    Frame::Hello {
        name: "slow".into(),
    }
    .write_to(&mut slow)
    .unwrap();
    Frame::Subscribe {
        app: None,
        from_seq: None,
    }
    .write_to(&mut slow)
    .unwrap();
    slow.flush().unwrap();
    let slow_clone = slow.try_clone().unwrap();

    // Trickle reader: one frame, then a nap. The shared counter lets the
    // main thread see how far the trickle has drained.
    let drained = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let drained_by_reader = drained.clone();
    let trickle = std::thread::spawn(move || {
        let mut reader = FrameReader::new(slow_clone);
        let mut seqs = Vec::new();
        loop {
            match reader.read_frame() {
                Ok(Some(Frame::Prediction(update))) => {
                    seqs.push(update.seq);
                    drained_by_reader.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                }
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return seqs,
            }
        }
    });

    let mut feeder = UnixStream::connect(&path).unwrap();
    Frame::Hello {
        name: "pump".into(),
    }
    .write_to(&mut feeder)
    .unwrap();
    let mut feeder_reader = FrameReader::new(feeder.try_clone().unwrap());
    assert!(matches!(
        feeder_reader.read_frame().unwrap(),
        Some(Frame::Welcome { .. })
    ));

    // Phase 1: a small prefix, fenced by End/Ack (the ack barrier guarantees
    // these predictions are written to the subscriber), then confirmed
    // received — the reader owns seqs 0..3 before any overload starts.
    for i in 0..3 {
        Frame::Data(burst_jsonl(10.0, i))
            .write_to(&mut feeder)
            .unwrap();
    }
    Frame::End.write_to(&mut feeder).unwrap();
    feeder.flush().unwrap();
    match feeder_reader.read_frame().unwrap() {
        Some(Frame::Ack) => {}
        other => panic!("expected ack, got {other:?}"),
    }
    poll_until(Duration::from_secs(30), "prefix delivery", || {
        drained.load(std::sync::atomic::Ordering::SeqCst) >= 3
    });

    // Phase 2: the blast. The engine publishes faster than the pusher's
    // one-write-per-pass cycle, the bounded queue overflows, and the oldest
    // phase-2 updates are shed — everything the reader gets from here on
    // sits beyond a gap.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut sent = 3usize;
    while server.server_stats().push_dropped == 0 {
        assert!(Instant::now() < deadline, "no drop after {sent} bursts");
        Frame::Data(burst_jsonl(10.0, sent))
            .write_to(&mut feeder)
            .unwrap();
        sent += 1;
        if sent % 64 == 0 {
            feeder.flush().unwrap();
        }
    }
    drop(feeder_reader);
    drop(feeder);

    let dropped = server.server_stats().push_dropped;
    assert!(dropped >= 1);

    // Let the trickle reader cross the gap before pulling the plug: with the
    // feeder gone, the push queue and the socket buffer drain to a
    // standstill, and only then does shutdown close the subscriber.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last = (0, Instant::now());
    loop {
        assert!(Instant::now() < deadline, "trickle reader never went idle");
        let now = drained.load(std::sync::atomic::Ordering::SeqCst);
        if now != last.0 {
            last = (now, Instant::now());
        } else if last.1.elapsed() > Duration::from_millis(500) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    server.shutdown();
    let report = wait_with_deadline(server, Duration::from_secs(60));
    assert_balanced(&report.cluster);

    // The reader observed a sequence gap — shed updates, not reordered ones.
    drop(slow);
    let seqs = trickle.join().unwrap();
    assert!(!seqs.is_empty());
    assert!(
        seqs.windows(2).all(|w| w[1] > w[0]),
        "sequence numbers must stay monotonic"
    );
    assert!(
        seqs.windows(2).any(|w| w[1] > w[0] + 1),
        "expected a gap from drop-oldest, got dense {} seqs",
        seqs.len()
    );
}
