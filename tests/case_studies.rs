//! Cross-crate integration tests: the case studies of paper §III-B
//! (LAMMPS, Nek5000/Darshan, HACC-IO offline and online) and the miniIO
//! aliasing example of §II-E.

use ftio_core::{
    detect_heatmap, detect_trace, sample_trace_window, FtioConfig, OnlinePredictor,
    PeriodicityVerdict, WindowStrategy,
};
use ftio_synth::hacc::{generate as generate_hacc, HaccConfig};
use ftio_synth::lammps::{generate as generate_lammps, LammpsConfig};
use ftio_synth::miniio::{generate as generate_miniio, MiniIoConfig};
use ftio_synth::nek5000::{generate as generate_nek, NekConfig};

#[test]
fn lammps_period_is_recovered_with_reasonable_confidence() {
    // Paper: detected 25.73 s vs. a real mean period of 27.38 s (≈6% error),
    // c_d = 55%, refined to 84.9% by the autocorrelation.
    let workload = generate_lammps(&LammpsConfig::default(), 10);
    let result = detect_trace(&workload.trace, &FtioConfig::with_sampling_freq(10.0));
    let period = result.period().expect("LAMMPS dumps are periodic");
    let error = (period - workload.mean_period).abs() / workload.mean_period;
    assert!(
        error < 0.15,
        "period {period} vs truth {} (error {error})",
        workload.mean_period
    );
    assert!(
        result.confidence() > 0.3,
        "confidence {}",
        result.confidence()
    );
    assert!(
        result.refined_confidence() >= result.confidence() * 0.9,
        "refinement should not collapse: {} vs {}",
        result.refined_confidence(),
        result.confidence()
    );
}

#[test]
fn nek5000_reduced_window_recovers_the_checkpoint_period_better_than_the_full_one() {
    // Paper: not periodic over Δt = 86,000 s; period 4642.1 s at Δt = 56,000 s.
    // In the synthetic substitute the periodic component is strong enough that
    // the full window may still report *a* period, but the reduced window is
    // the one that matches the true checkpoint period closely — the behaviour
    // the Δt adaptation of Fig. 11 demonstrates (see EXPERIMENTS.md).
    let heatmap = generate_nek(&NekConfig::default(), 11);
    let config = FtioConfig::default();
    let true_period = NekConfig::default().checkpoint_period;

    let reduced = detect_heatmap(&heatmap.window(0.0, 56_000.0), &config);
    assert!(
        reduced.is_periodic(),
        "reduced window must expose the checkpoints"
    );
    let reduced_period = reduced.period().unwrap();
    let reduced_error = (reduced_period - true_period).abs() / true_period;
    assert!(
        reduced_error < 0.05,
        "reduced-window period {reduced_period}"
    );
    assert!(reduced.confidence() > 0.4);

    let full = detect_heatmap(&heatmap, &config);
    match full.period() {
        None => assert_eq!(full.verdict(), PeriodicityVerdict::NotPeriodic),
        Some(full_period) => {
            let full_error = (full_period - true_period).abs() / true_period;
            assert!(
                full_error > reduced_error,
                "the reduced window should track the checkpoint period more closely: \
                 full error {full_error} vs reduced error {reduced_error}"
            );
        }
    }
}

#[test]
fn hacc_offline_detection_matches_the_true_period_range() {
    // Paper: candidates at 0.1206 Hz and 0.1326 Hz; detected period 8.29 s,
    // true average 8.7 s (7.7 s without the prolonged first phase).
    let workload = generate_hacc(&HaccConfig::default(), 12);
    let result = detect_trace(&workload.trace, &FtioConfig::with_sampling_freq(10.0));
    let period = result.period().expect("HACC-IO is periodic by design");
    let upper = workload.mean_period() * 1.15;
    let lower = workload.mean_period_without_first() * 0.85;
    assert!(
        period >= lower && period <= upper,
        "period {period} outside [{lower}, {upper}]"
    );
    assert!(!result.candidates().is_empty());
}

#[test]
fn hacc_online_prediction_converges_and_adapts_its_window() {
    let workload = generate_hacc(&HaccConfig::default(), 13);
    let config = FtioConfig {
        sampling_freq: 10.0,
        use_autocorrelation: false,
        ..Default::default()
    };
    let mut predictor = OnlinePredictor::new(config, WindowStrategy::Adaptive { multiple: 3 });

    let mut last_window_length = f64::INFINITY;
    let mut final_period = None;
    for (i, &flush) in workload.flush_points.iter().enumerate() {
        let previous = if i == 0 {
            0.0
        } else {
            workload.flush_points[i - 1]
        };
        let batch: Vec<ftio_trace::IoRequest> = workload
            .trace
            .requests()
            .iter()
            .copied()
            .filter(|r| r.end > previous && r.end <= flush)
            .collect();
        predictor.ingest(batch);
        let prediction = predictor.predict(flush);
        last_window_length = prediction.window_end - prediction.window_start;
        if let Some(p) = prediction.period() {
            final_period = Some(p);
        }
    }

    let final_period = final_period.expect("the online mode finds the period");
    let truth = workload.mean_period();
    assert!(
        (final_period - truth).abs() / truth < 0.2,
        "final prediction {final_period} vs truth {truth}"
    );
    // After the adaptation the window is a few periods, far less than the run length.
    assert!(predictor.consecutive_dominant() >= 3);
    assert!(
        last_window_length < workload.trace.duration() * 0.8,
        "window {last_window_length} did not shrink"
    );
    // The merged intervals give most probability mass to the true period.
    let intervals = predictor.merged_intervals();
    assert!(!intervals.is_empty());
    let (lo, hi) = intervals[0].period_bounds();
    assert!(
        lo <= truth * 1.25 && hi >= truth * 0.7,
        "interval {lo}..{hi} vs truth {truth}"
    );
}

#[test]
fn miniio_low_sampling_frequency_is_untrustworthy() {
    // Paper Fig. 6: at too-low fs the discretised signal no longer matches the
    // original one (large abstraction error), so no result can be trusted.
    let trace = generate_miniio(&MiniIoConfig::default(), 14);
    let t0 = trace.start_time().floor();
    let t1 = trace.end_time().ceil();
    let coarse = sample_trace_window(&trace, t0, t1, 2.0);
    let fine = sample_trace_window(&trace, t0, t1, 2000.0);
    assert!(
        coarse.abstraction_error > fine.abstraction_error * 5.0,
        "coarse {} vs fine {}",
        coarse.abstraction_error,
        fine.abstraction_error
    );
    assert!(fine.abstraction_error < 0.05);
}
