//! Cross-crate integration tests: the full data path from trace collection
//! through serialisation to detection, and API-level consistency of the
//! umbrella crate.

use ftio::prelude::*;
use ftio_trace::collector::{decode_chunks, Collector, FlushMode, MemorySink, TraceFormat};
use ftio_trace::TraceSink;

/// Builds a periodic trace, pushes it through the collector + a trace format,
/// decodes it again and checks the detected period.
fn roundtrip_and_detect(format: TraceFormat) {
    let mut original = AppTrace::named("roundtrip", 8);
    for i in 0..30 {
        let start = i as f64 * 24.0;
        for rank in 0..8 {
            original.push(IoRequest::write(rank, start, start + 3.0, 250_000_000));
        }
    }

    let collector = Collector::new("roundtrip", 8, FlushMode::Online, TraceFormat::JsonLines);
    let mut sink = MemorySink::new();
    // Flush in several chunks, as the online mode would.
    for chunk in original.requests().chunks(40) {
        collector.record_all(chunk.iter().copied());
        let encoded = match format {
            TraceFormat::JsonLines => ftio_trace::jsonl::encode_requests(chunk).into_bytes(),
            TraceFormat::MessagePack => ftio_trace::msgpack::encode_requests(chunk),
        };
        sink.write_chunk(&encoded);
    }
    let decoded = decode_chunks(sink.chunks(), format).expect("decodable trace");
    assert_eq!(decoded.len(), original.len());

    let trace = AppTrace::from_requests("decoded", 8, decoded);
    let result = detect_trace(&trace, &FtioConfig::with_sampling_freq(1.0));
    let period = result.period().expect("periodic trace");
    assert!((period - 24.0).abs() < 1.5, "period {period}");
}

#[test]
fn jsonl_roundtrip_preserves_detectability() {
    roundtrip_and_detect(TraceFormat::JsonLines);
}

#[test]
fn msgpack_roundtrip_preserves_detectability() {
    roundtrip_and_detect(TraceFormat::MessagePack);
}

#[test]
fn recorder_and_heatmap_paths_agree_with_the_request_path() {
    // The same workload analysed from raw requests, from a Recorder-style
    // text rendering, and from a coarse Darshan-style heatmap must yield
    // compatible periods.
    let mut trace = AppTrace::named("multi-format", 4);
    for i in 0..40 {
        let start = i as f64 * 60.0;
        for rank in 0..4 {
            trace.push(IoRequest::write(rank, start, start + 8.0, 1_000_000_000));
        }
    }
    let from_requests = detect_trace(&trace, &FtioConfig::with_sampling_freq(1.0))
        .period()
        .unwrap();

    let text = ftio_trace::recorder::encode_requests(trace.requests());
    let decoded = ftio_trace::recorder::decode_requests(&text).unwrap();
    let recorder_trace = AppTrace::from_requests("recorder", 4, decoded);
    let from_recorder = detect_trace(&recorder_trace, &FtioConfig::with_sampling_freq(1.0))
        .period()
        .unwrap();

    let heatmap = Heatmap::from_trace(&trace, 10.0);
    let from_heatmap = detect_heatmap(&heatmap, &FtioConfig::default())
        .period()
        .unwrap();

    assert!(
        (from_requests - 60.0).abs() < 3.0,
        "requests {from_requests}"
    );
    assert!(
        (from_recorder - from_requests).abs() < 1e-6,
        "recorder {from_recorder}"
    );
    assert!(
        (from_heatmap - from_requests).abs() < 5.0,
        "heatmap {from_heatmap}"
    );
}

#[test]
fn umbrella_prelude_covers_the_main_workflow() {
    // Detection, simulation and scheduling types are all reachable from the
    // prelude, and compose: simulate a tiny cluster, feed a job's trace to FTIO.
    let jobs = vec![
        JobSpec::periodic("app-a", 16, 1, 40.0, 0.2, 6, 2.0e9),
        JobSpec::periodic("app-b", 16, 1, 55.0, 0.2, 5, 2.0e9),
    ];
    let mut policy = ftio_sim::FairSharePolicy;
    let result = Simulator::new(FileSystem::with_bandwidth(8.0e9), jobs, &mut policy).run();
    assert_eq!(result.jobs.len(), 2);

    let detection = detect_trace(&result.jobs[0].trace, &FtioConfig::with_sampling_freq(1.0));
    let period = detection.period().expect("simulated job is periodic");
    assert!((period - 40.0).abs() < 4.0, "period {period}");
}

#[test]
fn sampling_frequency_recommendation_resolves_the_workload() {
    let library = PhaseLibrary::paper_default(77);
    let generated = ftio_synth::generate_semi_synthetic(
        &SemiSyntheticConfig {
            iterations: 6,
            ..Default::default()
        },
        &library,
        3,
    );
    let fs = ftio_core::recommend_sampling_freq(&generated.trace, 100.0);
    assert!(fs > 0.0 && fs <= 100.0);
    // Using the recommended frequency, detection still finds the right period.
    let result = detect_trace(
        &generated.trace,
        &FtioConfig {
            sampling_freq: fs.min(5.0),
            use_autocorrelation: false,
            ..Default::default()
        },
    );
    let period = result.period().expect("periodic");
    assert!(generated.detection_error(period) < 0.1);
}
