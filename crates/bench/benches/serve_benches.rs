//! Criterion benchmarks of the serving layer: end-to-end socket ingest
//! throughput — encoded bytes through a real Unix-domain (or loopback TCP)
//! socket, the framed wire protocol, format decoding, the shard queues and
//! the detection ticks (`serve_ingest`), and the concurrent-client sweep
//! (`serve_clients`). EXPERIMENTS.md records the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Write;

use ftio_core::server::{Server, ServerConfig, ServerListener};
use ftio_core::{BackpressurePolicy, ClusterConfig, FtioConfig, WindowStrategy};
use ftio_synth::client_stream::{ChunkEncoding, FleetStream};
use ftio_synth::multi_app::{MultiAppConfig, MultiAppWorkload};
use ftio_trace::wire::{Frame, FrameReader};

fn server_config(shards: usize) -> ServerConfig {
    ServerConfig {
        max_connections: 64,
        batch_size: 256,
        cluster: ClusterConfig {
            shards,
            queue_capacity: 1024,
            max_batch: 16,
            policy: BackpressurePolicy::Block,
            ftio: FtioConfig {
                sampling_freq: 2.0,
                use_autocorrelation: false,
                ..Default::default()
            },
            // A bounded window keeps per-tick FFT cost constant, so the
            // sweep prices the socket + framing + dispatch path.
            strategy: WindowStrategy::Fixed { length: 300.0 },
            ..ClusterConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn fleet(apps: usize, flushes_per_app: usize) -> FleetStream {
    let workload = MultiAppWorkload::generate(
        &MultiAppConfig {
            apps,
            flushes_per_app,
            ranks_per_app: 4,
            ..Default::default()
        },
        0xBE9C,
    );
    FleetStream::new(&workload, ChunkEncoding::Jsonl)
}

#[cfg(unix)]
fn listener(tag: &str) -> ServerListener {
    ServerListener::unix(std::env::temp_dir().join(format!("ftio_bench_{tag}.sock")))
        .expect("bind bench socket")
}

#[cfg(not(unix))]
fn listener(_tag: &str) -> ServerListener {
    ServerListener::tcp("127.0.0.1:0").expect("bind bench socket")
}

#[cfg(unix)]
fn connect(address: &str) -> impl std::io::Read + std::io::Write {
    std::os::unix::net::UnixStream::connect(address).expect("connect to bench socket")
}

#[cfg(not(unix))]
fn connect(address: &str) -> impl std::io::Read + std::io::Write {
    std::net::TcpStream::connect(address).expect("connect to bench socket")
}

/// One client session: hello, every chunk as a data frame, end, await ack.
fn drive_client(address: &str, name: &str, chunks: &[Vec<u8>]) {
    let mut stream = connect(address);
    Frame::Hello { name: name.into() }
        .write_to(&mut stream)
        .expect("hello");
    for chunk in chunks {
        Frame::Data(chunk.clone())
            .write_to(&mut stream)
            .expect("data");
    }
    Frame::End.write_to(&mut stream).expect("end");
    stream.flush().expect("flush");
    let mut reader = FrameReader::new(stream);
    loop {
        match reader.read_frame().expect("server reply") {
            Some(Frame::Ack) => break,
            Some(_) => continue,
            None => panic!("server closed before the ack"),
        }
    }
}

/// The whole fleet through one server, `clients` concurrent connections.
fn serve_fleet(stream: &FleetStream, shards: usize, tag: &str) -> u64 {
    let server = Server::start(listener(tag), server_config(shards)).expect("start server");
    let address = server.address().to_string();
    let handles: Vec<_> = stream
        .clients()
        .iter()
        .map(|(app, chunks)| {
            let address = address.clone();
            let name = format!("bench-{}", app.raw());
            let payloads: Vec<Vec<u8>> = chunks.iter().map(|chunk| chunk.payload.clone()).collect();
            std::thread::spawn(move || drive_client(&address, &name, &payloads))
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let report = server.finish();
    assert_eq!(report.server.protocol_errors, 0, "bench stream broke");
    report.cluster.submitted
}

fn bench_serve_ingest(c: &mut Criterion) {
    // The vendored criterion stub has no throughput reporting; derive MB/s
    // from the wall time and the printed byte counts when recording
    // EXPERIMENTS.md. A whole session pays a fixed ~2×20 ms poll-interval
    // floor (accept + shutdown observation), so the small payload measures
    // session latency and the large one measures per-byte ingest cost.
    let mut group = c.benchmark_group("serve_ingest");
    group.sample_size(10);
    for (label, flushes) in [("small", 24), ("large", 960)] {
        let stream = fleet(4, flushes);
        println!(
            "serve_ingest/{label} payload: {} bytes",
            stream.total_bytes()
        );
        group.bench_with_input(
            BenchmarkId::new("unix_socket_jsonl_4_apps", label),
            &stream,
            |b, stream| {
                b.iter(|| black_box(serve_fleet(stream, 2, "ingest")));
            },
        );
    }
    group.finish();
}

fn bench_serve_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_clients");
    group.sample_size(10);
    for clients in [1usize, 4, 8] {
        let stream = fleet(clients, 24);
        println!(
            "serve_clients/{clients} payload: {} bytes",
            stream.total_bytes()
        );
        group.bench_with_input(
            BenchmarkId::new("clients", clients),
            &stream,
            |b, stream| {
                b.iter(|| black_box(serve_fleet(stream, 4, "clients")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve_ingest, bench_serve_clients);
criterion_main!(benches);
