//! Criterion benchmarks for the design choices DESIGN.md calls out for
//! ablation: the outlier-detection method, the candidate tolerance, the
//! autocorrelation refinement, and the online window strategy. These measure
//! the *cost* of each alternative; the accuracy comparison lives in the
//! integration tests and the fig binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_core::{detect_trace, FtioConfig, OnlinePredictor, OutlierMethod, WindowStrategy};
use ftio_synth::ior::PhaseLibrary;
use ftio_synth::semi::{generate as generate_semi, SemiSyntheticConfig};

fn test_trace() -> ftio_trace::AppTrace {
    let library = PhaseLibrary::paper_default(0xAB);
    generate_semi(&SemiSyntheticConfig::default(), &library, 0xAB).trace
}

fn bench_outlier_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_outlier_method");
    group.sample_size(15);
    let trace = test_trace();
    let methods: [(&str, OutlierMethod); 5] = [
        ("zscore", OutlierMethod::ZScore { threshold: 3.0 }),
        (
            "dbscan",
            OutlierMethod::DbScan {
                eps_factor: 0.5,
                min_pts: 4,
            },
        ),
        (
            "lof",
            OutlierMethod::Lof {
                k: 10,
                threshold: 1.5,
            },
        ),
        (
            "isolation_forest",
            OutlierMethod::IsolationForest {
                threshold: 0.6,
                seed: 1,
            },
        ),
        (
            "peak_detection",
            OutlierMethod::PeakDetection {
                prominence_factor: 0.3,
            },
        ),
    ];
    for (name, method) in methods {
        let config = FtioConfig {
            sampling_freq: 1.0,
            outlier_method: method,
            use_autocorrelation: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| black_box(detect_trace(black_box(t), &config)));
        });
    }
    group.finish();
}

fn bench_autocorrelation_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_acf_refinement");
    group.sample_size(15);
    let trace = test_trace();
    for (name, use_acf) in [("with_acf", true), ("without_acf", false)] {
        let config = FtioConfig {
            sampling_freq: 1.0,
            use_autocorrelation: use_acf,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| black_box(detect_trace(black_box(t), &config)));
        });
    }
    group.finish();
}

fn bench_window_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_window_strategy");
    group.sample_size(15);
    let trace = test_trace();
    let flush_points: Vec<f64> = (1..=10).map(|i| i as f64 * 45.0).collect();
    let strategies = [
        ("full_history", WindowStrategy::FullHistory),
        ("adaptive_3", WindowStrategy::Adaptive { multiple: 3 }),
        ("fixed_120s", WindowStrategy::Fixed { length: 120.0 }),
    ];
    for (name, strategy) in strategies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| {
                let config = FtioConfig {
                    sampling_freq: 1.0,
                    use_autocorrelation: false,
                    ..Default::default()
                };
                let mut predictor = OnlinePredictor::new(config, strategy);
                predictor.ingest(t.requests().iter().copied());
                for &flush in &flush_points {
                    black_box(predictor.predict(flush));
                }
            });
        });
    }
    group.finish();
}

fn bench_tolerance_values(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tolerance");
    group.sample_size(15);
    let trace = test_trace();
    for tolerance in [0.45, 0.6, 0.8, 0.95] {
        let config = FtioConfig {
            sampling_freq: 1.0,
            tolerance,
            use_autocorrelation: false,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("tol_{tolerance}")),
            &trace,
            |b, t| {
                b.iter(|| black_box(detect_trace(black_box(t), &config)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_outlier_methods,
    bench_autocorrelation_refinement,
    bench_window_strategies,
    bench_tolerance_values
);
criterion_main!(benches);
