//! Criterion benchmarks of the sharded multi-application cluster engine.
//!
//! PR 2 made the per-tick spectral work cheap (cached plans, zero steady-state
//! allocations), so dispatch became the scaling question: how fast can the
//! online layer move a whole fleet's flushes through detection? These benches
//! sweep the fleet size against the shard count (`engine_throughput`) and the
//! coalescing window (`engine_batching`); EXPERIMENTS.md records the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_core::{BackpressurePolicy, ClusterConfig, ClusterEngine, FtioConfig, WindowStrategy};
use ftio_synth::multi_app::{FlushEvent, MultiAppConfig, MultiAppWorkload};

fn fleet_events(apps: usize) -> Vec<FlushEvent> {
    let workload = MultiAppWorkload::generate(
        &MultiAppConfig {
            apps,
            flushes_per_app: 6,
            ranks_per_app: 2,
            ..Default::default()
        },
        0xE2617E,
    );
    workload.events()
}

fn engine_config(shards: usize, max_batch: usize) -> ClusterConfig {
    threaded_config(shards, max_batch, 0)
}

fn threaded_config(shards: usize, max_batch: usize, threads: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        queue_capacity: 1024,
        max_batch,
        threads,
        policy: BackpressurePolicy::Block,
        ftio: FtioConfig {
            sampling_freq: 2.0,
            use_autocorrelation: false,
            ..Default::default()
        },
        strategy: WindowStrategy::Adaptive { multiple: 3 },
        ..ClusterConfig::default()
    }
}

/// Replays the fleet's flush schedule through a fresh engine and drains it.
fn replay(config: ClusterConfig, events: &[FlushEvent]) -> usize {
    let engine = ClusterEngine::spawn(config);
    for event in events {
        engine.submit(event.app, event.requests.clone(), event.now);
    }
    let results = engine.finish();
    results.values().map(Vec::len).sum()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for apps in [16usize, 64, 256] {
        let events = fleet_events(apps);
        for shards in [1usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("apps_x_shards", format!("{apps}x{shards}")),
                &events,
                |b, events| {
                    // max_batch = 1: every flush is a full detection tick, so
                    // the sweep measures how sharding scales the tick load
                    // itself (the batching group below prices coalescing).
                    b.iter(|| black_box(replay(engine_config(shards, 1), events)));
                },
            );
        }
    }
    group.finish();
}

fn bench_cluster_scaling(c: &mut Criterion) {
    // The PR 9 question: with shards (routing partitions) decoupled from the
    // worker thread budget, how does a fixed fleet scale across both axes?
    // threads = 0 is the historical one-worker-per-shard layout; the engine
    // clamps the budget to the shard count, so e.g. 1x8 still runs 1 worker.
    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);
    let events = fleet_events(64);
    for shards in [1usize, 4, 8, 16] {
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("shards_x_threads", format!("{shards}x{threads}")),
                &events,
                |b, events| {
                    b.iter(|| black_box(replay(threaded_config(shards, 1, threads), events)));
                },
            );
        }
    }
    group.finish();
}

fn bench_engine_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batching");
    group.sample_size(10);
    let events = fleet_events(64);
    for max_batch in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("batch", max_batch),
            &events,
            |b, events| {
                b.iter(|| black_box(replay(engine_config(4, max_batch), events)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_cluster_scaling,
    bench_engine_batching
);
criterion_main!(benches);
