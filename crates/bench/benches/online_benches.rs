//! Criterion benchmarks of the online prediction tick.
//!
//! PR 5's tentpole claim: with the persistent `IncrementalSampler`, the
//! steady-state tick cost is **independent of how much history the predictor
//! has collected**, while the pre-incremental baseline (`TickMode::Rebuild`,
//! which re-bins the full request list on every tick) grows linearly with it.
//!
//! The `online_tick_vs_history` sweep holds the covered time span — and
//! therefore the discretised signal and its FFT window — fixed while scaling
//! the request density 8× (`ftio_synth::LongHistoryConfig`), so the numbers
//! isolate exactly the sampling stage the tentpole rebuilt. EXPERIMENTS.md
//! records the table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_core::{FtioConfig, OnlinePredictor, TickMode, WindowStrategy};
use ftio_synth::{long_history_requests, LongHistoryConfig};

fn analysis_config() -> FtioConfig {
    FtioConfig {
        sampling_freq: 2.0,
        use_autocorrelation: false,
        ..Default::default()
    }
}

/// A predictor warmed with `ranks`-dense history over the fixed span, plus
/// the tick time used for every measured prediction.
fn warmed_predictor(mode: TickMode, ranks: usize) -> (OnlinePredictor, f64) {
    let history = LongHistoryConfig {
        ranks,
        ..Default::default()
    };
    let mut predictor =
        OnlinePredictor::with_mode(analysis_config(), WindowStrategy::FullHistory, mode);
    predictor.ingest(long_history_requests(&history));
    // Tick at the end of the last burst: the full-history window covers the
    // whole fixed span, so every measured tick analyses the same signal.
    let now = (history.bursts - 1) as f64 * history.period + history.burst_duration;
    (predictor, now)
}

fn bench_online_tick_vs_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_tick_vs_history");
    group.sample_size(20);
    for (mode, label) in [
        (TickMode::Incremental, "incremental"),
        (TickMode::Rebuild, "rebuild"),
    ] {
        // Request density 8..64 ranks per burst: ingested history grows 8×
        // (1,600 → 12,800 requests) at an identical spectral window.
        for ranks in [8usize, 16, 32, 64] {
            let requests = LongHistoryConfig {
                ranks,
                ..Default::default()
            }
            .total_requests();
            let (mut predictor, now) = warmed_predictor(mode, ranks);
            group.bench_function(BenchmarkId::new(label, format!("{requests}req")), |b| {
                b.iter(|| black_box(predictor.predict(black_box(now))));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_online_tick_vs_history);
criterion_main!(benches);
