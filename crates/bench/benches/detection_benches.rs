//! Criterion benchmarks of the full FTIO detection and prediction pipeline.
//!
//! These measure the end-to-end cost the paper discusses in §III-C (the
//! analysis runtime, which "was negligible" and "does not represent overhead
//! to applications"): offline detection over case-study-sized traces and one
//! online prediction step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_core::{detect_trace, FtioConfig, OnlinePredictor, WindowStrategy};
use ftio_synth::hacc::{generate as generate_hacc, HaccConfig};
use ftio_synth::ior::{generate_benchmark_downsampled, IorBenchmarkConfig, PhaseLibrary};
use ftio_synth::lammps::{generate as generate_lammps, LammpsConfig};
use ftio_synth::semi::{generate as generate_semi, SemiSyntheticConfig};

fn bench_offline_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_detection");
    group.sample_size(20);

    let ior = generate_benchmark_downsampled(&IorBenchmarkConfig::default(), 32, 1);
    let lammps = generate_lammps(&LammpsConfig::default(), 2).trace;
    let hacc = generate_hacc(&HaccConfig::default(), 3).trace;
    let cases = [
        ("ior_fs10", &ior, 10.0),
        ("lammps_fs10", &lammps, 10.0),
        ("hacc_fs10", &hacc, 10.0),
        ("ior_fs1", &ior, 1.0),
    ];
    for (name, trace, fs) in cases {
        let config = FtioConfig {
            sampling_freq: fs,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), trace, |b, t| {
            b.iter(|| black_box(detect_trace(black_box(t), &config)));
        });
    }
    group.finish();
}

fn bench_semi_synthetic_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("semi_synthetic_detection");
    group.sample_size(15);
    let library = PhaseLibrary::paper_default(9);
    let trace = generate_semi(&SemiSyntheticConfig::default(), &library, 17);
    let config = FtioConfig {
        sampling_freq: 1.0,
        use_autocorrelation: false,
        ..Default::default()
    };
    group.bench_function("single_trace_fs1", |b| {
        b.iter(|| black_box(detect_trace(black_box(&trace.trace), &config)));
    });
    group.finish();
}

fn bench_online_prediction_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_prediction");
    group.sample_size(20);
    let workload = generate_hacc(&HaccConfig::default(), 5);
    let config = FtioConfig {
        sampling_freq: 10.0,
        use_autocorrelation: false,
        ..Default::default()
    };
    group.bench_function("hacc_prediction_step", |b| {
        b.iter(|| {
            let mut predictor =
                OnlinePredictor::new(config, WindowStrategy::Adaptive { multiple: 3 });
            predictor.ingest(workload.trace.requests().iter().copied());
            for &flush in &workload.flush_points {
                black_box(predictor.predict(flush));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_offline_detection,
    bench_semi_synthetic_batch,
    bench_online_prediction_step
);
criterion_main!(benches);
