//! Criterion benchmarks of the streaming replay front-end: requests/s from
//! encoded trace bytes through format decoding, the shard queues and the
//! detection ticks (`replay_format`), and the shard sweep over a multi-app
//! fleet source (`replay_shards`). EXPERIMENTS.md records the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_core::{
    BackpressurePolicy, ClusterConfig, ClusterEngine, FtioConfig, Pacing, WindowStrategy,
};
use ftio_synth::multi_app::{MultiAppConfig, MultiAppWorkload};
use ftio_trace::source::{from_bytes, MemorySource};
use ftio_trace::{jsonl, msgpack, tmio, AppId, IoRequest, SourceFormat};

/// One application's periodic trace: `count` bursts of 2 ranks each.
fn periodic_requests(count: usize) -> Vec<IoRequest> {
    let mut requests = Vec::with_capacity(count * 2);
    for i in 0..count {
        let start = i as f64 * 10.0;
        for rank in 0..2 {
            requests.push(IoRequest::write(rank, start, start + 2.0, 500_000_000));
        }
    }
    requests
}

fn engine_config(shards: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        queue_capacity: 1024,
        max_batch: 16,
        policy: BackpressurePolicy::Block,
        ftio: FtioConfig {
            sampling_freq: 2.0,
            use_autocorrelation: false,
            ..Default::default()
        },
        // A bounded window keeps the per-tick FFT cost constant, so the
        // format sweep prices decoding + dispatch rather than window growth.
        strategy: WindowStrategy::Fixed { length: 300.0 },
        ..ClusterConfig::default()
    }
}

/// Decode the encoded trace and push it through a 2-shard engine.
fn replay_bytes(format: SourceFormat, bytes: &[u8]) -> u64 {
    let mut source =
        from_bytes(format, AppId::new(1), bytes.to_vec(), 256).expect("benchmark bytes decode");
    let engine = ClusterEngine::spawn(engine_config(2));
    let stats = engine
        .replay(source.as_mut(), Pacing::AsFast)
        .expect("replay");
    engine.finish();
    stats.requests
}

fn bench_replay_format(c: &mut Criterion) {
    let requests = periodic_requests(1500);
    let corpora: Vec<(SourceFormat, Vec<u8>)> = vec![
        (
            SourceFormat::Jsonl,
            jsonl::encode_requests(&requests).into_bytes(),
        ),
        (SourceFormat::Msgpack, msgpack::encode_requests(&requests)),
        (
            SourceFormat::TmioJson,
            tmio::encode_json(2, &requests).into_bytes(),
        ),
        (
            SourceFormat::TmioMsgpack,
            tmio::encode_msgpack(2, &requests),
        ),
    ];
    let mut group = c.benchmark_group("replay_format");
    group.sample_size(10);
    for (format, bytes) in &corpora {
        group.bench_with_input(
            BenchmarkId::new("format", format.as_str()),
            bytes,
            |b, bytes| {
                b.iter(|| black_box(replay_bytes(*format, bytes)));
            },
        );
    }
    group.finish();
}

fn bench_replay_shards(c: &mut Criterion) {
    let workload = MultiAppWorkload::generate(
        &MultiAppConfig {
            apps: 32,
            flushes_per_app: 6,
            ranks_per_app: 2,
            ..Default::default()
        },
        0x4E91A7,
    );
    let source: MemorySource = workload.to_source();
    let mut group = c.benchmark_group("replay_shards");
    group.sample_size(10);
    for shards in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &source, |b, source| {
            b.iter(|| {
                let mut source = source.clone();
                let engine = ClusterEngine::spawn(engine_config(shards));
                let stats = engine.replay(&mut source, Pacing::AsFast).expect("replay");
                engine.finish();
                black_box(stats.requests)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay_format, bench_replay_shards);
criterion_main!(benches);
