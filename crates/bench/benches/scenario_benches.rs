//! Criterion benchmarks of the adversarial evaluation harness: scenario
//! generation cost per family (`scenario_generate`), and the full
//! generate → predict → score loop for the two worst-offender families
//! (`scenario_evaluate`). The harness itself must stay cheap enough to run
//! on every CI push, so its cost is pinned here. EXPERIMENTS.md records the
//! numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_core::eval::{score_predictions, EvalConfig};
use ftio_core::{FtioConfig, OnlinePredictor, WindowStrategy};
use ftio_synth::drift::{scenario_for, Scenario, ScenarioFamily};

const SEED: u64 = 42;

fn analysis_config() -> FtioConfig {
    FtioConfig {
        sampling_freq: 2.0,
        use_autocorrelation: false,
        ..Default::default()
    }
}

/// Run every application of a scenario through the synchronous predictor
/// and score it against its truth; returns the total number of scored ticks.
fn evaluate(scenario: &Scenario) -> usize {
    let eval_config = EvalConfig::default();
    let mut total = 0;
    for app in scenario.apps() {
        let mut predictor =
            OnlinePredictor::new(analysis_config(), WindowStrategy::Adaptive { multiple: 3 });
        let mut predictions = Vec::new();
        for flush in scenario.flushes.iter().filter(|f| f.app == app) {
            predictor.ingest(flush.requests.iter().copied());
            predictions.push(predictor.predict(flush.now));
        }
        let truth = scenario.truth(app).expect("truth per app");
        total += score_predictions(&predictions, truth, &eval_config)
            .ticks
            .len();
    }
    total
}

fn bench_scenario_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_generate");
    group.sample_size(20);
    for family in ScenarioFamily::all() {
        group.bench_with_input(
            BenchmarkId::new("family", family.as_str()),
            &family,
            |b, family| {
                b.iter(|| black_box(scenario_for(*family, SEED).total_requests()));
            },
        );
    }
    group.finish();
}

fn bench_scenario_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_evaluate");
    group.sample_size(10);
    // The two worst-offender families of the accuracy corpus: the harness
    // has to stay fast on exactly the scenarios CI runs most often.
    for family in [ScenarioFamily::Drift, ScenarioFamily::BurstyInterference] {
        let scenario = scenario_for(family, SEED);
        group.bench_with_input(
            BenchmarkId::new("family", family.as_str()),
            &scenario,
            |b, scenario| {
                b.iter(|| black_box(evaluate(scenario)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scenario_generate, bench_scenario_evaluate);
criterion_main!(benches);
