//! Criterion micro-benchmarks of the signal-processing substrate.
//!
//! The paper reports that the analysis itself takes a few seconds at most
//! (§III-C: 2.2 s for LAMMPS, 5.7 s for IOR, 8.7 s for Nek5000, 3.6 s for
//! HACC-IO, dominated by data import); these benchmarks measure the Rust
//! implementation of the underlying primitives — FFT, autocorrelation, peak
//! detection, outlier detection — over the signal sizes those analyses use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_dsp::correlation::{autocorrelation, autocorrelation_fft};
use ftio_dsp::fft::{fft_real, Fft, MIN_CONCURRENT_SIZE};
use ftio_dsp::peaks::{find_peaks, prominence_naive, PeakConfig};
use ftio_dsp::pool::{install, Pool};
use ftio_dsp::rfft::rfft;
use ftio_dsp::spectrum::Spectrum;
use ftio_dsp::zscore::outlier_indices;

fn bandwidth_signal(n: usize, period: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % period < period / 5 {
                8.0e9
            } else {
                1.0e6
            }
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_real");
    group.sample_size(30);
    // 781 s @ 10 Hz (IOR), 86,000 s @ 0.006 Hz (Nek5000, ~516 bins),
    // a power of two, and a prime length (Bluestein path).
    for &n in &[512usize, 781, 7817, 8192, 7919] {
        let signal = bandwidth_signal(n, 97);
        group.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| black_box(fft_real(black_box(s))));
        });
    }
    group.finish();
}

fn bench_rfft(c: &mut Criterion) {
    // The half-spectrum real-input path `Spectrum::from_signal` uses: same
    // lengths as `fft_real` so the two tables compare line by line.
    let mut group = c.benchmark_group("rfft");
    group.sample_size(30);
    for &n in &[512usize, 781, 7817, 8192, 7919] {
        let signal = bandwidth_signal(n, 97);
        group.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| black_box(rfft(black_box(s))));
        });
    }
    group.finish();
}

fn bench_plan_construction(c: &mut Criterion) {
    // What the plan cache saves on every hot-loop call: twiddle/permutation
    // tables for the power-of-two kernel, chirp + filter FFT for Bluestein.
    let mut group = c.benchmark_group("fft_plan_build");
    group.sample_size(20);
    for &n in &[8192usize, 7919] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(Fft::new(black_box(n))));
        });
    }
    group.finish();
}

fn bench_concurrent_fft(c: &mut Criterion) {
    // Lengths at or above the four-step cutoff fan their column/row passes
    // across the ambient pool; the thread sweep prices that fan-out. The
    // output is bit-identical across thread counts (same plan, same order).
    let mut group = c.benchmark_group("fft_concurrent");
    group.sample_size(20);
    for &n in &[MIN_CONCURRENT_SIZE, 2 * MIN_CONCURRENT_SIZE] {
        let signal = bandwidth_signal(n, 97);
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), threads),
                &signal,
                |b, s| {
                    b.iter(|| install(&pool, || black_box(fft_real(black_box(s)))));
                },
            );
        }
    }
    group.finish();
}

fn bench_pool1_hot_lengths(c: &mut Criterion) {
    // Regression guard: the hot sub-cutoff lengths the detection pipeline
    // actually runs must cost the same whether a one-thread pool is installed
    // or no pool at all — below the cutoff the pool is never consulted.
    let mut group = c.benchmark_group("fft_pool1_guard");
    group.sample_size(30);
    let pool = Pool::new(1);
    for &n in &[7817usize, 7919, 8192] {
        let signal = bandwidth_signal(n, 97);
        group.bench_with_input(BenchmarkId::new("inline", n), &signal, |b, s| {
            b.iter(|| black_box(fft_real(black_box(s))));
        });
        group.bench_with_input(BenchmarkId::new("pool1", n), &signal, |b, s| {
            b.iter(|| install(&pool, || black_box(fft_real(black_box(s)))));
        });
    }
    group.finish();
}

fn bench_spectrum_and_outliers(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_spectrum_plus_zscore");
    group.sample_size(30);
    for &n in &[781usize, 7817] {
        let signal = bandwidth_signal(n, 111);
        group.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| {
                let spectrum = Spectrum::from_signal(black_box(s), 10.0);
                let powers = spectrum.powers();
                black_box(outlier_indices(&powers[1..], 3.0))
            });
        });
    }
    group.finish();
}

fn bench_autocorrelation(c: &mut Criterion) {
    let mut group = c.benchmark_group("autocorrelation");
    group.sample_size(20);
    for &n in &[781usize, 2000, 7817] {
        let signal = bandwidth_signal(n, 111);
        group.bench_with_input(BenchmarkId::new("auto", n), &signal, |b, s| {
            b.iter(|| black_box(autocorrelation(black_box(s))));
        });
        group.bench_with_input(BenchmarkId::new("fft_path", n), &signal, |b, s| {
            b.iter(|| black_box(autocorrelation_fft(black_box(s))));
        });
    }
    group.finish();
}

fn bench_peak_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_peaks");
    group.sample_size(30);
    let acf = autocorrelation(&bandwidth_signal(7817, 111));
    // The full pipeline: local maxima + filters + single-pass monotonic-stack
    // prominences (O(n) for all peaks together since PR 5).
    group.bench_function("acf_7817", |b| {
        b.iter(|| black_box(find_peaks(black_box(&acf), &PeakConfig::with_height(0.15))));
    });
    // The retained pre-PR-5 prominence baseline: one O(n) walk per peak.
    let peaks = find_peaks(&acf, &PeakConfig::with_height(0.15));
    group.bench_function("acf_7817_naive_prominence", |b| {
        b.iter(|| {
            peaks
                .iter()
                .map(|p| prominence_naive(black_box(&acf), p.index))
                .sum::<f64>()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_rfft,
    bench_plan_construction,
    bench_concurrent_fft,
    bench_pool1_hot_lengths,
    bench_spectrum_and_outliers,
    bench_autocorrelation,
    bench_peak_detection
);
criterion_main!(benches);
