//! Criterion benchmarks of the crash-safe checkpoint layer: snapshot and
//! restore cost of a warm [`OnlinePredictor`] as a function of ingested
//! history length (`checkpoint_predictor`), and of a multi-application
//! [`ClusterEngine`] as a function of fleet size (`checkpoint_cluster`).
//! EXPERIMENTS.md records the numbers; the interesting question is how the
//! cost of a periodic `--checkpoint-every` compares to the replay work it
//! protects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftio_core::{
    ClusterConfig, ClusterEngine, FtioConfig, MemoryPolicy, OnlinePredictor, RetentionPolicy,
    WindowStrategy,
};
use ftio_synth::scenarios::{long_history_requests, LongHistoryConfig};
use ftio_trace::AppId;

fn analysis_config() -> FtioConfig {
    FtioConfig {
        sampling_freq: 2.0,
        use_autocorrelation: false,
        ..Default::default()
    }
}

/// A predictor warmed with `bursts` bursts of the long-history workload and
/// a handful of prediction ticks (so the snapshot carries real history).
fn warm_predictor(bursts: usize, memory: MemoryPolicy) -> OnlinePredictor {
    let config = LongHistoryConfig {
        bursts,
        ranks: 4,
        ..Default::default()
    };
    let mut predictor = OnlinePredictor::with_memory(
        analysis_config(),
        WindowStrategy::Adaptive { multiple: 3 },
        memory,
    );
    predictor.ingest(long_history_requests(&config));
    for tick in 1..=8 {
        predictor.predict(config.span() * tick as f64 / 8.0);
    }
    predictor
}

/// Snapshot + restore cost vs history length, for the unbounded (keep-all)
/// and ring-bounded predictor. Ring retention caps the payload, so its cost
/// should stay flat while keep-all grows with the horizon.
fn bench_checkpoint_predictor(c: &mut Criterion) {
    let ring = MemoryPolicy {
        retention: RetentionPolicy::Ring { max_bins: 4096 },
        retain_requests: false,
    };
    for (label, memory) in [("keep_all", MemoryPolicy::default()), ("ring", ring)] {
        let mut group = c.benchmark_group(format!("checkpoint_predictor/{label}"));
        for bursts in [256usize, 1024, 4096] {
            let predictor = warm_predictor(bursts, memory);
            let bytes = predictor.snapshot();
            group.bench_with_input(BenchmarkId::new("snapshot", bursts), &bursts, |b, _| {
                b.iter(|| black_box(predictor.snapshot()))
            });
            group.bench_with_input(BenchmarkId::new("restore", bursts), &bursts, |b, _| {
                b.iter(|| OnlinePredictor::restore(black_box(&bytes)).expect("restore"))
            });
        }
        group.finish();
    }
}

/// Snapshot + restore cost of a whole engine vs fleet size: `apps`
/// applications, each with a modest warm history, spread over 4 shards.
fn bench_checkpoint_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_cluster");
    for apps in [4usize, 16, 64] {
        let workload = LongHistoryConfig {
            bursts: 64,
            ranks: 2,
            ..Default::default()
        };
        let requests = long_history_requests(&workload);
        let engine = ClusterEngine::spawn(ClusterConfig {
            shards: 4,
            ftio: analysis_config(),
            strategy: WindowStrategy::Adaptive { multiple: 3 },
            ..ClusterConfig::default()
        });
        for app in 0..apps {
            engine.submit(AppId::new(app as u64), requests.clone(), workload.span());
        }
        engine.flush();
        let bytes = engine.snapshot();
        group.bench_with_input(BenchmarkId::new("snapshot", apps), &apps, |b, _| {
            b.iter(|| black_box(engine.snapshot()))
        });
        group.bench_with_input(BenchmarkId::new("restore", apps), &apps, |b, _| {
            b.iter(|| ClusterEngine::restore(black_box(&bytes)).expect("restore"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_checkpoint_predictor,
    bench_checkpoint_cluster
);
criterion_main!(benches);
