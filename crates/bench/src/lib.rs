//! # ftio-bench
//!
//! Experiment harness for FTIO-rs: one binary per figure of the paper's
//! evaluation (see `src/bin/fig*.rs` and the experiment index in DESIGN.md),
//! plus Criterion micro-benchmarks of the analysis itself (`benches/`).
//!
//! The binaries print the same rows/series the paper's figures report —
//! detection-error box plots over the parameter sweeps, case-study spectra and
//! periods, the tracing-overhead curves, and the Set-10 scheduling comparison —
//! next to the values the paper states, so the shape of every result can be
//! compared directly. `EXPERIMENTS.md` records one such comparison.

pub mod experiments;

pub use experiments::{
    accuracy_config, detection_error, error_table_header, evaluate_point, evaluate_sweep,
    format_error_row, ErrorPoint, DEFAULT_TRACES_PER_POINT,
};
