//! Figure 17 / §IV: coupling FTIO with the Set-10 I/O scheduler.
//!
//! Paper finding (16-job BeeGFS workload, 10 repetitions): the FTIO-fed
//! Set-10 is close to the clairvoyant version (2.2 % worse stretch, 19 % worse
//! I/O slowdown, 2.3 % worse utilisation); injecting ±50 % errors makes all
//! metrics worse and more variable; compared to the unmanaged system, the
//! FTIO-fed version reduces the mean stretch by 20 % and the I/O slowdown by
//! 56 % and increases utilisation by 26 %.
//!
//! The first command-line argument overrides the number of repetitions
//! (default 10, as in the paper); the second scales the number of
//! low-frequency iterations (default 5).

use ftio_sched::{
    relative_increase, relative_reduction, run_experiment, ExperimentConfig, SchedulerVariant,
};
use ftio_sim::Set10WorkloadConfig;

fn main() {
    let repetitions = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let low_freq_iterations = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let config = ExperimentConfig {
        repetitions,
        workload: Set10WorkloadConfig {
            low_freq_iterations,
            ..Default::default()
        },
        ..Default::default()
    };

    println!("=== Fig. 17: Set-10 scheduling with FTIO ===");
    println!(
        "workload: {} high-frequency (period {} s) + {} low-frequency (period {} s) jobs, {}% I/O, {} repetitions",
        config.workload.high_freq_jobs,
        config.workload.high_freq_period,
        config.workload.low_freq_jobs,
        config.workload.low_freq_period,
        config.workload.io_fraction * 100.0,
        config.repetitions
    );
    println!();

    let results = run_experiment(&config);
    println!(
        "{:<20} {:>10} {:>10} {:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "configuration",
        "stretch",
        "slowdown",
        "util",
        "stretch med",
        "stretch IQR",
        "slowdn med",
        "slowdn IQR"
    );
    for r in &results {
        let sb = r.stretch_box();
        let ib = r.io_slowdown_box();
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>10.3} | {:>12.3} {:>12.3} | {:>12.3} {:>12.3}",
            r.label,
            r.mean_stretch(),
            r.mean_io_slowdown(),
            r.mean_utilization(),
            sb.median,
            sb.q3 - sb.q1,
            ib.median,
            ib.q3 - ib.q1
        );
    }

    let by_label = |label: &str| results.iter().find(|r| r.label == label).unwrap();
    let clairvoyant = by_label(SchedulerVariant::Clairvoyant.label());
    let ftio = by_label(SchedulerVariant::Ftio.label());
    let error = by_label(SchedulerVariant::FtioWithError.label());
    let original = by_label(SchedulerVariant::Original.label());

    println!();
    println!("--- paper vs. measured (relative differences) ---");
    println!("{:<52} {:>10} {:>10}", "comparison", "paper", "measured");
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "FTIO vs clairvoyant: stretch worse by",
        "2.2%",
        relative_increase(clairvoyant.mean_stretch(), ftio.mean_stretch()) * 100.0
    );
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "FTIO vs clairvoyant: I/O slowdown worse by",
        "19%",
        relative_increase(clairvoyant.mean_io_slowdown(), ftio.mean_io_slowdown()) * 100.0
    );
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "FTIO vs clairvoyant: utilisation worse by",
        "2.3%",
        relative_reduction(clairvoyant.mean_utilization(), ftio.mean_utilization()) * 100.0
    );
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "error-injected vs FTIO: stretch worse by",
        "5%",
        relative_increase(ftio.mean_stretch(), error.mean_stretch()) * 100.0
    );
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "error-injected vs FTIO: I/O slowdown worse by",
        "27%",
        relative_increase(ftio.mean_io_slowdown(), error.mean_io_slowdown()) * 100.0
    );
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "FTIO vs original: stretch reduced by",
        "20%",
        relative_reduction(original.mean_stretch(), ftio.mean_stretch()) * 100.0
    );
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "FTIO vs original: I/O slowdown reduced by",
        "56%",
        relative_reduction(original.mean_io_slowdown(), ftio.mean_io_slowdown()) * 100.0
    );
    println!(
        "{:<52} {:>10} {:>9.1}%",
        "FTIO vs original: utilisation increased by",
        "26%",
        relative_increase(original.mean_utilization(), ftio.mean_utilization()) * 100.0
    );
}
