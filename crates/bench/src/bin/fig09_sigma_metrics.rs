//! Figure 9: σ_vol and σ_time over the Fig. 8c variability sweep.
//!
//! Paper finding: both metrics increase as the I/O variability increases
//! (the signal becomes less periodic), and their spread matches the spread of
//! the detection error. The median periodicity score is 98 % at σ = 0, 67 %
//! at σ/µ = 0.55, and 57 % at σ/µ = 2.

use ftio_bench::experiments::{
    accuracy_config, evaluate_sweep, traces_per_point_from_args, DEFAULT_TRACES_PER_POINT,
};
use ftio_dsp::stats::median;
use ftio_synth::ior::PhaseLibrary;
use ftio_synth::sweep::variability_sweep;

fn main() {
    let traces = traces_per_point_from_args(DEFAULT_TRACES_PER_POINT);
    let library = PhaseLibrary::paper_default(0x09);
    let points = variability_sweep();
    let results = evaluate_sweep(&points, &library, traces, &accuracy_config());

    println!("=== Fig. 9: sigma_vol and sigma_time over the variability sweep ===");
    println!("traces per point: {traces}");
    println!(
        "{:<12} {:>14} {:>14} {:>22}",
        "sigma/mu", "median s_vol", "median s_time", "median periodicity"
    );
    for point in &results {
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>22.3}",
            point.value,
            median(&point.sigma_vol),
            median(&point.sigma_time),
            point.median_periodicity_score()
        );
    }
    println!();
    println!(
        "paper: both sigmas grow with sigma/mu; median periodicity score is 0.98 at\n\
         sigma = 0, 0.67 at sigma/mu = 0.55, and 0.57 at sigma/mu = 2."
    );
}
