//! Figure 6 / §II-E: the effect of an insufficient sampling frequency.
//!
//! The paper runs miniIO (unstruct, 144 ranks) and shows that fs = 100 Hz is
//! not enough: the discrete signal no longer matches the original one and the
//! abstraction error (volume difference between the two) is too large to
//! trust any detected period. This binary sweeps the sampling frequency on a
//! miniIO-shaped trace and prints the abstraction error and the detection
//! outcome per frequency.

use ftio_core::{detect_signal, sample_trace_window, FtioConfig};
use ftio_synth::miniio::{generate, MiniIoConfig};
use ftio_trace::BandwidthTimeline;

fn main() {
    let trace = generate(&MiniIoConfig::default(), 0x06);
    let timeline = BandwidthTimeline::from_trace(&trace);
    let t0 = timeline.start().floor();
    let t1 = timeline.end().ceil();

    println!("=== Fig. 6: abstraction error vs. sampling frequency (miniIO) ===");
    println!(
        "trace: {} requests, {:.1} s, {:.2} GB total",
        trace.len(),
        t1 - t0,
        trace.total_volume() as f64 / 1e9
    );
    println!();
    println!(
        "{:>10} {:>10} {:>18} {:>12} {:>14}",
        "fs (Hz)", "samples", "abstraction error", "periodic?", "period (s)"
    );
    for fs in [1.0, 10.0, 100.0, 1000.0, 5000.0] {
        let signal = sample_trace_window(&trace, t0, t1, fs);
        let config = FtioConfig {
            sampling_freq: fs,
            use_autocorrelation: false,
            ..Default::default()
        };
        let result = detect_signal(&signal, &config);
        println!(
            "{:>10} {:>10} {:>18.3} {:>12} {:>14}",
            fs,
            signal.len(),
            signal.abstraction_error,
            if result.is_periodic() { "yes" } else { "no" },
            result
                .period()
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".to_string())
        );
    }
    println!();
    println!(
        "paper: at fs = 100 Hz the discrete signal does not match the original at all;\n\
         the abstraction error must be small before a detected period can be trusted."
    );
}
