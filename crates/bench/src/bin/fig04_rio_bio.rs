//! Figure 4 (and Fig. 1): the substantial-I/O threshold, R_IO and B_IO.
//!
//! The paper overlays the threshold `V(T)/L(T)` on the motivating trace of
//! Fig. 1 and reads off R_IO = 0.68 and B_IO ≈ 11 GB/s. This binary generates
//! the same kind of trace (multi-process bursts plus a tiny periodic log
//! writer), applies the metric, and prints the resulting numbers, then shows
//! how they react when the burst duty cycle changes.

use ftio_core::{io_ratio, sample_trace, FtioConfig};
use ftio_synth::scenarios::{generate, ScenarioConfig};

fn main() {
    // Shape the default scenario so ~68% of the time is substantial I/O:
    // bursts of 13.6 s every 20 s at ~11 GB/s.
    let config = ScenarioConfig {
        processes: 10,
        bursts: 8,
        burst_period: 20.0,
        burst_duration: 13.6,
        burst_bandwidth: 11.0e9,
        split_bursts: false,
        log_period: 1.0,
        log_bytes: 4096,
    };
    let trace = generate(&config);
    let signal = sample_trace(&trace, FtioConfig::default().sampling_freq);
    let (r_io, b_io, threshold) = io_ratio(&signal);

    println!("=== Fig. 4: time ratio and bandwidth of substantial I/O ===");
    println!("threshold V(T)/L(T)    : {:.2} GB/s", threshold / 1e9);
    println!(
        "R_IO                   : {:.2}   (paper example: 0.68)",
        r_io
    );
    println!(
        "B_IO                   : {:.2} GB/s (paper example: ~11 GB/s)",
        b_io / 1e9
    );
    println!();
    println!("--- sensitivity to the burst duty cycle ---");
    println!("{:<12} {:>8} {:>12}", "duty cycle", "R_IO", "B_IO (GB/s)");
    for duty in [0.2, 0.4, 0.68, 0.9] {
        let cfg = ScenarioConfig {
            burst_duration: config.burst_period * duty,
            ..config
        };
        let trace = generate(&cfg);
        let signal = sample_trace(&trace, 10.0);
        let (r_io, b_io, _) = io_ratio(&signal);
        println!("{duty:<12.2} {r_io:>8.2} {:>12.2}", b_io / 1e9);
    }
}
