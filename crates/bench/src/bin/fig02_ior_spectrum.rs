//! Figure 2 / §II-C practical example: FTIO on an IOR run.
//!
//! The paper runs IOR with 9216 ranks (8 iterations, 2 segments, 2 MB
//! transfers, 10 MB blocks) on the Lichtenberg cluster, analyses the 781 s
//! window at fs = 10 Hz (7817 samples, abstraction error 0.03) and finds a
//! period of 111.67 s (0.01 Hz) with a confidence of 60.5 % (62.5 % when the
//! tolerance is lowered to 0.45 and the 0.02 Hz harmonic is recognised).
//!
//! This binary generates the IOR-shaped workload on the simulated cluster,
//! runs the same analysis, and prints the measured values next to the paper's.

use ftio_bench::experiments;
use ftio_core::{detect_trace, report, FtioConfig};
use ftio_synth::ior::{generate_benchmark_downsampled, IorBenchmarkConfig};

fn main() {
    let _ = experiments::traces_per_point_from_args(0); // uniform CLI handling
    let workload = IorBenchmarkConfig::default();
    // Represent the 9216 ranks by 64 writer processes; the application-level
    // bandwidth signal (what FTIO sees) is identical.
    let trace = generate_benchmark_downsampled(&workload, 64, 0x0902);

    let config = FtioConfig {
        sampling_freq: 10.0,
        ..Default::default()
    };
    let result = detect_trace(&trace, &config);

    println!("=== Fig. 2: FTIO on IOR (spectrum & period) ===");
    println!("{}", report::render(&result));
    println!("--- paper vs. measured ---");
    println!("{:<38} {:>14} {:>14}", "quantity", "paper", "measured");
    println!(
        "{:<38} {:>14} {:>14.2}",
        "time window (s)", "781", result.window_length
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "samples", "7817", result.num_samples
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "inspected frequencies", "3809", result.num_frequencies
    );
    println!(
        "{:<38} {:>14} {:>14.4}",
        "mean contribution per frequency (%)",
        "0.025",
        result.mean_contribution * 100.0
    );
    let period = result.period().unwrap_or(f64::NAN);
    println!(
        "{:<38} {:>14} {:>14.2}",
        "detected period (s)", "111.67", period
    );
    println!(
        "{:<38} {:>14} {:>14.1}",
        "confidence c_d (%)",
        "60.5",
        result.confidence() * 100.0
    );

    // The paper's second reading: lowering the tolerance to 0.45 exposes the
    // 0.02 Hz harmonic, which is then ignored, raising the confidence to 62.5%.
    let low_tolerance = FtioConfig {
        tolerance: 0.45,
        ..config
    };
    let result_low = detect_trace(&trace, &low_tolerance);
    println!(
        "{:<38} {:>14} {:>14.1}",
        "confidence with tolerance 0.45 (%)",
        "62.5",
        result_low.confidence() * 100.0
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "harmonics dropped (tolerance 0.45)",
        ">=1",
        result_low.dominant.dropped_harmonics.len()
    );
}
