//! Figure 3 / §II-C: the autocorrelation refinement on the IOR example.
//!
//! For the same IOR signal as Fig. 2, the paper detects 17 peaks in the ACF,
//! filters 12 outliers, keeps 5 period candidates, and obtains an ACF period
//! of 104.8 s with a confidence of 99.58 %; the similarity to the DFT result
//! is 97.6 % and the refined confidence (average of the three) is 86.5 %.

use ftio_core::{detect_trace, FtioConfig};
use ftio_synth::ior::{generate_benchmark_downsampled, IorBenchmarkConfig};

fn main() {
    let workload = IorBenchmarkConfig::default();
    let trace = generate_benchmark_downsampled(&workload, 64, 0x0902);
    let config = FtioConfig {
        sampling_freq: 10.0,
        ..Default::default()
    };
    let result = detect_trace(&trace, &config);
    let acf = result
        .acf
        .as_ref()
        .expect("autocorrelation enabled by default");
    let dft_period = result.period().unwrap_or(f64::NAN);
    let dft_confidence = result.confidence();

    println!("=== Fig. 3: autocorrelation on the IOR signal ===");
    println!("ACF peaks detected              : {}", acf.peak_lags.len());
    println!(
        "raw period candidates           : {}",
        acf.raw_candidates.len()
    );
    println!("candidates after outlier filter : {}", acf.candidates.len());
    println!(
        "ACF period                      : {:.2} s (paper: 104.8 s)",
        acf.period.unwrap_or(f64::NAN)
    );
    println!(
        "ACF confidence c_a              : {:.2} % (paper: 99.58 %)",
        acf.confidence * 100.0
    );
    println!(
        "similarity to DFT period c_s    : {:.2} % (paper: 97.6 %)",
        acf.similarity_to(dft_period) * 100.0
    );
    println!(
        "DFT confidence c_d              : {:.2} % (paper: 62.5 %)",
        dft_confidence * 100.0
    );
    println!(
        "refined confidence              : {:.2} % (paper: 86.5 %)",
        result.refined_confidence() * 100.0
    );

    // Print the first part of the ACF as the series behind the figure.
    println!("\nlag(samples)  acf");
    let step = (acf.acf.len() / 40).max(1);
    for (lag, value) in acf.acf.iter().enumerate().step_by(step) {
        println!("{lag:>12}  {value:+.4}");
    }
}
