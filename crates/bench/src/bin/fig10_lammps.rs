//! Figure 10 / §III-B(a): LAMMPS with low I/O bandwidth.
//!
//! Paper finding: on LAMMPS (3072 ranks, 2-d LJ flow, dumps every 20 runs)
//! FTIO finds a single dominant frequency at 0.039 Hz (25.73 s) with 55 %
//! confidence; the autocorrelation refinement raises it to 84.9 % (single ACF
//! peak at 25.6 s); the real mean period of the run was 27.38 s.

use ftio_core::{detect_trace, report, FtioConfig};
use ftio_synth::lammps::{generate, LammpsConfig};

fn main() {
    let workload = generate(&LammpsConfig::default(), 0x10);
    let config = FtioConfig {
        sampling_freq: 10.0,
        ..Default::default()
    };
    let result = detect_trace(&workload.trace, &config);

    println!("=== Fig. 10: FTIO on the LAMMPS-shaped workload ===");
    println!("{}", report::render(&result));
    println!("--- paper vs. measured ---");
    println!("{:<40} {:>12} {:>12}", "quantity", "paper", "measured");
    println!(
        "{:<40} {:>12} {:>12.2}",
        "ground-truth mean period (s)", "27.38", workload.mean_period
    );
    println!(
        "{:<40} {:>12} {:>12.2}",
        "detected period (s)",
        "25.73",
        result.period().unwrap_or(f64::NAN)
    );
    println!(
        "{:<40} {:>12} {:>12.1}",
        "DFT confidence (%)",
        "55.0",
        result.confidence() * 100.0
    );
    println!(
        "{:<40} {:>12} {:>12.1}",
        "refined confidence (%)",
        "84.9",
        result.refined_confidence() * 100.0
    );
    let error =
        (result.period().unwrap_or(f64::NAN) - workload.mean_period).abs() / workload.mean_period;
    println!(
        "{:<40} {:>12} {:>12.3}",
        "relative error vs. ground truth", "0.060", error
    );
}
