//! Figure 16 / §III-C: overhead of the tracing library across rank counts.
//!
//! Paper finding: for the online mode the aggregated overhead stays below
//! 0.6 % and the rank-0 overhead below 6.9 % from 96 up to 10,752 ranks; the
//! data gathering from the ranks is the main cost. The offline mode is much
//! cheaper (0.13 % → 0.004 % aggregated, ~1.0 → 1.6 % on rank 0).

use ftio_sim::OverheadModel;
use ftio_trace::{Collector, FlushMode, IoRequest, MemorySink, TraceFormat};

fn main() {
    let model = OverheadModel::default();
    let rank_counts = [96usize, 192, 384, 768, 1536, 3072, 4608, 6144, 9216, 10752];
    // IOR-like run: 16 I/O phases, 10 requests per rank per phase, ~780 s per rank.
    let phases = 16usize;
    let requests_per_rank_per_phase = 10usize;
    let app_time_per_rank = 780.0;

    println!("=== Fig. 16: tracing-library overhead vs. rank count ===");
    println!(
        "{:>8} | {:>16} {:>14} | {:>16} {:>14} | {:>16} {:>14}",
        "ranks",
        "online agg (s)",
        "online agg %",
        "online rank0 (s)",
        "online rank0 %",
        "offline agg (s)",
        "offline rank0 %"
    );
    for &ranks in &rank_counts {
        // Exercise the real collector so the request/flush counters come from
        // the same code path a traced application would use. One representative
        // rank records its requests; the counts are scaled by the rank count.
        let collector = Collector::new("IOR", ranks, FlushMode::Online, TraceFormat::MessagePack);
        let mut sink = MemorySink::new();
        for phase in 0..phases {
            for i in 0..requests_per_rank_per_phase {
                let start = phase as f64 * 48.0 + i as f64 * 0.3;
                collector.record(IoRequest::write(0, start, start + 0.25, 2 * 1024 * 1024));
            }
            collector.flush(&mut sink);
        }
        let stats = collector.stats();

        let online = model.estimate(ranks, app_time_per_rank, stats.recorded, stats.flushes);
        let offline = model.estimate(ranks, app_time_per_rank, stats.recorded, 1);
        println!(
            "{:>8} | {:>16.2} {:>14.4} | {:>16.2} {:>14.3} | {:>16.2} {:>14.3}",
            ranks,
            online.aggregated_overhead,
            online.aggregated_fraction() * 100.0,
            online.rank0_overhead,
            online.rank0_fraction() * 100.0,
            offline.aggregated_overhead,
            offline.rank0_fraction() * 100.0
        );
    }
    println!();
    println!(
        "paper: online aggregated overhead <= 0.6 %, online rank-0 overhead <= 6.9 %;\n\
         offline aggregated overhead 0.13 % -> 0.004 %, offline rank-0 ~1.0 -> 1.6 %."
    );
}
