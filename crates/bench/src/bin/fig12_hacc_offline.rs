//! Figures 12–14 / §III-B(c): offline detection on HACC-IO.
//!
//! Paper finding: the offline evaluation of the looped HACC-IO run (3072
//! ranks, fs = 10 Hz) yields two close dominant-frequency candidates,
//! 0.1206 Hz (c = 51 %) and 0.1326 Hz (c = 48.9 %); the stronger one gives a
//! period of 8.29 s against a true average of 8.7 s (7.7 s without the
//! prolonged first phase). Summing the two candidates' cosine waves (Fig. 14)
//! describes the drifting behaviour better than either wave alone.

use ftio_core::{detect_trace, reconstruct_candidates, report, sample_trace, FtioConfig};
use ftio_synth::hacc::{generate, HaccConfig};

fn main() {
    let workload = generate(&HaccConfig::default(), 0x12);
    let config = FtioConfig {
        sampling_freq: 10.0,
        tolerance: 0.8,
        ..Default::default()
    };
    let result = detect_trace(&workload.trace, &config);

    println!("=== Fig. 12/13: offline detection on HACC-IO ===");
    println!("{}", report::render(&result));
    println!("--- paper vs. measured ---");
    println!("{:<44} {:>12} {:>12}", "quantity", "paper", "measured");
    println!(
        "{:<44} {:>12} {:>12.2}",
        "true mean period (s)",
        "8.7",
        workload.mean_period()
    );
    println!(
        "{:<44} {:>12} {:>12.2}",
        "true mean period w/o first phase (s)",
        "7.7",
        workload.mean_period_without_first()
    );
    println!(
        "{:<44} {:>12} {:>12.2}",
        "detected period (s)",
        "8.29",
        result.period().unwrap_or(f64::NAN)
    );
    println!(
        "{:<44} {:>12} {:>12}",
        "dominant-frequency candidates",
        "2",
        result.candidates().len()
    );
    if let Some(c) = result.candidates().first() {
        println!(
            "{:<44} {:>12} {:>12.1}",
            "confidence of the strongest candidate (%)",
            "51.0",
            c.confidence * 100.0
        );
    }
    if let Some(c) = result.candidates().get(1) {
        println!(
            "{:<44} {:>12} {:>12.1}",
            "confidence of the second candidate (%)",
            "48.9",
            c.confidence * 100.0
        );
    }

    // Fig. 14: merging the two candidates improves the reconstruction.
    let signal = sample_trace(&workload.trace, config.sampling_freq);
    let single = reconstruct_candidates(&signal, &result, 1);
    let merged = reconstruct_candidates(&signal, &result, 2);
    if let (Some(single), Some(merged)) = (single, merged) {
        println!("\n=== Fig. 14: reconstruction from the dominant candidates ===");
        println!(
            "RMSE with the strongest candidate only : {:.3e} B/s",
            single.rmse
        );
        println!(
            "RMSE with both candidates merged       : {:.3e} B/s",
            merged.rmse
        );
        println!(
            "improvement                             : {:.1} %  (paper: the merged wave describes the behaviour more accurately)",
            (1.0 - merged.rmse / single.rmse) * 100.0
        );
    }
}
