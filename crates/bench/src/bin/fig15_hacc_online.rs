//! Figure 15 / §III-B(c): online prediction during the HACC-IO run.
//!
//! Paper finding: predictions are made at the end of every I/O phase; they
//! start at 11.1 s and converge to ~8 s against phases that start on average
//! every 8.7 s (8.66 s detected on average). After the dominant frequency has
//! been found three times the analysis window is shrunk to three periods
//! (e.g. at the 5th prediction only the data after 23.1 s is kept).

use ftio_core::{FtioConfig, OnlinePredictor, WindowStrategy};
use ftio_synth::hacc::{generate, HaccConfig};

fn main() {
    let workload = generate(&HaccConfig::default(), 0x15);
    let config = FtioConfig {
        sampling_freq: 10.0,
        use_autocorrelation: false,
        ..Default::default()
    };
    let mut predictor = OnlinePredictor::new(config, WindowStrategy::Adaptive { multiple: 3 });

    println!("=== Fig. 15: online prediction on HACC-IO ===");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>16} {:>12}",
        "phase", "flush (s)", "period (s)", "confidence", "window start (s)", "window (s)"
    );

    let mut requests_by_phase: Vec<Vec<ftio_trace::IoRequest>> =
        vec![Vec::new(); workload.flush_points.len()];
    for r in workload.trace.requests() {
        // Assign each request to the iteration whose flush point follows it.
        let phase = workload
            .flush_points
            .iter()
            .position(|&f| r.end <= f + 1e-9)
            .unwrap_or(workload.flush_points.len() - 1);
        requests_by_phase[phase].push(*r);
    }

    let mut predicted_periods = Vec::new();
    for (i, flush) in workload.flush_points.iter().enumerate() {
        predictor.ingest(requests_by_phase[i].iter().copied());
        let prediction = predictor.predict(*flush);
        if let Some(p) = prediction.period() {
            predicted_periods.push(p);
        }
        println!(
            "{:>6} {:>12.1} {:>14} {:>14.1} {:>16.1} {:>12.1}",
            i + 1,
            flush,
            prediction
                .period()
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".into()),
            prediction.confidence() * 100.0,
            prediction.window_start,
            prediction.window_end - prediction.window_start
        );
    }

    let mean_prediction = if predicted_periods.is_empty() {
        f64::NAN
    } else {
        predicted_periods.iter().sum::<f64>() / predicted_periods.len() as f64
    };
    println!();
    println!("--- paper vs. measured ---");
    println!("{:<44} {:>12} {:>12}", "quantity", "paper", "measured");
    println!(
        "{:<44} {:>12} {:>12.2}",
        "true mean gap between phase starts (s)",
        "8.7",
        workload.mean_period()
    );
    println!(
        "{:<44} {:>12} {:>12.2}",
        "average predicted period (s)", "8.66", mean_prediction
    );
    println!(
        "{:<44} {:>12} {:>12.2}",
        "final predicted period (s)",
        "8.0",
        predicted_periods.last().copied().unwrap_or(f64::NAN)
    );
    println!(
        "{:<44} {:>12} {:>12}",
        "adaptive window engaged",
        "yes",
        if predictor.consecutive_dominant() >= 3 {
            "yes"
        } else {
            "no"
        }
    );
    println!(
        "merged prediction intervals: {:?}",
        predictor
            .merged_intervals()
            .iter()
            .map(|i| format!(
                "[{:.3}, {:.3}] Hz p={:.2}",
                i.min_freq, i.max_freq, i.probability
            ))
            .collect::<Vec<_>>()
    );
}
