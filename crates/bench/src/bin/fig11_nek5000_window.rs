//! Figure 11 / §III-B(b): Nek5000 Darshan heatmap and time-window adaptation.
//!
//! Paper finding: over the full 86,000 s window the Nek5000 profile is not
//! periodic (irregular 30 GB phases at ~57,000 s and ~85,000 s spoil the
//! spectrum), but restricted to Δt = 56,000 s FTIO detects a period of
//! 4642.1 s with a confidence of 85.4 %. The sampling frequency is taken from
//! the heatmap bins (fs ≈ 0.006 Hz).

use ftio_core::{detect_heatmap, FtioConfig};
use ftio_synth::nek5000::{generate, NekConfig};

fn main() {
    let heatmap = generate(&NekConfig::default(), 0x11);
    let config = FtioConfig::default();

    println!("=== Fig. 11: Nek5000 Darshan heatmap, full window vs. reduced window ===");
    println!(
        "heatmap: {} bins of {:.1} s (fs = {:.4} Hz), {:.1} GB total",
        heatmap.len(),
        heatmap.bin_width,
        heatmap.sampling_freq(),
        heatmap.total_volume() / 1e9
    );

    let full = detect_heatmap(&heatmap, &config);
    println!("\n--- full window (dt = 86,000 s) ---");
    println!(
        "verdict: {:?}   candidates: {}   (paper: not periodic)",
        full.verdict(),
        full.candidates().len()
    );

    let reduced = detect_heatmap(&heatmap.window(0.0, 56_000.0), &config);
    println!("\n--- reduced window (dt = 56,000 s) ---");
    println!(
        "verdict: {:?}   period: {} s   confidence: {:.1} %",
        reduced.verdict(),
        reduced
            .period()
            .map(|p| format!("{p:.1}"))
            .unwrap_or_else(|| "-".into()),
        reduced.confidence() * 100.0
    );
    println!("(paper: period 4642.1 s with 85.4 % confidence)");

    println!("\n--- paper vs. measured ---");
    println!("{:<44} {:>12} {:>12}", "quantity", "paper", "measured");
    println!(
        "{:<44} {:>12} {:>12}",
        "full window periodic?",
        "no",
        if full.is_periodic() { "yes" } else { "no" }
    );
    println!(
        "{:<44} {:>12} {:>12.1}",
        "reduced-window period (s)",
        "4642.1",
        reduced.period().unwrap_or(f64::NAN)
    );
    println!(
        "{:<44} {:>12} {:>12.1}",
        "reduced-window confidence (%)",
        "85.4",
        reduced.refined_confidence() * 100.0
    );
}
