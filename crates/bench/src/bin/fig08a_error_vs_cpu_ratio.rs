//! Figure 8a: detection error as a function of the time between I/O phases
//! (relative to their length) and of the background noise.
//!
//! Paper finding: the disparity between compute and I/O phase lengths is not a
//! problem, all errors stay below 1 %, and FTIO is robust to the injected
//! noise. Every sweep point uses δ_k = 0 and σ = 0 and 100 traces (the trace
//! count can be overridden with the first command-line argument).

use ftio_bench::experiments::{
    accuracy_config, error_table_header, evaluate_sweep, format_error_row,
    traces_per_point_from_args, DEFAULT_TRACES_PER_POINT,
};
use ftio_synth::ior::PhaseLibrary;
use ftio_synth::sweep::cpu_ratio_sweep;

fn main() {
    let traces = traces_per_point_from_args(DEFAULT_TRACES_PER_POINT);
    let library = PhaseLibrary::paper_default(0x8A);
    let points = cpu_ratio_sweep(library.mean_duration());

    println!("=== Fig. 8a: detection error vs. compute/IO length ratio and noise ===");
    println!("traces per point: {traces}");
    println!("{}", error_table_header());
    let results = evaluate_sweep(&points, &library, traces, &accuracy_config());
    for point in &results {
        println!("{}", format_error_row(point));
    }
    let overall_mean = ftio_dsp::stats::mean(
        &results
            .iter()
            .flat_map(|p| p.errors.iter().copied())
            .collect::<Vec<_>>(),
    );
    println!();
    println!("overall mean error : {overall_mean:.4}  (paper: all errors below 0.01)");
}
