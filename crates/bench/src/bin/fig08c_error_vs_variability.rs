//! Figure 8c: detection error as a function of the compute-time variability
//! σ/µ (µ = 11 s, δ_k = 0, no noise).
//!
//! Paper finding: quality degrades as the signal becomes less periodic. The
//! median error stays below 5.5 % for σ/µ ≤ 0.5 and below 33 % everywhere;
//! 0.4–1.9 % of the traces become outliers with errors above 200 %, and the
//! median confidence drops from 96 % (σ/µ < 0.55) to 63 % (σ/µ ≥ 2).

use ftio_bench::experiments::{
    accuracy_config, error_table_header, evaluate_sweep, format_error_row,
    traces_per_point_from_args, DEFAULT_TRACES_PER_POINT,
};
use ftio_synth::ior::PhaseLibrary;
use ftio_synth::sweep::variability_sweep;

fn main() {
    let traces = traces_per_point_from_args(DEFAULT_TRACES_PER_POINT);
    let library = PhaseLibrary::paper_default(0x8C);
    let points = variability_sweep();

    println!("=== Fig. 8c: detection error vs. compute-time variability (sigma/mu) ===");
    println!("traces per point: {traces}");
    println!("{}", error_table_header());
    let results = evaluate_sweep(&points, &library, traces, &accuracy_config());
    for point in &results {
        println!("{}", format_error_row(point));
    }

    println!();
    println!(
        "{:<14} {:>16} {:>18}",
        "sigma/mu", "median error", "median confidence"
    );
    for point in &results {
        println!(
            "{:<14} {:>16.3} {:>18.3}",
            point.value,
            point.median_error(),
            point.median_confidence()
        );
    }
    println!();
    println!(
        "paper: median error < 0.055 for sigma/mu <= 0.5 and < 0.33 overall;\n\
         median confidence drops from 0.96 (sigma/mu < 0.55) to 0.63 (sigma/mu >= 2)."
    );
}
