//! Figure 7 / §III-A: example semi-synthetic application traces.
//!
//! The paper shows three examples of the traces the accuracy study is built
//! from: (a) compute phases a quarter of the I/O-phase length, (b) compute
//! phases drawn from N(11, 22), and (c) an average per-process delay of 22 s
//! inside the I/O phases. This binary generates the same three configurations
//! and prints their ground truth plus a coarse bandwidth profile.

use ftio_synth::ior::PhaseLibrary;
use ftio_synth::semi::{generate, SemiSyntheticConfig};
use ftio_synth::NoiseLevel;
use ftio_trace::BandwidthTimeline;

fn describe(name: &str, config: &SemiSyntheticConfig, library: &PhaseLibrary, seed: u64) {
    let result = generate(config, library, seed);
    let timeline = BandwidthTimeline::from_trace(&result.trace);
    println!("--- {name} ---");
    println!(
        "iterations: {}   requests: {}   duration: {:.1} s",
        config.iterations,
        result.trace.len(),
        result.trace.duration()
    );
    println!(
        "ground-truth mean period: {:.2} s   mean phase length: {:.2} s   I/O time ratio: {:.2}",
        result.mean_period(),
        result.phase_durations.iter().sum::<f64>() / result.phase_durations.len() as f64,
        result.io_time_ratio()
    );
    // Coarse bandwidth profile (1 sample per 10 s) as the series behind the plot.
    let samples = timeline.sample(timeline.start(), timeline.end(), 0.1);
    let profile: String = samples
        .iter()
        .map(|&bw| {
            if bw > 5.0e9 {
                '#'
            } else if bw > 5.0e8 {
                '+'
            } else if bw > 0.0 {
                '.'
            } else {
                ' '
            }
        })
        .collect();
    println!("bandwidth profile (10 s/char, '#'>5 GB/s, '+'>0.5 GB/s, '.'>0):");
    println!("[{profile}]");
    println!();
}

fn main() {
    let library = PhaseLibrary::paper_default(0x07);
    let mean_io = library.mean_duration();

    println!("=== Fig. 7: semi-synthetic application traces ===");
    println!(
        "IOR phase library: {} phases, mean duration {:.2} s\n",
        library.len(),
        mean_io
    );

    // (a) t_cpu is 1/4 of the I/O phase duration.
    describe(
        "(a) t_cpu = 1/4 of the I/O phase",
        &SemiSyntheticConfig {
            tcpu_mean: mean_io / 4.0,
            ..Default::default()
        },
        &library,
        1,
    );
    // (b) t_cpu ~ N(11, 22).
    describe(
        "(b) t_cpu ~ N(11, 22)",
        &SemiSyntheticConfig {
            tcpu_mean: 11.0,
            tcpu_std: 22.0,
            ..Default::default()
        },
        &library,
        2,
    );
    // (c) mean per-process delay of 22 s.
    describe(
        "(c) mean delta_k = 22 s",
        &SemiSyntheticConfig {
            tcpu_mean: 11.0,
            desync_avg: 22.0,
            noise: NoiseLevel::None,
            ..Default::default()
        },
        &library,
        3,
    );
}
