//! Figure 8b: detection error as a function of the per-process delay ϕ added
//! inside the I/O phases (desynchronisation + I/O variability).
//!
//! Paper finding: once ϕ exceeds the original I/O-phase duration the phases
//! develop internal gaps and detection becomes harder; extreme cases reach a
//! 100 % error, but the aggregate stays low — mean up to 11 %, median up to
//! 11 %, third quartile up to 17 %.

use ftio_bench::experiments::{
    accuracy_config, error_table_header, evaluate_sweep, format_error_row,
    traces_per_point_from_args, DEFAULT_TRACES_PER_POINT,
};
use ftio_synth::ior::PhaseLibrary;
use ftio_synth::sweep::desync_sweep;

fn main() {
    let traces = traces_per_point_from_args(DEFAULT_TRACES_PER_POINT);
    let library = PhaseLibrary::paper_default(0x8B);
    let points = desync_sweep();

    println!("=== Fig. 8b: detection error vs. per-process delay (phi) ===");
    println!("traces per point: {traces}");
    println!("{}", error_table_header());
    let results = evaluate_sweep(&points, &library, traces, &accuracy_config());
    for point in &results {
        println!("{}", format_error_row(point));
    }

    let worst_mean = results.iter().map(|p| p.mean_error()).fold(0.0, f64::max);
    let worst_median = results.iter().map(|p| p.median_error()).fold(0.0, f64::max);
    let worst_q3 = results.iter().map(|p| p.error_box().q3).fold(0.0, f64::max);
    println!();
    println!("worst mean   : {worst_mean:.3}  (paper: up to 0.11)");
    println!("worst median : {worst_median:.3}  (paper: up to 0.11)");
    println!("worst Q3     : {worst_q3:.3}  (paper: up to 0.17)");
}
