//! Shared experiment machinery used by the `fig*` binaries and the tests.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/` that
//! prints the corresponding rows/series; the heavy lifting (generating trace
//! batches, running FTIO on them, aggregating detection errors) lives here so
//! the binaries stay small and the integration tests can reuse the exact same
//! code paths.

use ftio_core::{detect_trace, FtioConfig};
use ftio_dsp::stats::BoxStats;
use ftio_synth::ior::PhaseLibrary;
use ftio_synth::semi::{generate_batch, SemiSyntheticTrace};
use ftio_synth::sweep::SweepPoint;

/// Default number of traces generated per sweep point. The paper uses 100;
/// the experiment binaries accept an override on the command line.
pub const DEFAULT_TRACES_PER_POINT: usize = 100;

/// Aggregated detection-error statistics of one sweep point (one box of Fig. 8).
#[derive(Clone, Debug)]
pub struct ErrorPoint {
    /// Label of the sweep point (x-axis label).
    pub label: String,
    /// Numeric value of the swept parameter.
    pub value: f64,
    /// Detection errors (|T_d − T̄| / T̄) of the individual traces.
    pub errors: Vec<f64>,
    /// σ_vol of the individual traces (when a period was detected).
    pub sigma_vol: Vec<f64>,
    /// σ_time of the individual traces (when a period was detected).
    pub sigma_time: Vec<f64>,
    /// Periodicity scores of the individual traces.
    pub periodicity_scores: Vec<f64>,
    /// DFT confidences of the individual traces.
    pub confidences: Vec<f64>,
    /// Number of traces where no dominant frequency was found.
    pub undetected: usize,
}

impl ErrorPoint {
    /// Box-plot summary of the detection errors.
    pub fn error_box(&self) -> BoxStats {
        BoxStats::from(&self.errors)
    }

    /// Mean detection error.
    pub fn mean_error(&self) -> f64 {
        ftio_dsp::stats::mean(&self.errors)
    }

    /// Median detection error.
    pub fn median_error(&self) -> f64 {
        ftio_dsp::stats::median(&self.errors)
    }

    /// Median periodicity score.
    pub fn median_periodicity_score(&self) -> f64 {
        ftio_dsp::stats::median(&self.periodicity_scores)
    }

    /// Median confidence.
    pub fn median_confidence(&self) -> f64 {
        ftio_dsp::stats::median(&self.confidences)
    }
}

/// Runs FTIO on one semi-synthetic trace and returns its detection error
/// (the true mean period is used when no dominant frequency is found, which
/// yields an error of 0 only if the estimate is exact — in practice the
/// undetected case is counted separately by [`evaluate_point`]).
pub fn detection_error(
    trace: &SemiSyntheticTrace,
    config: &FtioConfig,
) -> Option<(f64, ftio_core::DetectionResult)> {
    let result = detect_trace(&trace.trace, config);
    result
        .period()
        .map(|period| (trace.detection_error(period), result))
}

/// Evaluates one sweep point: generates `traces_per_point` traces and runs the
/// detection on each.
pub fn evaluate_point(
    point: &SweepPoint,
    library: &PhaseLibrary,
    traces_per_point: usize,
    config: &FtioConfig,
    base_seed: u64,
) -> ErrorPoint {
    let traces = generate_batch(&point.config, library, traces_per_point, base_seed);
    let mut errors = Vec::with_capacity(traces.len());
    let mut sigma_vol = Vec::new();
    let mut sigma_time = Vec::new();
    let mut scores = Vec::new();
    let mut confidences = Vec::new();
    let mut undetected = 0;
    for trace in &traces {
        match detection_error(trace, config) {
            Some((error, result)) => {
                errors.push(error);
                confidences.push(result.confidence());
                if let Some(c) = result.characterization {
                    sigma_vol.push(c.sigma_vol);
                    sigma_time.push(c.sigma_time);
                    scores.push(c.periodicity_score);
                }
            }
            None => undetected += 1,
        }
    }
    ErrorPoint {
        label: point.label.clone(),
        value: point.value,
        errors,
        sigma_vol,
        sigma_time,
        periodicity_scores: scores,
        confidences,
        undetected,
    }
}

/// Evaluates a whole sweep (one Fig. 8 sub-plot).
pub fn evaluate_sweep(
    points: &[SweepPoint],
    library: &PhaseLibrary,
    traces_per_point: usize,
    config: &FtioConfig,
) -> Vec<ErrorPoint> {
    points
        .iter()
        .enumerate()
        .map(|(i, point)| {
            evaluate_point(
                point,
                library,
                traces_per_point,
                config,
                1000 + 101 * i as u64,
            )
        })
        .collect()
}

/// The FTIO configuration used throughout the accuracy study
/// (fs = 1 Hz, as in the paper's §III-A).
pub fn accuracy_config() -> FtioConfig {
    FtioConfig {
        sampling_freq: 1.0,
        use_autocorrelation: false,
        ..Default::default()
    }
}

/// Parses the first command-line argument as the number of traces per point,
/// falling back to `default` when absent or unparsable.
pub fn traces_per_point_from_args(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Formats one row of a box-plot table.
pub fn format_error_row(point: &ErrorPoint) -> String {
    let b = point.error_box();
    format!(
        "{:<28} {:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>6}",
        point.label,
        point.errors.len(),
        point.mean_error(),
        b.q1,
        b.median,
        b.q3,
        b.max,
        point.undetected
    )
}

/// Header matching [`format_error_row`].
pub fn error_table_header() -> String {
    format!(
        "{:<28} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
        "parameter", "n", "mean", "Q1", "median", "Q3", "max", "none"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_synth::ior::IorPhaseConfig;
    use ftio_synth::sweep;

    fn tiny_library() -> PhaseLibrary {
        PhaseLibrary::generate(
            &IorPhaseConfig {
                num_processes: 8,
                bytes_per_process: 800_000_000,
                requests_per_process: 8,
                ..Default::default()
            },
            12,
            0xE1,
        )
    }

    #[test]
    fn ideal_sweep_point_has_tiny_errors() {
        // δ = 0, σ = 0, no noise: the paper reports errors below 1%.
        let library = tiny_library();
        let points = sweep::cpu_ratio_sweep(11.0);
        let no_noise_point = points
            .iter()
            .find(|p| p.value == 1.0 && p.noise == ftio_synth::NoiseLevel::None)
            .unwrap();
        let result = evaluate_point(no_noise_point, &library, 8, &accuracy_config(), 5);
        assert!(result.errors.len() + result.undetected == 8);
        assert!(
            result.errors.len() >= 6,
            "too many undetected: {}",
            result.undetected
        );
        assert!(
            result.median_error() < 0.05,
            "median error {}",
            result.median_error()
        );
        assert!(
            result.mean_error() < 0.1,
            "mean error {}",
            result.mean_error()
        );
    }

    #[test]
    fn variability_degrades_accuracy() {
        let library = tiny_library();
        let points = sweep::variability_sweep();
        let stable = evaluate_point(&points[0], &library, 6, &accuracy_config(), 11);
        let unstable = evaluate_point(points.last().unwrap(), &library, 6, &accuracy_config(), 11);
        // σ/µ = 2 produces clearly worse medians and periodicity scores than σ = 0.
        assert!(
            unstable.median_error() > stable.median_error(),
            "unstable {} vs stable {}",
            unstable.median_error(),
            stable.median_error()
        );
        assert!(
            unstable.median_periodicity_score() < stable.median_periodicity_score(),
            "scores {} vs {}",
            unstable.median_periodicity_score(),
            stable.median_periodicity_score()
        );
    }

    #[test]
    fn table_rows_are_well_formed() {
        let library = tiny_library();
        let points = sweep::desync_sweep();
        let result = evaluate_point(&points[0], &library, 4, &accuracy_config(), 3);
        let header = error_table_header();
        let row = format_error_row(&result);
        assert!(header.contains("median"));
        assert!(row.contains(&points[0].label));
        // Columns align: both strings are long enough to hold all eight fields.
        assert!(header.len() > 80);
        assert!(row.len() > 80);
    }

    #[test]
    fn traces_per_point_parsing_falls_back() {
        // No CLI argument in the test harness (or an unparsable one): default wins.
        assert_eq!(traces_per_point_from_args(42), 42);
    }
}
