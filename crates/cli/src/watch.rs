//! The `ftio watch` subcommand: tail a growing trace file and predict live.
//!
//! This is the single-application, no-socket deployment mode: an application
//! (or its tracing layer) appends JSONL or Recorder lines to a file, and
//! `ftio watch` polls the file, ingests every newly completed line into an
//! [`OnlinePredictor`], and prints a prediction per poll that saw new data.
//! A partially written trailing line is held back until its newline arrives,
//! and a truncated file (log rotation) restarts the tail from the beginning.
//! Rotation by replacement — delete and recreate, the other common log
//! rotation — is survived too: the tail tracks the file's inode, restarts
//! from byte zero when it changes, and treats the transient gap between the
//! unlink and the recreate as "no new data" instead of an error.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::time::{Duration, Instant};

use ftio_core::{FtioConfig, OnlinePredictor, WindowStrategy};
use ftio_trace::{jsonl, recorder, IoRequest, TraceResult};

use crate::next_value;

/// Options of the `ftio watch` subcommand.
#[derive(Clone, Debug)]
pub struct WatchCliOptions {
    /// Path of the growing trace file.
    pub input: String,
    /// Sampling frequency of the analysis.
    pub freq: f64,
    /// Poll interval in milliseconds.
    pub poll_ms: u64,
    /// Exit after this many seconds without new data (`None` = watch forever).
    pub idle_exit: Option<f64>,
    /// Ingest what is already in the file before tailing (default: true;
    /// `--from-end` starts at the current end instead).
    pub from_start: bool,
}

impl Default for WatchCliOptions {
    fn default() -> Self {
        WatchCliOptions {
            input: String::new(),
            freq: 2.0,
            poll_ms: 250,
            idle_exit: None,
            from_start: true,
        }
    }
}

/// Usage text of the subcommand.
pub const WATCH_USAGE: &str = "usage: ftio watch <trace-file> [options]\n\
     \n\
     Tail a growing JSONL or Recorder trace file and print an online period\n\
     prediction whenever new requests arrive — the file-based sibling of\n\
     `ftio serve` for a single application writing locally.\n\
     \n\
     options:\n\
     \x20 --freq <hz>                 sampling frequency (default 2)\n\
     \x20 --poll <ms>                 poll interval in milliseconds (default 250)\n\
     \x20 --idle-exit <secs>          exit after this long without new data\n\
     \x20 --from-end                  skip data already in the file, tail only new lines";

/// Parses the arguments following `ftio watch`.
pub fn parse_watch_options(args: &[String]) -> Result<WatchCliOptions, String> {
    let mut options = WatchCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
                if !(options.freq.is_finite() && options.freq > 0.0) {
                    return Err(format!("invalid sampling frequency `{value}`"));
                }
            }
            "--poll" => {
                let value = next_value(args, &mut i, "--poll")?;
                options.poll_ms = value
                    .parse()
                    .map_err(|_| format!("invalid poll interval `{value}`"))?;
                if options.poll_ms == 0 {
                    return Err("--poll must be at least 1 ms".into());
                }
            }
            "--idle-exit" => {
                let value = next_value(args, &mut i, "--idle-exit")?;
                let secs: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid idle-exit `{value}`"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(format!("invalid idle-exit `{value}`"));
                }
                options.idle_exit = Some(secs);
            }
            "--from-end" => options.from_start = false,
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown watch option `{other}` (see `ftio watch --help`)"
                ))
            }
            path => {
                if !options.input.is_empty() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                options.input = path.to_string();
            }
        }
        i += 1;
    }
    if options.input.is_empty() {
        return Err("no trace file given".into());
    }
    Ok(options)
}

/// The incremental line tail: consumed offset, held-back partial line, and
/// the line format decided from the first complete line.
struct Tail {
    offset: u64,
    partial: Vec<u8>,
    lines_seen: usize,
    recorder_lines: bool,
    /// The open file being tailed, held across polls. Holding it pins the
    /// inode, so a delete-and-recreate rotation is guaranteed to produce a
    /// *different* inode number at the path (a freshly freed inode is
    /// otherwise immediately reused on most filesystems, which would make
    /// the swap invisible when the new file has the same length).
    file: Option<std::fs::File>,
    /// Inode of the held file, compared against the path's current inode.
    ino: Option<u64>,
}

impl Tail {
    fn new(offset: u64) -> Self {
        Tail {
            offset,
            partial: Vec::new(),
            lines_seen: 0,
            recorder_lines: false,
            file: None,
            ino: None,
        }
    }

    /// Reads everything appended since the last poll and decodes the complete
    /// lines. Returns `None` when nothing new arrived (including the moment
    /// between a rotation's unlink and recreate, when the path is briefly
    /// missing).
    fn poll(&mut self, path: &Path) -> TraceResult<Option<Vec<IoRequest>>> {
        // Re-stat the path: a different inode there means the file was
        // rotated by replacement, and everything under the new name is
        // unread — switch to it from byte zero, dropping any partial line
        // of the old incarnation. A missing path is the gap between the
        // rotation's unlink and recreate: keep draining the held file.
        match std::fs::metadata(path) {
            Ok(metadata) => {
                if self.file.is_some() && self.ino != file_ino(&metadata) {
                    self.file = None;
                    self.offset = 0;
                    self.partial.clear();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if self.file.is_none() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e.into()),
        }
        if self.file.is_none() {
            match std::fs::File::open(path) {
                Ok(file) => {
                    self.ino = file_ino(&file.metadata()?);
                    self.file = Some(file);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(e.into()),
            }
        }
        let Some(file) = self.file.as_mut() else {
            return Ok(None);
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            // Truncated (rotated in place) file: start over.
            self.offset = 0;
            self.partial.clear();
        }
        if len == self.offset {
            return Ok(None);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut fresh = Vec::new();
        file.take(len - self.offset).read_to_end(&mut fresh)?;
        self.offset += fresh.len() as u64;
        self.partial.extend_from_slice(&fresh);
        // Hold back the bytes after the last newline — a line still being
        // written.
        let Some(last_newline) = self.partial.iter().rposition(|&b| b == b'\n') else {
            return Ok(None);
        };
        let complete = self.partial[..=last_newline].to_vec();
        self.partial.drain(..=last_newline);
        let text = String::from_utf8_lossy(&complete);
        let mut requests = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            self.lines_seen += 1;
            if self.lines_seen == 1 {
                // First complete line decides the format: JSONL objects start
                // with `{`, everything else is treated as Recorder text.
                self.recorder_lines = !line.trim_start().starts_with('{');
            }
            if self.recorder_lines {
                if let Some(request) = recorder::decode_line(line, self.lines_seen)? {
                    requests.push(request);
                }
            } else {
                requests.push(jsonl::decode_request(line, self.lines_seen)?);
            }
        }
        if requests.is_empty() {
            return Ok(None);
        }
        Ok(Some(requests))
    }
}

/// The file's inode where the platform has one (`None` elsewhere, which
/// degrades to the length-based truncation heuristic only).
fn file_ino(metadata: &std::fs::Metadata) -> Option<u64> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        Some(metadata.ino())
    }
    #[cfg(not(unix))]
    {
        let _ = metadata;
        None
    }
}

/// Tails the file until idle-exit (or forever), printing one prediction line
/// per poll that ingested new requests. Returns a final summary.
pub fn run_watch(options: &WatchCliOptions) -> Result<String, String> {
    let path = Path::new(&options.input);
    if !path.exists() {
        return Err(format!("cannot read `{}`: no such file", options.input));
    }
    let start_offset = if options.from_start {
        0
    } else {
        std::fs::metadata(path).map_err(|e| e.to_string())?.len()
    };
    let mut tail = Tail::new(start_offset);
    let config = FtioConfig {
        sampling_freq: options.freq,
        use_autocorrelation: false,
        ..Default::default()
    };
    config.validate()?;
    let mut predictor = OnlinePredictor::new(config, WindowStrategy::Adaptive { multiple: 3 });
    let mut predictions = 0usize;
    let mut ingested = 0usize;
    let mut last_prediction = None;
    let mut last_data = Instant::now();
    let poll = Duration::from_millis(options.poll_ms);
    loop {
        match tail.poll(path).map_err(|e| e.to_string())? {
            Some(requests) => {
                last_data = Instant::now();
                ingested += requests.len();
                let now = requests
                    .iter()
                    .map(|r| r.end)
                    .fold(f64::NEG_INFINITY, f64::max);
                predictor.ingest(requests);
                let prediction = predictor.predict(now);
                predictions += 1;
                match prediction.period() {
                    Some(period) => println!(
                        "watch @ {now:.1} s: period {period:.3} s (confidence {:.1} %)",
                        prediction.confidence() * 100.0
                    ),
                    None => println!("watch @ {now:.1} s: no dominant frequency yet"),
                }
                last_prediction = Some(prediction);
            }
            None => {
                if let Some(limit) = options.idle_exit {
                    if last_data.elapsed().as_secs_f64() >= limit {
                        break;
                    }
                }
                std::thread::sleep(poll);
            }
        }
    }
    let mut out = format!(
        "watched {}: {} requests ingested, {} predictions\n",
        options.input, ingested, predictions
    );
    match last_prediction.as_ref().and_then(|p| p.period()) {
        Some(period) => out.push_str(&format!(
            "final: period {period:.3} s (confidence {:.1} %)\n",
            last_prediction
                .as_ref()
                .map(|p| p.confidence() * 100.0)
                .unwrap_or(0.0)
        )),
        None => out.push_str("final: no dominant frequency\n"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_are_parsed() {
        let options = parse_watch_options(&strings(&[
            "trace.jsonl",
            "--freq",
            "1.5",
            "--poll",
            "50",
            "--idle-exit",
            "2.5",
            "--from-end",
        ]))
        .unwrap();
        assert_eq!(options.input, "trace.jsonl");
        assert_eq!(options.freq, 1.5);
        assert_eq!(options.poll_ms, 50);
        assert_eq!(options.idle_exit, Some(2.5));
        assert!(!options.from_start);
    }

    #[test]
    fn option_errors() {
        assert!(parse_watch_options(&[]).is_err());
        assert!(parse_watch_options(&strings(&["a", "b"])).is_err());
        assert!(parse_watch_options(&strings(&["a", "--poll", "0"])).is_err());
        assert!(parse_watch_options(&strings(&["a", "--freq", "nan"])).is_err());
        assert!(parse_watch_options(&strings(&["a", "--idle-exit", "-1"])).is_err());
        assert!(parse_watch_options(&strings(&["a", "--bogus"])).is_err());
    }

    #[test]
    fn tail_holds_back_partial_lines_and_survives_truncation() {
        let path = std::env::temp_dir().join("ftio_watch_tail_test.jsonl");
        let line = |i: usize| {
            let start = i as f64 * 10.0;
            jsonl::encode_requests(&[IoRequest::write(0, start, start + 1.0, 1000)])
        };
        std::fs::write(&path, line(0)).unwrap();
        let mut tail = Tail::new(0);
        let first = tail.poll(&path).unwrap().expect("one complete line");
        assert_eq!(first.len(), 1);
        assert!(tail.poll(&path).unwrap().is_none(), "no new data");

        // Append a line without its newline: held back until completed.
        let full = line(1);
        let (head, rest) = full.split_at(full.len() / 2);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(head.as_bytes()).unwrap();
        file.flush().unwrap();
        assert!(
            tail.poll(&path).unwrap().is_none(),
            "partial line held back"
        );
        file.write_all(rest.as_bytes()).unwrap();
        file.flush().unwrap();
        drop(file);
        let second = tail.poll(&path).unwrap().expect("completed line");
        assert_eq!(second.len(), 1);
        assert!((second[0].start - 10.0).abs() < 1e-9);

        // Truncation restarts the tail from the top.
        std::fs::write(&path, line(5)).unwrap();
        let after = tail.poll(&path).unwrap().expect("restarted tail");
        assert!((after[0].start - 50.0).abs() < 1e-9);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tail_survives_inode_swap_without_double_ingesting() {
        let dir = std::env::temp_dir().join("ftio_watch_swap_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let line = |i: usize| {
            let start = i as f64 * 10.0;
            jsonl::encode_requests(&[IoRequest::write(0, start, start + 1.0, 1000)])
        };
        // Two complete lines, fully consumed.
        let before = format!("{}{}", line(1), line(2));
        std::fs::write(&path, &before).unwrap();
        let mut tail = Tail::new(0);
        assert_eq!(tail.poll(&path).unwrap().unwrap().len(), 2);
        assert!(tail.poll(&path).unwrap().is_none());

        // Rotation by replacement: unlink, then recreate. The gap where the
        // path is missing is "no new data", not an error…
        std::fs::remove_file(&path).unwrap();
        assert!(tail.poll(&path).unwrap().is_none(), "gap tolerated");
        // …and the recreated file — same byte length as the consumed one, so
        // the truncation heuristic alone would see nothing new — is ingested
        // exactly once from the top.
        let after = format!("{}{}", line(3), line(4));
        assert_eq!(before.len(), after.len(), "lengths must match for the test");
        std::fs::write(&path, &after).unwrap();
        let swapped = tail.poll(&path).unwrap().expect("new inode re-read");
        assert_eq!(swapped.len(), 2);
        assert!((swapped[0].start - 30.0).abs() < 1e-9);
        assert!((swapped[1].start - 40.0).abs() < 1e-9);
        assert!(tail.poll(&path).unwrap().is_none(), "no double ingest");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tail_decodes_recorder_lines_too() {
        let path = std::env::temp_dir().join("ftio_watch_recorder_test.txt");
        let requests = vec![
            IoRequest::write(0, 0.0, 1.0, 4096),
            IoRequest::read(1, 2.0, 3.0, 8192),
        ];
        std::fs::write(&path, recorder::encode_requests(&requests)).unwrap();
        let mut tail = Tail::new(0);
        let decoded = tail.poll(&path).unwrap().expect("recorder lines decode");
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].bytes, 4096);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn watching_a_growing_file_predicts_the_period() {
        let path = std::env::temp_dir().join("ftio_watch_run_test.jsonl");
        let requests: Vec<IoRequest> = (0..12)
            .map(|i| {
                let start = i as f64 * 10.0;
                IoRequest::write(0, start, start + 2.0, 1_000_000_000)
            })
            .collect();
        std::fs::write(&path, jsonl::encode_requests(&requests)).unwrap();
        // Everything is already in the file; one poll ingests it, then the
        // idle-exit fires.
        let options = WatchCliOptions {
            input: path.to_str().unwrap().to_string(),
            poll_ms: 10,
            idle_exit: Some(0.05),
            ..Default::default()
        };
        let report = run_watch(&options).unwrap();
        assert!(report.contains("12 requests ingested"), "{report}");
        assert!(report.contains("period 10."), "{report}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_a_readable_error() {
        let options = WatchCliOptions {
            input: "/does/not/exist.jsonl".into(),
            ..Default::default()
        };
        assert!(run_watch(&options).unwrap_err().contains("cannot read"));
    }
}
