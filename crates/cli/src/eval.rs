//! The `ftio eval` subcommand: run the adversarial scenario harness and
//! report tracking latency, frequency error and confidence per scenario.
//!
//! Scenarios are generated on the fly (`ftio_synth::drift`) with known
//! ground truth; each application's flush schedule is driven through the
//! online predictor — or through the sharded [`ClusterEngine`] with
//! `--engine` — and the resulting prediction ticks are scored by
//! [`ftio_core::eval`]. The output pairs the human-readable metric block of
//! every scenario with the machine-readable truth JSON, so runs can be
//! diffed and plotted.

use ftio_core::eval::{render_report, score_predictions, EvalConfig, EvalReport};
use ftio_core::{
    BackpressurePolicy, ClusterConfig, ClusterEngine, FtioConfig, OnlinePrediction,
    OnlinePredictor, Pacing, WindowStrategy,
};
use ftio_synth::drift::{all_scenarios, scenario_by_name, Scenario, ScenarioFamily};
use ftio_trace::AppId;

use crate::next_value;

/// Options of the `ftio eval` subcommand.
#[derive(Clone, Debug)]
pub struct EvalCliOptions {
    /// Scenario name to run (`None` with `all = true` runs every family).
    pub scenario: Option<String>,
    /// Run every scenario family.
    pub all: bool,
    /// Only list the available scenario families.
    pub list: bool,
    /// Generator seed.
    pub seed: u64,
    /// Sampling frequency of the analysis.
    pub freq: f64,
    /// Relative period tolerance for the lock criterion.
    pub rel_tolerance: f64,
    /// Drive the flushes through the sharded cluster engine instead of the
    /// synchronous predictor.
    pub engine: bool,
    /// Engine worker threads with `--engine` (0 = one worker per shard).
    pub threads: usize,
}

impl Default for EvalCliOptions {
    fn default() -> Self {
        EvalCliOptions {
            scenario: None,
            all: false,
            list: false,
            seed: 42,
            freq: 2.0,
            rel_tolerance: EvalConfig::default().rel_tolerance,
            engine: false,
            threads: crate::default_threads(),
        }
    }
}

/// Usage text of the subcommand.
pub const EVAL_USAGE: &str = "usage: ftio eval <scenario>|--all [options]\n\
     \n\
     Run the adversarial scenario harness: generate a workload with known\n\
     ground truth, drive it through the online predictor, and report\n\
     tracking latency, frequency error and confidence against the truth.\n\
     \n\
     scenarios: steady, phase-change, drift, bursty-interference,\n\
     \x20          heavy-tailed, multi-tenant\n\
     \n\
     options:\n\
     \x20 --all                run every scenario family\n\
     \x20 --list               list the scenario families and exit\n\
     \x20 --seed <n>           generator seed (default 42)\n\
     \x20 --freq <hz>          sampling frequency of the analysis (default 2)\n\
     \x20 --rel-tolerance <x>  relative period tolerance for the lock\n\
     \x20                      criterion (default 0.15)\n\
     \x20 --engine             drive flushes through the sharded cluster\n\
     \x20                      engine instead of the synchronous predictor\n\
     \x20 --threads <n>|auto   engine worker threads with --engine (default:\n\
     \x20                      FTIO_THREADS, else one worker per shard)";

/// Parses the arguments following `ftio eval`.
pub fn parse_eval_options(args: &[String]) -> Result<EvalCliOptions, String> {
    let mut options = EvalCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => options.all = true,
            "--list" => options.list = true,
            "--engine" => options.engine = true,
            "--threads" => {
                let value = next_value(args, &mut i, "--threads")?;
                options.threads = crate::parse_threads_flag(&value)?;
            }
            "--seed" => {
                let value = next_value(args, &mut i, "--seed")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
                if !(options.freq.is_finite() && options.freq > 0.0) {
                    return Err(format!("invalid sampling frequency `{value}`"));
                }
            }
            "--rel-tolerance" => {
                let value = next_value(args, &mut i, "--rel-tolerance")?;
                options.rel_tolerance = value
                    .parse()
                    .map_err(|_| format!("invalid tolerance `{value}`"))?;
                if !(options.rel_tolerance.is_finite() && options.rel_tolerance > 0.0) {
                    return Err(format!("invalid tolerance `{value}`"));
                }
            }
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown eval option `{other}` (see `ftio eval --help`)"
                ))
            }
            name => {
                if options.scenario.is_some() {
                    return Err(format!("unexpected extra argument `{name}`"));
                }
                options.scenario = Some(name.to_string());
            }
        }
        i += 1;
    }
    if !options.list && !options.all && options.scenario.is_none() {
        return Err("no scenario given (or use --all / --list)".into());
    }
    Ok(options)
}

/// The analysis configuration the harness evaluates (autocorrelation off:
/// the scored metric is the spectral path the paper centres on).
fn analysis_config(freq: f64) -> FtioConfig {
    FtioConfig {
        sampling_freq: freq,
        use_autocorrelation: false,
        ..Default::default()
    }
}

/// Runs one application's flush schedule through the synchronous online
/// predictor and returns its prediction ticks.
pub fn run_predictor(scenario: &Scenario, app: AppId, freq: f64) -> Vec<OnlinePrediction> {
    let mut predictor = OnlinePredictor::new(
        analysis_config(freq),
        WindowStrategy::Adaptive { multiple: 3 },
    );
    let mut predictions = Vec::new();
    for flush in scenario.flushes.iter().filter(|f| f.app == app) {
        predictor.ingest(flush.requests.iter().copied());
        predictions.push(predictor.predict(flush.now));
    }
    predictions
}

/// Runs the whole scenario through the sharded cluster engine (one
/// submission per flush, no coalescing) and returns each application's
/// prediction ticks. `threads` is the engine worker budget (0 = one worker
/// per shard); the scoring is layout-independent because per-app order is.
pub fn run_engine(
    scenario: &Scenario,
    freq: f64,
    threads: usize,
) -> Vec<(AppId, Vec<OnlinePrediction>)> {
    let engine = ClusterEngine::spawn(ClusterConfig {
        shards: 2,
        queue_capacity: 1024,
        max_batch: 1,
        threads,
        policy: BackpressurePolicy::Block,
        ftio: analysis_config(freq),
        strategy: WindowStrategy::Adaptive { multiple: 3 },
        ..ClusterConfig::default()
    });
    let mut source = scenario.to_source();
    engine
        .replay(&mut source, Pacing::AsFast)
        .expect("memory source cannot fail");
    engine.flush();
    let mut results = engine.finish();
    scenario
        .apps()
        .into_iter()
        .map(|app| (app, results.remove(&app).unwrap_or_default()))
        .collect()
}

/// Scores every application of a scenario and returns `(app, report)` pairs
/// in truth order.
pub fn evaluate_scenario(
    scenario: &Scenario,
    options: &EvalCliOptions,
) -> Vec<(AppId, EvalReport)> {
    let eval_config = EvalConfig {
        rel_tolerance: options.rel_tolerance,
        ..Default::default()
    };
    let runs: Vec<(AppId, Vec<OnlinePrediction>)> = if options.engine {
        run_engine(scenario, options.freq, options.threads)
    } else {
        scenario
            .apps()
            .into_iter()
            .map(|app| (app, run_predictor(scenario, app, options.freq)))
            .collect()
    };
    runs.into_iter()
        .map(|(app, predictions)| {
            let truth = scenario.truth(app).expect("scenario truth per app");
            (app, score_predictions(&predictions, truth, &eval_config))
        })
        .collect()
}

/// Runs the subcommand and renders the report.
pub fn run_eval(options: &EvalCliOptions) -> Result<String, String> {
    if options.list {
        let mut out = String::from("available scenarios:\n");
        for family in ScenarioFamily::all() {
            out.push_str(&format!("  {}\n", family.as_str()));
        }
        return Ok(out);
    }

    let scenarios: Vec<Scenario> = if options.all {
        all_scenarios(options.seed)
    } else {
        let name = options.scenario.as_deref().expect("validated by parser");
        vec![scenario_by_name(name, options.seed).ok_or(format!(
            "unknown scenario `{name}` (see `ftio eval --list`)"
        ))?]
    };

    let mut out = String::new();
    for scenario in &scenarios {
        let multi_app = scenario.apps().len() > 1;
        for (app, report) in evaluate_scenario(scenario, options) {
            let label = if multi_app {
                format!("{} [{app}]", scenario.name)
            } else {
                scenario.name.clone()
            };
            out.push_str(&render_report(&label, &report));
            let truth = scenario.truth(app).expect("scenario truth per app");
            out.push_str(&format!("  truth: {}\n\n", truth.to_json()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_are_parsed() {
        let options = parse_eval_options(&strings(&[
            "drift",
            "--seed",
            "7",
            "--freq",
            "1.5",
            "--rel-tolerance",
            "0.2",
            "--engine",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(options.scenario.as_deref(), Some("drift"));
        assert_eq!(options.seed, 7);
        assert_eq!(options.freq, 1.5);
        assert_eq!(options.rel_tolerance, 0.2);
        assert!(options.engine);
        assert_eq!(options.threads, 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_eval_options(&[]).is_err());
        assert!(parse_eval_options(&strings(&["a", "b"])).is_err());
        assert!(parse_eval_options(&strings(&["drift", "--seed", "x"])).is_err());
        assert!(parse_eval_options(&strings(&["drift", "--freq", "-2"])).is_err());
        assert!(parse_eval_options(&strings(&["drift", "--bogus"])).is_err());
        assert!(parse_eval_options(&strings(&["drift", "--threads", "many"])).is_err());
        assert!(parse_eval_options(&strings(&["--rel-tolerance", "0.1"])).is_err());
    }

    #[test]
    fn list_needs_no_scenario() {
        let options = parse_eval_options(&strings(&["--list"])).unwrap();
        let out = run_eval(&options).unwrap();
        for family in ScenarioFamily::all() {
            assert!(out.contains(family.as_str()), "{out}");
        }
    }

    #[test]
    fn unknown_scenario_is_a_readable_error() {
        let options = parse_eval_options(&strings(&["warp-drive"])).unwrap();
        let err = run_eval(&options).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn steady_scenario_locks_and_reports_truth() {
        let options = parse_eval_options(&strings(&["steady"])).unwrap();
        let out = run_eval(&options).unwrap();
        assert!(out.contains("scenario: steady"), "{out}");
        assert!(out.contains("lock-on:         tick"), "{out}");
        assert!(out.contains("\"segments\""), "{out}");
    }

    #[test]
    fn engine_path_produces_the_same_tick_count() {
        let sync_options = parse_eval_options(&strings(&["phase-change"])).unwrap();
        let engine_options = parse_eval_options(&strings(&["phase-change", "--engine"])).unwrap();
        let scenario = scenario_by_name("phase-change", 42).unwrap();
        let sync_reports = evaluate_scenario(&scenario, &sync_options);
        let engine_reports = evaluate_scenario(&scenario, &engine_options);
        assert_eq!(sync_reports.len(), engine_reports.len());
        for ((app_a, a), (app_b, b)) in sync_reports.iter().zip(&engine_reports) {
            assert_eq!(app_a, app_b);
            assert_eq!(a.ticks.len(), b.ticks.len());
        }
    }
}
