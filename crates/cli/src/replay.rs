//! The `ftio replay` subcommand: stream a recorded trace file through the
//! sharded [`ClusterEngine`] and report replay throughput plus detection
//! results.
//!
//! This is the file-driven twin of `ftio cluster`: instead of a synthetic
//! fleet, the submissions come from a [`ftio_trace::source::TraceSource`]
//! opened over a real trace file (any supported format, auto-detected), and
//! the pacing can either push as fast as possible (`--pacing as-fast`,
//! benchmark mode) or follow the recorded timestamps compressed by a speedup
//! factor (`--pacing recorded:<speedup>`).

use std::path::Path;
use std::time::Instant;

use ftio_core::{
    BackpressurePolicy, ClusterConfig, ClusterEngine, FtioConfig, Pacing, ReplayStats,
    WindowStrategy,
};
use ftio_trace::source::{open_path_sized, DEFAULT_BATCH_SIZE};
use ftio_trace::SourceFormat;

use crate::{next_value, parse_format};

/// Options of the `ftio replay` subcommand.
#[derive(Clone, Debug)]
pub struct ReplayCliOptions {
    /// Path of the trace file to replay.
    pub input: String,
    /// Explicit input format (`None` = auto-detect).
    pub format: Option<SourceFormat>,
    /// Number of predictor shards.
    pub shards: usize,
    /// Bounded queue capacity per shard.
    pub capacity: usize,
    /// Maximum submissions of one application coalesced into a tick.
    pub batch: usize,
    /// Backpressure policy.
    pub policy: BackpressurePolicy,
    /// Engine worker threads (0 = one worker per shard).
    pub threads: usize,
    /// Replay pacing.
    pub pacing: Pacing,
    /// Sampling frequency of the analysis.
    pub freq: f64,
    /// Requests (or bins) per source batch.
    pub batch_size: usize,
    /// Stop after this many replayed batches (`None` = replay everything).
    pub limit: Option<u64>,
    /// Path the engine snapshot is written to (final, plus periodic when
    /// [`ReplayCliOptions::checkpoint_every`] is set).
    pub checkpoint: Option<String>,
    /// Snapshot the engine every N replayed batches (requires `checkpoint`).
    pub checkpoint_every: Option<u64>,
    /// Restore engine state and source position from this snapshot file
    /// before replaying. The engine configuration then comes from the
    /// snapshot; the `shards`/`capacity`/`batch`/`policy`/`threads`/`freq`
    /// options are ignored.
    pub resume: Option<String>,
}

impl Default for ReplayCliOptions {
    fn default() -> Self {
        ReplayCliOptions {
            input: String::new(),
            format: None,
            shards: 4,
            capacity: 256,
            batch: 8,
            policy: BackpressurePolicy::Block,
            threads: crate::default_threads(),
            pacing: Pacing::AsFast,
            freq: 2.0,
            batch_size: DEFAULT_BATCH_SIZE,
            limit: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        }
    }
}

/// Usage text of the subcommand.
pub const REPLAY_USAGE: &str = "usage: ftio replay <trace-file> [options]\n\
     \n\
     Stream a recorded trace file through the sharded cluster engine —\n\
     batches are routed to shard queues at recorded or accelerated\n\
     timestamps — and report replay throughput and detection results.\n\
     \n\
     options:\n\
     \x20 --format auto|jsonl|msgpack|tmio-json|tmio-msgpack|darshan-parser|heatmap|recorder\n\
     \x20          input format (default: auto)\n\
     \x20 --shards <n>                predictor shards (default 4)\n\
     \x20 --capacity <n>              per-shard queue capacity (default 256)\n\
     \x20 --batch <n>                 max coalesced submissions per tick (default 8)\n\
     \x20 --policy block|drop-oldest|reject   backpressure policy (default block)\n\
     \x20 --threads <n>|auto          engine worker threads, clamped to the shard\n\
     \x20                             count (default: FTIO_THREADS, else one\n\
     \x20                             worker per shard; ignored with --resume)\n\
     \x20 --pacing as-fast|recorded[:<speedup>]   replay pacing (default as-fast)\n\
     \x20 --freq <hz>                 sampling frequency for request traces (default 2)\n\
     \x20 --batch-size <n>            requests per source batch (default 1024)\n\
     \x20 --limit <n>                 stop after n batches (default: whole file)\n\
     \x20 --checkpoint <path>         write an engine snapshot to this file\n\
     \x20 --checkpoint-every <n>      also snapshot every n batches (needs --checkpoint)\n\
     \x20 --resume <path>             restore engine + file position from a snapshot;\n\
     \x20                             the engine configuration comes from the snapshot";

/// Parses the arguments following `ftio replay`.
pub fn parse_replay_options(args: &[String]) -> Result<ReplayCliOptions, String> {
    let mut options = ReplayCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let value = next_value(args, &mut i, "--format")?;
                options.format = parse_format(&value)?;
            }
            "--shards" => options.shards = parse_count(args, &mut i, "--shards")?,
            "--capacity" => options.capacity = parse_count(args, &mut i, "--capacity")?,
            "--batch" => options.batch = parse_count(args, &mut i, "--batch")?,
            "--policy" => {
                let value = next_value(args, &mut i, "--policy")?;
                options.policy = BackpressurePolicy::parse(&value)
                    .ok_or(format!("unknown backpressure policy `{value}`"))?;
            }
            "--threads" => {
                let value = next_value(args, &mut i, "--threads")?;
                options.threads = crate::parse_threads_flag(&value)?;
            }
            "--pacing" => {
                let value = next_value(args, &mut i, "--pacing")?;
                options.pacing = Pacing::parse(&value).ok_or(format!(
                    "unknown pacing `{value}` (expected as-fast or recorded[:<speedup>])"
                ))?;
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
                if !(options.freq.is_finite() && options.freq > 0.0) {
                    return Err(format!("invalid sampling frequency `{value}`"));
                }
            }
            "--batch-size" => options.batch_size = parse_count(args, &mut i, "--batch-size")?,
            "--limit" => options.limit = Some(parse_count(args, &mut i, "--limit")? as u64),
            "--checkpoint" => options.checkpoint = Some(next_value(args, &mut i, "--checkpoint")?),
            "--checkpoint-every" => {
                options.checkpoint_every =
                    Some(parse_count(args, &mut i, "--checkpoint-every")? as u64)
            }
            "--resume" => options.resume = Some(next_value(args, &mut i, "--resume")?),
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown replay option `{other}` (see `ftio replay --help`)"
                ))
            }
            path => {
                if !options.input.is_empty() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                options.input = path.to_string();
            }
        }
        i += 1;
    }
    if options.input.is_empty() {
        return Err("no input file given".into());
    }
    if options.shards == 0 || options.capacity == 0 || options.batch == 0 {
        return Err("--shards, --capacity and --batch must be at least 1".into());
    }
    if options.batch_size == 0 {
        return Err("--batch-size must be at least 1".into());
    }
    if options.limit == Some(0) {
        return Err("--limit must be at least 1".into());
    }
    if options.checkpoint_every == Some(0) {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if options.checkpoint_every.is_some() && options.checkpoint.is_none() {
        return Err("--checkpoint-every requires --checkpoint <path>".into());
    }
    Ok(options)
}

fn parse_count(args: &[String], i: &mut usize, flag: &str) -> Result<usize, String> {
    let value = next_value(args, i, flag)?;
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {flag}"))
}

/// Writes one engine snapshot atomically enough for a crash-safe resume: the
/// bytes go to a sibling temp file first and replace the target with a
/// rename, so an interrupted write never leaves a torn checkpoint behind.
fn write_checkpoint(engine: &ClusterEngine, path: &str, progress: u64) -> Result<(), String> {
    let bytes = engine.snapshot_with_progress(progress);
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| format!("cannot write checkpoint `{tmp}`: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot move checkpoint into `{path}`: {e}"))
}

/// Opens the file, replays it through the engine and renders the report.
///
/// With `--checkpoint`/`--resume` this is the crash-safe long-horizon path:
/// the engine snapshot carries every application's predictor state plus the
/// number of source batches already consumed, so a resumed replay continues
/// exactly where the interrupted one stopped and produces the same
/// predictions an uninterrupted run would.
pub fn run_replay(options: &ReplayCliOptions) -> Result<String, String> {
    let (format, mut source) = open_path_sized(
        Path::new(&options.input),
        options.format,
        options.batch_size,
    )
    .map_err(|e| e.to_string())?;
    let (engine, skip) = match &options.resume {
        Some(path) => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read checkpoint `{path}`: {e}"))?;
            ClusterEngine::restore_with_progress(&bytes).map_err(|e| e.to_string())?
        }
        None => {
            let config = FtioConfig {
                sampling_freq: options.freq,
                use_autocorrelation: false,
                ..Default::default()
            };
            config.validate()?;
            let engine = ClusterEngine::spawn(ClusterConfig {
                shards: options.shards,
                queue_capacity: options.capacity,
                max_batch: options.batch,
                threads: options.threads,
                policy: options.policy,
                ftio: config,
                strategy: WindowStrategy::Adaptive { multiple: 3 },
                ..ClusterConfig::default()
            });
            (engine, 0)
        }
    };

    let started = Instant::now();
    // The checkpoint/limit machinery needs batch-level control, so the loop
    // mirrors `ClusterEngine::replay` instead of delegating to it. `progress`
    // counts every batch pulled from the source (including empty ones), which
    // is the position a later `--resume` fast-forwards to.
    let mut replay = ReplayStats::default();
    let mut progress: u64 = 0;
    let mut checkpoints_written: u64 = 0;
    let mut timeline_origin: Option<f64> = None;
    while let Some(batch) = source.next_batch().map_err(|e| e.to_string())? {
        progress += 1;
        if progress <= skip {
            continue;
        }
        let app = batch.app;
        let Some(now) = batch.end_time() else {
            continue; // empty batch carries no submission time
        };
        if let Pacing::Recorded { speedup } = options.pacing {
            let origin = *timeline_origin.get_or_insert(now);
            let target = ((now - origin) / speedup).max(0.0);
            let elapsed = started.elapsed().as_secs_f64();
            if target > elapsed {
                std::thread::sleep(std::time::Duration::from_secs_f64(target - elapsed));
            }
        }
        let requests = batch.into_requests();
        replay.batches += 1;
        replay.requests += requests.len() as u64;
        if engine.submit(app, requests, now).accepted() {
            replay.accepted += 1;
        } else {
            replay.rejected += 1;
        }
        if let (Some(every), Some(path)) = (options.checkpoint_every, &options.checkpoint) {
            if replay.batches % every == 0 {
                write_checkpoint(&engine, path, progress)?;
                checkpoints_written += 1;
            }
        }
        if Some(replay.batches) == options.limit {
            break;
        }
    }
    engine.flush();
    if let Some(path) = &options.checkpoint {
        write_checkpoint(&engine, path, progress)?;
        checkpoints_written += 1;
    }
    let elapsed = started.elapsed();
    let stats = engine.stats();
    let results = engine.finish();

    let pacing = match options.pacing {
        Pacing::AsFast => "as-fast".to_string(),
        Pacing::Recorded { speedup } => format!("recorded:{speedup}"),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "replay: {} ({}), {} shards, capacity {}, batch {}, policy {}, pacing {}\n",
        options.input,
        format.as_str(),
        options.shards,
        options.capacity,
        options.batch,
        options.policy.as_str(),
        pacing
    ));
    out.push_str(&format!(
        "source: {} batches, {} requests, {} accepted, {} rejected\n",
        replay.batches, replay.requests, replay.accepted, replay.rejected
    ));
    if let Some(path) = &options.resume {
        out.push_str(&format!(
            "resumed: {path} (skipped {skip} source batches)\n"
        ));
    }
    if let Some(path) = &options.checkpoint {
        out.push_str(&format!(
            "checkpoint: {path} ({checkpoints_written} snapshots, source batch {progress})\n"
        ));
    }
    out.push('\n');
    let mut apps: Vec<_> = results.iter().collect();
    apps.sort_by_key(|(app, _)| **app);
    for (app, history) in &apps {
        let detected = history.last().and_then(|p| p.period());
        match detected {
            Some(period) => out.push_str(&format!(
                "{app}: {} predictions, period {period:.2} s (confidence {:.1} %)\n",
                history.len(),
                history
                    .last()
                    .map(|p| p.confidence() * 100.0)
                    .unwrap_or(0.0)
            )),
            None => out.push_str(&format!(
                "{app}: {} predictions, no dominant frequency\n",
                history.len()
            )),
        }
    }
    out.push_str(&format!(
        "\nsubmitted {}  ticks {}  coalesced {}  dropped {}  rejected {}\n",
        stats.submitted, stats.ticks, stats.coalesced, stats.dropped, stats.rejected
    ));
    let secs = elapsed.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "wall time {:.1} ms  ({:.0} requests/s through the engine)\n",
        secs * 1e3,
        replay.requests as f64 / secs
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::{jsonl, IoRequest};

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_are_parsed() {
        let options = parse_replay_options(&strings(&[
            "trace.jsonl",
            "--shards",
            "2",
            "--capacity",
            "64",
            "--batch",
            "4",
            "--policy",
            "reject",
            "--threads",
            "2",
            "--pacing",
            "recorded:25",
            "--freq",
            "1.5",
            "--format",
            "jsonl",
        ]))
        .unwrap();
        assert_eq!(options.input, "trace.jsonl");
        assert_eq!(options.shards, 2);
        assert_eq!(options.capacity, 64);
        assert_eq!(options.batch, 4);
        assert_eq!(options.policy, BackpressurePolicy::Reject);
        assert_eq!(options.threads, 2);
        assert_eq!(options.pacing, Pacing::Recorded { speedup: 25.0 });
        assert_eq!(options.freq, 1.5);
        assert_eq!(options.format, Some(SourceFormat::Jsonl));
        let options = parse_replay_options(&strings(&[
            "trace.jsonl",
            "--batch-size",
            "8",
            "--limit",
            "5",
            "--checkpoint",
            "state.ftiosnap",
            "--checkpoint-every",
            "2",
            "--resume",
            "old.ftiosnap",
        ]))
        .unwrap();
        assert_eq!(options.batch_size, 8);
        assert_eq!(options.limit, Some(5));
        assert_eq!(options.checkpoint.as_deref(), Some("state.ftiosnap"));
        assert_eq!(options.checkpoint_every, Some(2));
        assert_eq!(options.resume.as_deref(), Some("old.ftiosnap"));
    }

    #[test]
    fn defaults_and_errors() {
        assert!(parse_replay_options(&[]).is_err());
        assert!(parse_replay_options(&strings(&["a", "b"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--pacing", "warp"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--shards", "0"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--threads", "lots"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--freq", "-1"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--bogus"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--batch-size", "0"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--limit", "0"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--checkpoint-every", "0"])).is_err());
        // --checkpoint-every without a checkpoint path has nowhere to write.
        assert!(parse_replay_options(&strings(&["a", "--checkpoint-every", "2"])).is_err());
        let options = parse_replay_options(&strings(&["trace.msgpack"])).unwrap();
        assert_eq!(options.pacing, Pacing::AsFast);
        assert_eq!(options.format, None);
        assert_eq!(options.batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(options.limit, None);
        assert_eq!(options.checkpoint, None);
        assert_eq!(options.checkpoint_every, None);
        assert_eq!(options.resume, None);
    }

    #[test]
    fn replaying_a_periodic_file_finds_the_period() {
        let mut requests = Vec::new();
        for tick in 0..10 {
            let start = tick as f64 * 10.0;
            for rank in 0..2 {
                requests.push(IoRequest::write(rank, start, start + 2.0, 500_000_000));
            }
        }
        let path = std::env::temp_dir().join("ftio_replay_cli_test.jsonl");
        std::fs::write(&path, jsonl::encode_requests(&requests)).unwrap();
        let options = ReplayCliOptions {
            input: path.to_str().unwrap().to_string(),
            shards: 2,
            ..Default::default()
        };
        let report = run_replay(&options).unwrap();
        assert!(report.contains("jsonl"), "{report}");
        assert!(report.contains("20 requests"), "{report}");
        assert!(report.contains("period 10."), "{report}");
        assert!(report.contains("requests/s"), "{report}");
        let _ = std::fs::remove_file(path);
    }

    /// Extracts the per-application result lines, stripped of the prediction
    /// count: a resumed run's result store starts empty, so only the detected
    /// period and confidence are expected to match an uninterrupted run.
    fn detections(report: &str) -> Vec<String> {
        report
            .lines()
            .filter_map(|line| line.split_once(" predictions, "))
            .map(|(app, detection)| {
                let app = app.split(':').next().unwrap_or(app);
                format!("{app}: {detection}")
            })
            .collect()
    }

    #[test]
    fn checkpointed_replay_resumes_to_the_same_predictions() {
        let mut requests = Vec::new();
        for tick in 0..12 {
            let start = tick as f64 * 10.0;
            for rank in 0..2 {
                requests.push(IoRequest::write(rank, start, start + 2.0, 500_000_000));
            }
        }
        let dir = std::env::temp_dir();
        let trace = dir.join("ftio_replay_resume_test.jsonl");
        let snapshot = dir.join("ftio_replay_resume_test.ftiosnap");
        std::fs::write(&trace, jsonl::encode_requests(&requests)).unwrap();
        // `--batch 1` keeps coalescing deterministic (one tick per source
        // batch), so the interrupted + resumed pair must land on exactly the
        // detection the uninterrupted run reports.
        let base = ReplayCliOptions {
            input: trace.to_str().unwrap().to_string(),
            batch: 1,
            batch_size: 4,
            ..Default::default()
        };
        let uninterrupted = run_replay(&base).unwrap();

        let first_half = ReplayCliOptions {
            limit: Some(3),
            checkpoint: Some(snapshot.to_str().unwrap().to_string()),
            checkpoint_every: Some(3),
            ..base.clone()
        };
        let partial = run_replay(&first_half).unwrap();
        assert!(partial.contains("3 batches"), "{partial}");
        assert!(partial.contains("source batch 3"), "{partial}");

        let resumed_options = ReplayCliOptions {
            resume: Some(snapshot.to_str().unwrap().to_string()),
            ..base.clone()
        };
        let resumed = run_replay(&resumed_options).unwrap();
        assert!(resumed.contains("skipped 3 source batches"), "{resumed}");
        assert_eq!(detections(&resumed), detections(&uninterrupted));
        assert!(!detections(&uninterrupted).is_empty(), "{uninterrupted}");

        let missing = ReplayCliOptions {
            resume: Some(
                dir.join("ftio_no_such_snapshot")
                    .to_str()
                    .unwrap()
                    .to_string(),
            ),
            ..base.clone()
        };
        assert!(run_replay(&missing).is_err());
        let _ = std::fs::remove_file(trace);
        let _ = std::fs::remove_file(snapshot);
    }
}
