//! The `ftio replay` subcommand: stream a recorded trace file through the
//! sharded [`ClusterEngine`] and report replay throughput plus detection
//! results.
//!
//! This is the file-driven twin of `ftio cluster`: instead of a synthetic
//! fleet, the submissions come from a [`ftio_trace::source::TraceSource`]
//! opened over a real trace file (any supported format, auto-detected), and
//! the pacing can either push as fast as possible (`--pacing as-fast`,
//! benchmark mode) or follow the recorded timestamps compressed by a speedup
//! factor (`--pacing recorded:<speedup>`).

use std::path::Path;
use std::time::Instant;

use ftio_core::{
    BackpressurePolicy, ClusterConfig, ClusterEngine, FtioConfig, Pacing, WindowStrategy,
};
use ftio_trace::source::open_path_as;
use ftio_trace::SourceFormat;

use crate::{next_value, parse_format};

/// Options of the `ftio replay` subcommand.
#[derive(Clone, Debug)]
pub struct ReplayCliOptions {
    /// Path of the trace file to replay.
    pub input: String,
    /// Explicit input format (`None` = auto-detect).
    pub format: Option<SourceFormat>,
    /// Number of predictor shards.
    pub shards: usize,
    /// Bounded queue capacity per shard.
    pub capacity: usize,
    /// Maximum submissions of one application coalesced into a tick.
    pub batch: usize,
    /// Backpressure policy.
    pub policy: BackpressurePolicy,
    /// Replay pacing.
    pub pacing: Pacing,
    /// Sampling frequency of the analysis.
    pub freq: f64,
}

impl Default for ReplayCliOptions {
    fn default() -> Self {
        ReplayCliOptions {
            input: String::new(),
            format: None,
            shards: 4,
            capacity: 256,
            batch: 8,
            policy: BackpressurePolicy::Block,
            pacing: Pacing::AsFast,
            freq: 2.0,
        }
    }
}

/// Usage text of the subcommand.
pub const REPLAY_USAGE: &str = "usage: ftio replay <trace-file> [options]\n\
     \n\
     Stream a recorded trace file through the sharded cluster engine —\n\
     batches are routed to shard queues at recorded or accelerated\n\
     timestamps — and report replay throughput and detection results.\n\
     \n\
     options:\n\
     \x20 --format auto|jsonl|msgpack|tmio-json|tmio-msgpack|darshan-parser|heatmap|recorder\n\
     \x20          input format (default: auto)\n\
     \x20 --shards <n>                predictor shards (default 4)\n\
     \x20 --capacity <n>              per-shard queue capacity (default 256)\n\
     \x20 --batch <n>                 max coalesced submissions per tick (default 8)\n\
     \x20 --policy block|drop-oldest|reject   backpressure policy (default block)\n\
     \x20 --pacing as-fast|recorded[:<speedup>]   replay pacing (default as-fast)\n\
     \x20 --freq <hz>                 sampling frequency for request traces (default 2)";

/// Parses the arguments following `ftio replay`.
pub fn parse_replay_options(args: &[String]) -> Result<ReplayCliOptions, String> {
    let mut options = ReplayCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let value = next_value(args, &mut i, "--format")?;
                options.format = parse_format(&value)?;
            }
            "--shards" => options.shards = parse_count(args, &mut i, "--shards")?,
            "--capacity" => options.capacity = parse_count(args, &mut i, "--capacity")?,
            "--batch" => options.batch = parse_count(args, &mut i, "--batch")?,
            "--policy" => {
                let value = next_value(args, &mut i, "--policy")?;
                options.policy = BackpressurePolicy::parse(&value)
                    .ok_or(format!("unknown backpressure policy `{value}`"))?;
            }
            "--pacing" => {
                let value = next_value(args, &mut i, "--pacing")?;
                options.pacing = Pacing::parse(&value).ok_or(format!(
                    "unknown pacing `{value}` (expected as-fast or recorded[:<speedup>])"
                ))?;
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
                if !(options.freq.is_finite() && options.freq > 0.0) {
                    return Err(format!("invalid sampling frequency `{value}`"));
                }
            }
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown replay option `{other}` (see `ftio replay --help`)"
                ))
            }
            path => {
                if !options.input.is_empty() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                options.input = path.to_string();
            }
        }
        i += 1;
    }
    if options.input.is_empty() {
        return Err("no input file given".into());
    }
    if options.shards == 0 || options.capacity == 0 || options.batch == 0 {
        return Err("--shards, --capacity and --batch must be at least 1".into());
    }
    Ok(options)
}

fn parse_count(args: &[String], i: &mut usize, flag: &str) -> Result<usize, String> {
    let value = next_value(args, i, flag)?;
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {flag}"))
}

/// Opens the file, replays it through the engine and renders the report.
pub fn run_replay(options: &ReplayCliOptions) -> Result<String, String> {
    let (format, mut source) =
        open_path_as(Path::new(&options.input), options.format).map_err(|e| e.to_string())?;
    let config = FtioConfig {
        sampling_freq: options.freq,
        use_autocorrelation: false,
        ..Default::default()
    };
    config.validate()?;
    let engine = ClusterEngine::spawn(ClusterConfig {
        shards: options.shards,
        queue_capacity: options.capacity,
        max_batch: options.batch,
        policy: options.policy,
        ftio: config,
        strategy: WindowStrategy::Adaptive { multiple: 3 },
    });

    let started = Instant::now();
    let replay = engine
        .replay(source.as_mut(), options.pacing)
        .map_err(|e| e.to_string())?;
    engine.flush();
    let elapsed = started.elapsed();
    let stats = engine.stats();
    let results = engine.finish();

    let pacing = match options.pacing {
        Pacing::AsFast => "as-fast".to_string(),
        Pacing::Recorded { speedup } => format!("recorded:{speedup}"),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "replay: {} ({}), {} shards, capacity {}, batch {}, policy {}, pacing {}\n",
        options.input,
        format.as_str(),
        options.shards,
        options.capacity,
        options.batch,
        options.policy.as_str(),
        pacing
    ));
    out.push_str(&format!(
        "source: {} batches, {} requests, {} accepted, {} rejected\n\n",
        replay.batches, replay.requests, replay.accepted, replay.rejected
    ));
    let mut apps: Vec<_> = results.iter().collect();
    apps.sort_by_key(|(app, _)| **app);
    for (app, history) in &apps {
        let detected = history.last().and_then(|p| p.period());
        match detected {
            Some(period) => out.push_str(&format!(
                "{app}: {} predictions, period {period:.2} s (confidence {:.1} %)\n",
                history.len(),
                history
                    .last()
                    .map(|p| p.confidence() * 100.0)
                    .unwrap_or(0.0)
            )),
            None => out.push_str(&format!(
                "{app}: {} predictions, no dominant frequency\n",
                history.len()
            )),
        }
    }
    out.push_str(&format!(
        "\nsubmitted {}  ticks {}  coalesced {}  dropped {}  rejected {}\n",
        stats.submitted, stats.ticks, stats.coalesced, stats.dropped, stats.rejected
    ));
    let secs = elapsed.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "wall time {:.1} ms  ({:.0} requests/s through the engine)\n",
        secs * 1e3,
        replay.requests as f64 / secs
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::{jsonl, IoRequest};

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_are_parsed() {
        let options = parse_replay_options(&strings(&[
            "trace.jsonl",
            "--shards",
            "2",
            "--capacity",
            "64",
            "--batch",
            "4",
            "--policy",
            "reject",
            "--pacing",
            "recorded:25",
            "--freq",
            "1.5",
            "--format",
            "jsonl",
        ]))
        .unwrap();
        assert_eq!(options.input, "trace.jsonl");
        assert_eq!(options.shards, 2);
        assert_eq!(options.capacity, 64);
        assert_eq!(options.batch, 4);
        assert_eq!(options.policy, BackpressurePolicy::Reject);
        assert_eq!(options.pacing, Pacing::Recorded { speedup: 25.0 });
        assert_eq!(options.freq, 1.5);
        assert_eq!(options.format, Some(SourceFormat::Jsonl));
    }

    #[test]
    fn defaults_and_errors() {
        assert!(parse_replay_options(&[]).is_err());
        assert!(parse_replay_options(&strings(&["a", "b"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--pacing", "warp"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--shards", "0"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--freq", "-1"])).is_err());
        assert!(parse_replay_options(&strings(&["a", "--bogus"])).is_err());
        let options = parse_replay_options(&strings(&["trace.msgpack"])).unwrap();
        assert_eq!(options.pacing, Pacing::AsFast);
        assert_eq!(options.format, None);
    }

    #[test]
    fn replaying_a_periodic_file_finds_the_period() {
        let mut requests = Vec::new();
        for tick in 0..10 {
            let start = tick as f64 * 10.0;
            for rank in 0..2 {
                requests.push(IoRequest::write(rank, start, start + 2.0, 500_000_000));
            }
        }
        let path = std::env::temp_dir().join("ftio_replay_cli_test.jsonl");
        std::fs::write(&path, jsonl::encode_requests(&requests)).unwrap();
        let options = ReplayCliOptions {
            input: path.to_str().unwrap().to_string(),
            shards: 2,
            ..Default::default()
        };
        let report = run_replay(&options).unwrap();
        assert!(report.contains("jsonl"), "{report}");
        assert!(report.contains("20 requests"), "{report}");
        assert!(report.contains("period 10."), "{report}");
        assert!(report.contains("requests/s"), "{report}");
        let _ = std::fs::remove_file(path);
    }
}
