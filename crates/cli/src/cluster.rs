//! The `ftio cluster` subcommand: drive a synthetic application fleet through
//! the sharded [`ClusterEngine`] and report per-application accuracy plus
//! engine throughput.
//!
//! This is the command-line face of the "monitor a whole cluster" scenario:
//! it generates `--apps` seeded periodic applications (`ftio_synth::multi_app`),
//! replays their interleaved flush schedule through an engine with the chosen
//! shard count, queue capacity, batch size and backpressure policy, and prints
//! how well each application's period was recovered together with the
//! submit/tick/coalesce/drop counters.

use std::time::Instant;

use ftio_core::{BackpressurePolicy, ClusterConfig, ClusterEngine, FtioConfig, WindowStrategy};
use ftio_synth::multi_app::{MultiAppConfig, MultiAppWorkload};

/// Options of the `ftio cluster` subcommand.
#[derive(Clone, Copy, Debug)]
pub struct ClusterCliOptions {
    /// Number of synthetic applications.
    pub apps: usize,
    /// Number of predictor shards.
    pub shards: usize,
    /// Flushes (prediction requests) per application.
    pub flushes: usize,
    /// Bounded queue capacity per shard.
    pub capacity: usize,
    /// Maximum submissions of one application coalesced into a tick.
    pub batch: usize,
    /// Backpressure policy.
    pub policy: BackpressurePolicy,
    /// Workload seed.
    pub seed: u64,
    /// Sampling frequency of the analysis.
    pub freq: f64,
    /// Engine worker threads (0 = one worker per shard).
    pub threads: usize,
}

impl Default for ClusterCliOptions {
    fn default() -> Self {
        ClusterCliOptions {
            apps: 32,
            shards: 4,
            flushes: 8,
            capacity: 256,
            batch: 8,
            policy: BackpressurePolicy::Block,
            seed: 0xF1EE7,
            freq: 2.0,
            threads: crate::default_threads(),
        }
    }
}

/// Usage text of the subcommand.
pub const CLUSTER_USAGE: &str = "usage: ftio cluster [options]\n\
     \n\
     Drive a synthetic multi-application fleet through the sharded cluster\n\
     engine and report per-app detection accuracy and engine throughput.\n\
     \n\
     options:\n\
     \x20 --apps <n>                  number of applications (default 32)\n\
     \x20 --shards <n>                predictor shards (default 4)\n\
     \x20 --flushes <n>               flushes per application (default 8)\n\
     \x20 --capacity <n>              per-shard queue capacity (default 256)\n\
     \x20 --batch <n>                 max coalesced submissions per tick (default 8)\n\
     \x20 --policy block|drop-oldest|reject   backpressure policy (default block)\n\
     \x20 --threads <n>|auto          engine worker threads, clamped to the shard\n\
     \x20                             count (default: FTIO_THREADS, else one\n\
     \x20                             worker per shard)\n\
     \x20 --seed <n>                  workload seed (default 0xF1EE7)\n\
     \x20 --freq <hz>                 sampling frequency (default 2)";

/// Parses the arguments following `ftio cluster`.
pub fn parse_cluster_options(args: &[String]) -> Result<ClusterCliOptions, String> {
    let mut options = ClusterCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--apps" => options.apps = parse_count(args, &mut i, "--apps")?,
            "--shards" => options.shards = parse_count(args, &mut i, "--shards")?,
            "--flushes" => options.flushes = parse_count(args, &mut i, "--flushes")?,
            "--capacity" => options.capacity = parse_count(args, &mut i, "--capacity")?,
            "--batch" => options.batch = parse_count(args, &mut i, "--batch")?,
            "--threads" => {
                let value = next_value(args, &mut i, "--threads")?;
                options.threads = crate::parse_threads_flag(&value)?;
            }
            "--policy" => {
                let value = next_value(args, &mut i, "--policy")?;
                options.policy = BackpressurePolicy::parse(&value)
                    .ok_or(format!("unknown backpressure policy `{value}`"))?;
            }
            "--seed" => {
                let value = next_value(args, &mut i, "--seed")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
                if !(options.freq.is_finite() && options.freq > 0.0) {
                    return Err(format!("invalid sampling frequency `{value}`"));
                }
            }
            other => return Err(format!("unknown cluster option `{other}`")),
        }
        i += 1;
    }
    // The engine clamps zeros internally, but the report prints the requested
    // values — refuse configurations that would silently run as something else.
    if options.apps == 0
        || options.flushes == 0
        || options.shards == 0
        || options.capacity == 0
        || options.batch == 0
    {
        return Err(
            "--apps, --flushes, --shards, --capacity and --batch must be at least 1".into(),
        );
    }
    Ok(options)
}

fn next_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or(format!("missing value for {flag}"))
}

fn parse_count(args: &[String], i: &mut usize, flag: &str) -> Result<usize, String> {
    let value = next_value(args, i, flag)?;
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {flag}"))
}

/// Runs the fleet through the engine and renders the report.
pub fn run_cluster(options: &ClusterCliOptions) -> Result<String, String> {
    let workload = MultiAppWorkload::generate(
        &MultiAppConfig {
            apps: options.apps,
            flushes_per_app: options.flushes,
            ..Default::default()
        },
        options.seed,
    );
    let events = workload.events();
    let config = FtioConfig {
        sampling_freq: options.freq,
        use_autocorrelation: false,
        ..Default::default()
    };
    config.validate()?;
    let engine = ClusterEngine::spawn(ClusterConfig {
        shards: options.shards,
        queue_capacity: options.capacity,
        max_batch: options.batch,
        threads: options.threads,
        policy: options.policy,
        ftio: config,
        strategy: WindowStrategy::Adaptive { multiple: 3 },
        ..ClusterConfig::default()
    });

    let workers = engine.worker_count();

    let started = Instant::now();
    for event in events {
        engine.submit(event.app, event.requests, event.now);
    }
    engine.flush();
    let elapsed = started.elapsed();
    let stats = engine.stats();
    let results = engine.finish();

    let mut out = String::new();
    out.push_str(&format!(
        "cluster: {} apps x {} flushes, {} shards ({} workers), capacity {}, batch {}, policy {}\n\n",
        options.apps,
        options.flushes,
        options.shards,
        workers,
        options.capacity,
        options.batch,
        options.policy.as_str()
    ));
    out.push_str(&format!(
        "{:>10} {:>12} {:>14} {:>12} {:>10}\n",
        "app", "true (s)", "detected (s)", "error (%)", "ticks"
    ));
    let mut errors: Vec<f64> = Vec::new();
    let mut detected_apps = 0usize;
    let shown = options.apps.min(10);
    for stream in &workload.apps {
        let history = results.get(&stream.app).cloned().unwrap_or_default();
        let detected = history.last().and_then(|p| p.period());
        let line = match detected {
            Some(period) => {
                let error = (period - stream.period).abs() / stream.period;
                errors.push(error);
                detected_apps += 1;
                format!(
                    "{:>10} {:>12.2} {:>14.2} {:>12.1} {:>10}\n",
                    stream.name,
                    stream.period,
                    period,
                    error * 100.0,
                    history.len()
                )
            }
            None => format!(
                "{:>10} {:>12.2} {:>14} {:>12} {:>10}\n",
                stream.name,
                stream.period,
                "-",
                "-",
                history.len()
            ),
        };
        if stream.app.raw() < shown as u64 {
            out.push_str(&line);
        }
    }
    if options.apps > shown {
        out.push_str(&format!("  ... ({} more apps)\n", options.apps - shown));
    }
    let mean_error = if errors.is_empty() {
        f64::NAN
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    };
    let processed = stats.ticks + stats.coalesced;
    out.push_str(&format!(
        "\nperiod found for {detected_apps}/{} apps (mean |error| {:.1} %)\n",
        options.apps,
        mean_error * 100.0
    ));
    out.push_str(&format!(
        "submitted {}  processed {}  ticks {}  coalesced {}  dropped {}  rejected {}\n",
        stats.submitted, processed, stats.ticks, stats.coalesced, stats.dropped, stats.rejected
    ));
    let secs = elapsed.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "wall time {:.1} ms  ({:.0} submissions/s, {:.0} ticks/s)\n",
        secs * 1e3,
        stats.submitted as f64 / secs,
        stats.ticks as f64 / secs
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_are_parsed() {
        let options = parse_cluster_options(&strings(&[
            "--apps",
            "8",
            "--shards",
            "2",
            "--flushes",
            "4",
            "--capacity",
            "32",
            "--batch",
            "2",
            "--policy",
            "drop-oldest",
            "--seed",
            "99",
            "--freq",
            "1.5",
        ]))
        .unwrap();
        assert_eq!(options.apps, 8);
        assert_eq!(options.shards, 2);
        assert_eq!(options.flushes, 4);
        assert_eq!(options.capacity, 32);
        assert_eq!(options.batch, 2);
        assert_eq!(options.policy, BackpressurePolicy::DropOldest);
        assert_eq!(options.seed, 99);
        assert_eq!(options.freq, 1.5);
    }

    #[test]
    fn threads_flag_is_parsed() {
        let options = parse_cluster_options(&strings(&["--threads", "3"])).unwrap();
        assert_eq!(options.threads, 3);
        // Garbage in a typed flag is an error, unlike the env variable.
        assert!(parse_cluster_options(&strings(&["--threads", "lots"])).is_err());
        assert!(parse_cluster_options(&strings(&["--threads"])).is_err());
    }

    #[test]
    fn defaults_and_errors() {
        let options = parse_cluster_options(&[]).unwrap();
        assert_eq!(options.apps, 32);
        assert_eq!(options.policy, BackpressurePolicy::Block);
        assert!(parse_cluster_options(&strings(&["--apps"])).is_err());
        assert!(parse_cluster_options(&strings(&["--apps", "zero"])).is_err());
        assert!(parse_cluster_options(&strings(&["--apps", "0"])).is_err());
        assert!(parse_cluster_options(&strings(&["--shards", "0"])).is_err());
        assert!(parse_cluster_options(&strings(&["--capacity", "0"])).is_err());
        assert!(parse_cluster_options(&strings(&["--batch", "0"])).is_err());
        assert!(parse_cluster_options(&strings(&["--policy", "nope"])).is_err());
        assert!(parse_cluster_options(&strings(&["--freq", "-1"])).is_err());
        assert!(parse_cluster_options(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn tiny_fleet_runs_and_reports() {
        let options = ClusterCliOptions {
            apps: 4,
            shards: 2,
            flushes: 8,
            ..Default::default()
        };
        let report = run_cluster(&options).unwrap();
        assert!(report.contains("4 apps x 8 flushes"), "{report}");
        assert!(report.contains("fleet-0"), "{report}");
        assert!(report.contains("submitted 32"), "{report}");
        // Clean periodic fleets converge for every app.
        assert!(report.contains("period found for 4/4 apps"), "{report}");
    }
}
