//! # ftio-cli
//!
//! Shared plumbing of the command-line tools `ftio` (offline detection and
//! the `cluster` multi-application subcommand) and `predictor` (online
//! prediction): argument parsing, trace-file loading for the supported
//! formats (JSON Lines, MessagePack, Recorder text, Darshan heatmap), a
//! generated demo workload for quick experimentation, and the [`cluster`]
//! fleet driver.

pub mod cluster;

use std::path::Path;

use ftio_core::FtioConfig;
use ftio_synth::hacc::{generate as generate_hacc, HaccConfig};
use ftio_trace::{jsonl, msgpack, recorder, AppTrace, Heatmap};

/// Input trace formats supported by the tools.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputFormat {
    /// One JSON object per request per line (TMIO online format).
    JsonLines,
    /// MessagePack array of request arrays (TMIO binary format).
    MessagePack,
    /// Recorder-style text trace.
    Recorder,
    /// Darshan-style heatmap text file.
    Darshan,
}

impl InputFormat {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "jsonl" | "json" | "jsonlines" => Some(InputFormat::JsonLines),
            "msgpack" | "messagepack" | "mp" => Some(InputFormat::MessagePack),
            "recorder" | "rec" => Some(InputFormat::Recorder),
            "darshan" | "heatmap" => Some(InputFormat::Darshan),
            _ => None,
        }
    }

    /// Guesses the format from a file extension.
    pub fn from_extension(path: &str) -> Option<Self> {
        let ext = Path::new(path).extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "jsonl" | "json" => Some(InputFormat::JsonLines),
            "msgpack" | "mp" | "bin" => Some(InputFormat::MessagePack),
            "txt" | "recorder" => Some(InputFormat::Recorder),
            "darshan" | "heatmap" | "csv" => Some(InputFormat::Darshan),
            _ => None,
        }
    }
}

/// Options shared by both tools.
#[derive(Clone, Debug, Default)]
pub struct CliOptions {
    /// Path of the input trace, or `None` when `--demo` was given.
    pub input: Option<String>,
    /// Explicit input format (otherwise derived from the extension).
    pub format: Option<InputFormat>,
    /// Analysis configuration (sampling frequency, tolerance, ACF, ...).
    pub config: FtioConfig,
    /// Optional analysis window `[t0, t1)`.
    pub window: Option<(f64, f64)>,
    /// Whether to analyse the built-in demo workload.
    pub demo: bool,
}

/// A successfully loaded input.
#[derive(Debug)]
pub enum LoadedInput {
    /// Request-level trace.
    Trace(AppTrace),
    /// Darshan-style heatmap.
    Heatmap(Heatmap),
}

/// Prints the usage text of `tool` and exits.
pub fn print_usage_and_exit(tool: &str) -> ! {
    println!(
        "usage: {tool} <trace-file> [options]\n\
         \n\
         options:\n\
         \x20 --format jsonl|msgpack|recorder|darshan   input format (default: by extension)\n\
         \x20 --freq <hz>                               sampling frequency (default 10)\n\
         \x20 --tolerance <0..1>                        candidate tolerance (default 0.8)\n\
         \x20 --no-autocorrelation                      skip the ACF refinement\n\
         \x20 --window <t0> <t1>                        restrict the analysis window (seconds)\n\
         \x20 --demo                                    analyse a generated demo trace instead of a file"
    );
    if tool == "ftio" {
        println!(
            "\nsubcommands:\n\
             \x20 cluster    drive a synthetic multi-application fleet through the\n\
             \x20            sharded online engine (see `ftio cluster --help`)"
        );
    }
    std::process::exit(0);
}

/// Parses the options shared by both tools.
pub fn parse_common_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => options.demo = true,
            "--no-autocorrelation" => options.config.use_autocorrelation = false,
            "--format" => {
                let value = next_value(args, &mut i, "--format")?;
                options.format =
                    Some(InputFormat::parse(&value).ok_or(format!("unknown format `{value}`"))?);
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.config.sampling_freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
            }
            "--tolerance" => {
                let value = next_value(args, &mut i, "--tolerance")?;
                options.config.tolerance = value
                    .parse()
                    .map_err(|_| format!("invalid tolerance `{value}`"))?;
            }
            "--window" => {
                let t0: f64 = next_value(args, &mut i, "--window")?
                    .parse()
                    .map_err(|_| "invalid window start".to_string())?;
                let t1: f64 = next_value(args, &mut i, "--window")?
                    .parse()
                    .map_err(|_| "invalid window end".to_string())?;
                if t1 <= t0 {
                    return Err("window end must be after window start".into());
                }
                options.window = Some((t0, t1));
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            path => {
                if options.input.is_some() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                options.input = Some(path.to_string());
            }
        }
        i += 1;
    }
    if !options.demo && options.input.is_none() {
        return Err("no input file given (or use --demo)".into());
    }
    options.config.validate()?;
    Ok(options)
}

fn next_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or(format!("missing value for {flag}"))
}

/// Loads the input described by the options (or builds the demo workload).
pub fn load_trace(options: &CliOptions) -> Result<LoadedInput, String> {
    if options.demo {
        return Ok(LoadedInput::Trace(demo_trace()));
    }
    let path = options
        .input
        .as_ref()
        .expect("validated by parse_common_options");
    let format = options
        .format
        .or_else(|| InputFormat::from_extension(path))
        .ok_or_else(|| format!("cannot determine the format of `{path}`; pass --format"))?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    match format {
        InputFormat::JsonLines => {
            let text =
                String::from_utf8(bytes).map_err(|_| "trace is not valid UTF-8".to_string())?;
            let requests = jsonl::decode_requests(&text).map_err(|e| e.to_string())?;
            Ok(LoadedInput::Trace(requests_to_trace(path, requests)))
        }
        InputFormat::MessagePack => {
            let requests = msgpack::decode_requests(&bytes).map_err(|e| e.to_string())?;
            Ok(LoadedInput::Trace(requests_to_trace(path, requests)))
        }
        InputFormat::Recorder => {
            let text =
                String::from_utf8(bytes).map_err(|_| "trace is not valid UTF-8".to_string())?;
            let requests = recorder::decode_requests(&text).map_err(|e| e.to_string())?;
            Ok(LoadedInput::Trace(requests_to_trace(path, requests)))
        }
        InputFormat::Darshan => {
            let text =
                String::from_utf8(bytes).map_err(|_| "heatmap is not valid UTF-8".to_string())?;
            let heatmap = Heatmap::from_text(&text).map_err(|e| e.to_string())?;
            Ok(LoadedInput::Heatmap(heatmap))
        }
    }
}

fn requests_to_trace(path: &str, requests: Vec<ftio_trace::IoRequest>) -> AppTrace {
    let ranks = requests.iter().map(|r| r.rank + 1).max().unwrap_or(0);
    AppTrace::from_requests(path, ranks, requests)
}

/// The demo workload: a HACC-IO-shaped run with ten periodic I/O phases.
pub fn demo_trace() -> AppTrace {
    generate_hacc(&HaccConfig::default(), 0xDE30).trace
}

/// The flush points of the demo workload (used by the `predictor` tool).
pub fn demo_flush_points() -> Vec<f64> {
    generate_hacc(&HaccConfig::default(), 0xDE30).flush_points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn format_parsing_and_extensions() {
        assert_eq!(InputFormat::parse("jsonl"), Some(InputFormat::JsonLines));
        assert_eq!(
            InputFormat::parse("MSGPACK"),
            Some(InputFormat::MessagePack)
        );
        assert_eq!(InputFormat::parse("darshan"), Some(InputFormat::Darshan));
        assert_eq!(InputFormat::parse("nope"), None);
        assert_eq!(
            InputFormat::from_extension("a/b/trace.jsonl"),
            Some(InputFormat::JsonLines)
        );
        assert_eq!(
            InputFormat::from_extension("trace.msgpack"),
            Some(InputFormat::MessagePack)
        );
        assert_eq!(
            InputFormat::from_extension("trace.heatmap"),
            Some(InputFormat::Darshan)
        );
        assert_eq!(InputFormat::from_extension("trace"), None);
    }

    #[test]
    fn options_are_parsed() {
        let options = parse_common_options(&strings(&[
            "trace.jsonl",
            "--freq",
            "2.5",
            "--tolerance",
            "0.6",
            "--no-autocorrelation",
            "--window",
            "10",
            "200",
        ]))
        .unwrap();
        assert_eq!(options.input.as_deref(), Some("trace.jsonl"));
        assert_eq!(options.config.sampling_freq, 2.5);
        assert_eq!(options.config.tolerance, 0.6);
        assert!(!options.config.use_autocorrelation);
        assert_eq!(options.window, Some((10.0, 200.0)));
    }

    #[test]
    fn demo_needs_no_input_file() {
        let options = parse_common_options(&strings(&["--demo"])).unwrap();
        assert!(options.demo);
        assert!(options.input.is_none());
        let loaded = load_trace(&options).unwrap();
        match loaded {
            LoadedInput::Trace(trace) => assert!(!trace.is_empty()),
            LoadedInput::Heatmap(_) => panic!("demo should be a request trace"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_common_options(&strings(&[])).is_err());
        assert!(parse_common_options(&strings(&["--freq", "abc", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["--format", "weird", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["--window", "5", "1", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["--unknown", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["a.jsonl", "b.jsonl"])).is_err());
        // Invalid configuration values are caught by validation.
        assert!(parse_common_options(&strings(&["--tolerance", "3.0", "t.jsonl"])).is_err());
    }

    #[test]
    fn loading_round_trips_through_the_codecs() {
        let demo = demo_trace();
        let dir = std::env::temp_dir();

        let jsonl_path = dir.join("ftio_cli_test.jsonl");
        std::fs::write(&jsonl_path, jsonl::encode_requests(demo.requests())).unwrap();
        let options = parse_common_options(&strings(&[jsonl_path.to_str().unwrap()])).unwrap();
        match load_trace(&options).unwrap() {
            LoadedInput::Trace(trace) => assert_eq!(trace.len(), demo.len()),
            _ => panic!("expected a trace"),
        }

        let mp_path = dir.join("ftio_cli_test.msgpack");
        std::fs::write(&mp_path, msgpack::encode_requests(demo.requests())).unwrap();
        let options = parse_common_options(&strings(&[mp_path.to_str().unwrap()])).unwrap();
        match load_trace(&options).unwrap() {
            LoadedInput::Trace(trace) => assert_eq!(trace.len(), demo.len()),
            _ => panic!("expected a trace"),
        }

        let heatmap = Heatmap::new(0.0, 60.0, vec![1.0e9, 0.0, 2.0e9]);
        let hm_path = dir.join("ftio_cli_test.heatmap");
        std::fs::write(&hm_path, heatmap.to_text()).unwrap();
        let options = parse_common_options(&strings(&[hm_path.to_str().unwrap()])).unwrap();
        match load_trace(&options).unwrap() {
            LoadedInput::Heatmap(h) => assert_eq!(h, heatmap),
            _ => panic!("expected a heatmap"),
        }

        let _ = std::fs::remove_file(jsonl_path);
        let _ = std::fs::remove_file(mp_path);
        let _ = std::fs::remove_file(hm_path);
    }

    #[test]
    fn missing_file_is_a_readable_error() {
        let options = parse_common_options(&strings(&["/does/not/exist.jsonl"])).unwrap();
        let err = load_trace(&options).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn demo_flush_points_are_increasing() {
        let points = demo_flush_points();
        assert_eq!(points.len(), 10);
        for pair in points.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }
}
