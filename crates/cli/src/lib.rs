//! # ftio-cli
//!
//! Shared plumbing of the command-line tools `ftio` (offline detection via
//! `ftio detect`, file replay via `ftio replay`, the `cluster` fleet driver,
//! the `eval` adversarial-scenario harness, the `serve` socket daemon with
//! its `client` counterpart, the `watch` file tail) and `predictor` (online
//! prediction): argument parsing, the streaming trace-ingestion front-end
//! (`ftio_trace::source` with `--format auto` content sniffing), a generated
//! demo workload for quick experimentation, and the [`cluster`] / [`replay`]
//! / [`eval`] / [`serve`] / [`watch`] drivers.

pub mod cluster;
pub mod eval;
pub mod replay;
pub mod serve;
pub mod watch;

use std::path::Path;

use ftio_core::FtioConfig;
use ftio_synth::hacc::{generate as generate_hacc, HaccConfig};
use ftio_trace::source::{drain_single, open_path_as, DrainedInput, SourceFormat};
use ftio_trace::{AppTrace, Heatmap};

/// Options shared by the detection tools.
#[derive(Clone, Debug, Default)]
pub struct CliOptions {
    /// Path of the input trace, or `None` when `--demo` was given.
    pub input: Option<String>,
    /// Explicit input format; `None` means auto-detect (content sniffing with
    /// an extension fallback).
    pub format: Option<SourceFormat>,
    /// Analysis configuration (sampling frequency, tolerance, ACF, ...).
    pub config: FtioConfig,
    /// Optional analysis window `[t0, t1)`.
    pub window: Option<(f64, f64)>,
    /// Whether to analyse the built-in demo workload.
    pub demo: bool,
    /// Explicit size for the process-wide DSP pool (the concurrent four-step
    /// FFT); `None` leaves the `FTIO_THREADS`/core-count default.
    pub threads: Option<usize>,
}

/// A successfully loaded input.
#[derive(Debug)]
pub enum LoadedInput {
    /// Request-level trace.
    Trace(AppTrace),
    /// Darshan-style heatmap.
    Heatmap(Heatmap),
}

/// The `--format` values accepted by the tools.
pub const FORMAT_HELP: &str =
    "auto|jsonl|msgpack|tmio-json|tmio-msgpack|darshan-parser|heatmap|recorder";

/// Parses a `--format` value; `auto` maps to `None` (content sniffing).
pub fn parse_format(value: &str) -> Result<Option<SourceFormat>, String> {
    if value.eq_ignore_ascii_case("auto") {
        return Ok(None);
    }
    SourceFormat::parse(value)
        .map(Some)
        .ok_or(format!("unknown format `{value}` (expected {FORMAT_HELP})"))
}

/// Prints the usage text of `tool` and exits.
pub fn print_usage_and_exit(tool: &str) -> ! {
    println!(
        "usage: {tool} [detect] <trace-file> [options]\n\
         \n\
         options:\n\
         \x20 --format {FORMAT_HELP}\n\
         \x20          input format (default: auto — sniff content, then extension)\n\
         \x20 --freq <hz>                               sampling frequency (default 10)\n\
         \x20 --tolerance <0..1>                        candidate tolerance (default 0.8)\n\
         \x20 --no-autocorrelation                      skip the ACF refinement\n\
         \x20 --window <t0> <t1>                        restrict the analysis window (seconds)\n\
         \x20 --threads <n>|auto                        size the FFT worker pool explicitly\n\
         \x20                                           (default: FTIO_THREADS, then core count)\n\
         \x20 --demo                                    analyse a generated demo trace instead of a file"
    );
    if tool == "ftio" {
        println!(
            "\nsubcommands:\n\
             \x20 detect     offline detection on a trace file (same as the bare form)\n\
             \x20 replay     replay a trace file through the sharded cluster engine\n\
             \x20            (see `ftio replay --help`)\n\
             \x20 cluster    drive a synthetic multi-application fleet through the\n\
             \x20            sharded online engine (see `ftio cluster --help`)\n\
             \x20 eval       run the adversarial scenario harness and score the\n\
             \x20            predictor against ground truth (see `ftio eval --help`)\n\
             \x20 serve      run the socket-facing prediction daemon\n\
             \x20            (see `ftio serve --help`)\n\
             \x20 client     stream a trace into a running daemon and print its\n\
             \x20            predictions (see `ftio client --help`)\n\
             \x20 watch      tail a growing trace file and predict live\n\
             \x20            (see `ftio watch --help`)"
        );
    }
    std::process::exit(0);
}

/// Parses the options shared by the detection tools.
pub fn parse_common_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => options.demo = true,
            "--no-autocorrelation" => options.config.use_autocorrelation = false,
            "--format" => {
                let value = next_value(args, &mut i, "--format")?;
                options.format = parse_format(&value)?;
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.config.sampling_freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
            }
            "--tolerance" => {
                let value = next_value(args, &mut i, "--tolerance")?;
                options.config.tolerance = value
                    .parse()
                    .map_err(|_| format!("invalid tolerance `{value}`"))?;
            }
            "--threads" => {
                let value = next_value(args, &mut i, "--threads")?;
                let trimmed = value.trim();
                if trimmed.eq_ignore_ascii_case("auto") || trimmed == "0" {
                    options.threads = None; // keep the FTIO_THREADS/core default
                } else {
                    options.threads = Some(
                        ftio_core::pool::parse_threads(Some(trimmed))
                            .ok_or(format!("invalid value `{value}` for --threads"))?,
                    );
                }
            }
            "--window" => {
                let t0: f64 = next_value(args, &mut i, "--window")?
                    .parse()
                    .map_err(|_| "invalid window start".to_string())?;
                let t1: f64 = next_value(args, &mut i, "--window")?
                    .parse()
                    .map_err(|_| "invalid window end".to_string())?;
                if t1 <= t0 {
                    return Err("window end must be after window start".into());
                }
                options.window = Some((t0, t1));
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            path => {
                if options.input.is_some() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                options.input = Some(path.to_string());
            }
        }
        i += 1;
    }
    if !options.demo && options.input.is_none() {
        return Err("no input file given (or use --demo)".into());
    }
    options.config.validate()?;
    Ok(options)
}

/// The default engine thread budget of the engine-backed subcommands
/// (`replay`, `serve`, `cluster`, `eval --engine`): the `FTIO_THREADS`
/// environment variable when set to a positive count, otherwise `0` — the
/// legacy one-worker-per-shard cluster layout. An explicit `--threads` flag
/// overrides the environment; both are clamped to the shard count by the
/// engine itself.
pub fn default_threads() -> usize {
    ftio_core::pool::parse_threads(std::env::var(ftio_core::pool::THREADS_ENV).ok().as_deref())
        .unwrap_or(0)
}

/// Parses a `--threads` option value: an explicit positive worker count wins,
/// `auto` and `0` fall back to [`default_threads`] (the `FTIO_THREADS`
/// environment). Garbage is an error — unlike the environment variable,
/// which degrades to the automatic budget, a typed flag deserves a diagnosis.
pub fn parse_threads_flag(value: &str) -> Result<usize, String> {
    let trimmed = value.trim();
    if trimmed.eq_ignore_ascii_case("auto") || trimmed == "0" {
        return Ok(default_threads());
    }
    ftio_core::pool::parse_threads(Some(trimmed))
        .ok_or(format!("invalid value `{value}` for --threads"))
}

pub(crate) fn next_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or(format!("missing value for {flag}"))
}

/// Loads the input described by the options (or builds the demo workload) —
/// opens a streaming [`ftio_trace::source::TraceSource`] for the file and
/// drains it, so every supported format goes through one ingestion pipeline.
pub fn load_trace(options: &CliOptions) -> Result<LoadedInput, String> {
    if options.demo {
        return Ok(LoadedInput::Trace(demo_trace()));
    }
    let path = options
        .input
        .as_ref()
        .expect("validated by parse_common_options");
    if !Path::new(path).exists() {
        return Err(format!("cannot read `{path}`: no such file"));
    }
    let (_, mut source) =
        open_path_as(Path::new(path), options.format).map_err(|e| e.to_string())?;
    match drain_single(source.as_mut(), path).map_err(|e| e.to_string())? {
        DrainedInput::Trace(trace) => Ok(LoadedInput::Trace(trace)),
        DrainedInput::Heatmap(heatmap) => Ok(LoadedInput::Heatmap(heatmap)),
    }
}

/// The demo workload: a HACC-IO-shaped run with ten periodic I/O phases.
pub fn demo_trace() -> AppTrace {
    generate_hacc(&HaccConfig::default(), 0xDE30).trace
}

/// The flush points of the demo workload (used by the `predictor` tool).
pub fn demo_flush_points() -> Vec<f64> {
    generate_hacc(&HaccConfig::default(), 0xDE30).flush_points
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::{jsonl, msgpack};

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn format_parsing_accepts_auto_and_names() {
        assert_eq!(parse_format("auto").unwrap(), None);
        assert_eq!(parse_format("AUTO").unwrap(), None);
        assert_eq!(parse_format("jsonl").unwrap(), Some(SourceFormat::Jsonl));
        assert_eq!(
            parse_format("tmio-json").unwrap(),
            Some(SourceFormat::TmioJson)
        );
        assert_eq!(
            parse_format("darshan-parser").unwrap(),
            Some(SourceFormat::DarshanParser)
        );
        assert!(parse_format("nope").is_err());
    }

    #[test]
    fn options_are_parsed() {
        let options = parse_common_options(&strings(&[
            "trace.jsonl",
            "--freq",
            "2.5",
            "--tolerance",
            "0.6",
            "--no-autocorrelation",
            "--format",
            "auto",
            "--window",
            "10",
            "200",
        ]))
        .unwrap();
        assert_eq!(options.input.as_deref(), Some("trace.jsonl"));
        assert_eq!(options.config.sampling_freq, 2.5);
        assert_eq!(options.config.tolerance, 0.6);
        assert!(!options.config.use_autocorrelation);
        assert_eq!(options.format, None);
        assert_eq!(options.window, Some((10.0, 200.0)));
    }

    #[test]
    fn demo_needs_no_input_file() {
        let options = parse_common_options(&strings(&["--demo"])).unwrap();
        assert!(options.demo);
        assert!(options.input.is_none());
        let loaded = load_trace(&options).unwrap();
        match loaded {
            LoadedInput::Trace(trace) => assert!(!trace.is_empty()),
            LoadedInput::Heatmap(_) => panic!("demo should be a request trace"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_common_options(&strings(&[])).is_err());
        assert!(parse_common_options(&strings(&["--freq", "abc", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["--format", "weird", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["--window", "5", "1", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["--unknown", "t.jsonl"])).is_err());
        assert!(parse_common_options(&strings(&["a.jsonl", "b.jsonl"])).is_err());
        // Invalid configuration values are caught by validation.
        assert!(parse_common_options(&strings(&["--tolerance", "3.0", "t.jsonl"])).is_err());
    }

    #[test]
    fn loading_round_trips_through_the_codecs() {
        let demo = demo_trace();
        let dir = std::env::temp_dir();

        let jsonl_path = dir.join("ftio_cli_test.jsonl");
        std::fs::write(&jsonl_path, jsonl::encode_requests(demo.requests())).unwrap();
        let options = parse_common_options(&strings(&[jsonl_path.to_str().unwrap()])).unwrap();
        match load_trace(&options).unwrap() {
            LoadedInput::Trace(trace) => assert_eq!(trace.len(), demo.len()),
            _ => panic!("expected a trace"),
        }

        let mp_path = dir.join("ftio_cli_test.msgpack");
        std::fs::write(&mp_path, msgpack::encode_requests(demo.requests())).unwrap();
        let options = parse_common_options(&strings(&[mp_path.to_str().unwrap()])).unwrap();
        match load_trace(&options).unwrap() {
            LoadedInput::Trace(trace) => assert_eq!(trace.len(), demo.len()),
            _ => panic!("expected a trace"),
        }

        let heatmap = Heatmap::new(0.0, 60.0, vec![1.0e9, 0.0, 2.0e9]);
        let hm_path = dir.join("ftio_cli_test.heatmap");
        std::fs::write(&hm_path, heatmap.to_text()).unwrap();
        let options = parse_common_options(&strings(&[hm_path.to_str().unwrap()])).unwrap();
        match load_trace(&options).unwrap() {
            LoadedInput::Heatmap(h) => assert_eq!(h, heatmap),
            _ => panic!("expected a heatmap"),
        }

        let _ = std::fs::remove_file(jsonl_path);
        let _ = std::fs::remove_file(mp_path);
        let _ = std::fs::remove_file(hm_path);
    }

    #[test]
    fn auto_detection_beats_a_lying_extension() {
        // MessagePack bytes behind a `.jsonl` extension: content sniffing wins.
        let demo = demo_trace();
        let path = std::env::temp_dir().join("ftio_cli_lying_extension.jsonl");
        std::fs::write(&path, msgpack::encode_requests(demo.requests())).unwrap();
        let options = parse_common_options(&strings(&[path.to_str().unwrap()])).unwrap();
        match load_trace(&options).unwrap() {
            LoadedInput::Trace(trace) => assert_eq!(trace.len(), demo.len()),
            _ => panic!("expected a trace"),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_a_readable_error() {
        let options = parse_common_options(&strings(&["/does/not/exist.jsonl"])).unwrap();
        let err = load_trace(&options).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn demo_flush_points_are_increasing() {
        let points = demo_flush_points();
        assert_eq!(points.len(), 10);
        for pair in points.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }
}
