//! The `ftio serve` and `ftio client` subcommands: the socket-facing
//! prediction daemon and its bundled test client.
//!
//! `ftio serve` binds a Unix-domain socket or TCP address and multiplexes any
//! number of trace streams into one shared
//! [`ClusterEngine`](ftio_core::ClusterEngine) (see
//! [`ftio_core::server`]). It runs until a client sends a `Shutdown` frame,
//! then drains the shard queues and prints the final cluster report. The
//! hostile-traffic hardening knobs — socket deadlines, idle sweep, bounded
//! push queues, overload shedding, per-tenant quotas — are all exposed as
//! flags.
//!
//! `ftio client` is the matching sender: it connects (with capped,
//! seeded-jitter exponential backoff under `--retries`), names its
//! application, optionally subscribes to live predictions — resuming from a
//! sequence number with `--from-seq` — streams a trace file as `Data`
//! frames, waits for the flush `Ack`, and prints every prediction the server
//! pushed. With `--shutdown` it instead (or additionally) asks the daemon to
//! drain and prints the final stats frame — the CI smoke lane is exactly
//! these two commands run against each other. `--inject <plan>` wraps the
//! connection in a seeded [`FaultStream`] so chaos runs can torture the
//! daemon with short reads, interrupts, bit flips, and truncations from the
//! command line.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use ftio_core::server::{
    Server, ServerConfig, ServerListener, SlowSubscriberPolicy, TenantPolicy, TenantQuota,
};
use ftio_core::{BackpressurePolicy, ClusterConfig, FtioConfig};
use ftio_trace::source::DEFAULT_BATCH_SIZE;
use ftio_trace::wire::{Frame, FrameReader};
use ftio_trace::{AppId, FaultPlan, FaultStream};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::next_value;

/// Options of the `ftio serve` subcommand.
#[derive(Clone, Debug)]
pub struct ServeCliOptions {
    /// Unix-domain socket path to listen on.
    pub unix: Option<String>,
    /// TCP address to listen on (`host:port`; port 0 picks one).
    pub tcp: Option<String>,
    /// Maximum concurrently served connections.
    pub max_conns: usize,
    /// Number of predictor shards.
    pub shards: usize,
    /// Bounded queue capacity per shard.
    pub capacity: usize,
    /// Maximum submissions of one application coalesced into a tick.
    pub batch: usize,
    /// Backpressure policy.
    pub policy: BackpressurePolicy,
    /// Engine worker threads (0 = one worker per shard). Connection handler
    /// threads are I/O-bound and do not count against this budget; the
    /// engine workers themselves run transforms inline (no nested pool), so
    /// the daemon's CPU-bound parallelism is exactly this knob.
    pub threads: usize,
    /// Sampling frequency of the analysis.
    pub freq: f64,
    /// Requests per decoded source batch.
    pub batch_size: usize,
    /// Socket read timeout in milliseconds (0 = no deadline).
    pub read_timeout_ms: u64,
    /// Socket write timeout in milliseconds (0 = no deadline).
    pub write_timeout_ms: u64,
    /// Idle-connection sweep deadline in milliseconds (0 = no sweep).
    pub idle_timeout_ms: u64,
    /// Bounded per-subscriber prediction push queue capacity.
    pub push_queue: usize,
    /// What to do when a subscriber's push queue overflows.
    pub slow_policy: SlowSubscriberPolicy,
    /// Suggested client backoff (ms) on shed submissions.
    pub retry_after_ms: u64,
    /// Retained predictions per application for `Subscribe{from_seq}`.
    pub resume_ring: usize,
    /// Per-tenant budgets.
    pub tenants: TenantPolicy,
}

impl Default for ServeCliOptions {
    fn default() -> Self {
        ServeCliOptions {
            unix: None,
            tcp: None,
            max_conns: 64,
            shards: 4,
            capacity: 256,
            batch: 8,
            policy: BackpressurePolicy::Block,
            threads: crate::default_threads(),
            freq: 2.0,
            batch_size: DEFAULT_BATCH_SIZE,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            idle_timeout_ms: 60_000,
            push_queue: 1024,
            slow_policy: SlowSubscriberPolicy::default(),
            retry_after_ms: 100,
            resume_ring: ftio_core::DEFAULT_RESUME_RING,
            tenants: TenantPolicy::default(),
        }
    }
}

/// Usage text of `ftio serve`.
pub const SERVE_USAGE: &str = "usage: ftio serve --unix <path> | --tcp <host:port> [options]\n\
     \n\
     Run the prediction daemon: accept framed or raw trace streams on a\n\
     socket, route them through the sharded cluster engine, push live\n\
     predictions to subscribed clients, and drain cleanly when a client\n\
     sends a Shutdown frame (`ftio client --shutdown`).\n\
     \n\
     Raw mode needs no client at all:  nc -U <path> < trace.jsonl\n\
     (gzipped traces are decompressed transparently).\n\
     \n\
     options:\n\
     \x20 --unix <path>               listen on a Unix-domain socket\n\
     \x20 --tcp <host:port>           listen on a TCP address (port 0 = pick one)\n\
     \x20 --max-conns <n>             concurrent connection limit (default 64)\n\
     \x20 --shards <n>                predictor shards (default 4)\n\
     \x20 --capacity <n>              per-shard queue capacity (default 256)\n\
     \x20 --batch <n>                 max coalesced submissions per tick (default 8)\n\
     \x20 --policy block|drop-oldest|reject   backpressure policy (default block)\n\
     \x20 --threads <n>|auto          engine worker threads, clamped to the shard\n\
     \x20                             count (default: FTIO_THREADS, else one\n\
     \x20                             worker per shard); this is the daemon's\n\
     \x20                             whole CPU budget — workers never nest a pool\n\
     \x20 --freq <hz>                 sampling frequency (default 2)\n\
     \x20 --batch-size <n>            requests per decoded batch (default 1024)\n\
     \x20 --read-timeout <ms>         socket read deadline; a client stalled\n\
     \x20                             mid-frame past it is evicted (default 5000,\n\
     \x20                             0 = none)\n\
     \x20 --write-timeout <ms>        socket write deadline (default 5000, 0 = none)\n\
     \x20 --idle-timeout <ms>         evict connections with no progress for this\n\
     \x20                             long (default 60000, 0 = never)\n\
     \x20 --push-queue <n>            bounded per-subscriber prediction queue\n\
     \x20                             (default 1024)\n\
     \x20 --slow-policy drop-oldest|disconnect   what to do on push-queue overflow\n\
     \x20                             (default drop-oldest)\n\
     \x20 --retry-after <ms>          backoff hinted to clients on shed submissions\n\
     \x20                             (default 100)\n\
     \x20 --resume-ring <n>           retained predictions per app for resumable\n\
     \x20                             subscriptions (default 64, 0 = none)\n\
     \x20 --tenant <name:spec>        budget one tenant; spec is a comma list of\n\
     \x20                             conns=<n>, apps=<n>, rate=<bytes/s>,\n\
     \x20                             burst=<bytes> (repeatable)\n\
     \x20 --tenant-default <spec>     budget applied to tenants without --tenant";

/// Parses the `conns=..,apps=..,rate=..,burst=..` tenant budget spelling.
pub fn parse_tenant_quota(spec: &str) -> Result<TenantQuota, String> {
    let mut quota = TenantQuota::default();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or(format!("tenant budget `{part}` is not key=value"))?;
        match key {
            "conns" => {
                quota.max_connections = value
                    .parse()
                    .map_err(|_| format!("invalid tenant conns `{value}`"))?;
            }
            "apps" => {
                quota.max_apps = value
                    .parse()
                    .map_err(|_| format!("invalid tenant apps `{value}`"))?;
            }
            "rate" => {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid tenant rate `{value}`"))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("invalid tenant rate `{value}`"));
                }
                quota.bytes_per_sec = rate;
            }
            "burst" => {
                let burst: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid tenant burst `{value}`"))?;
                if !(burst.is_finite() && burst > 0.0) {
                    return Err(format!("invalid tenant burst `{value}`"));
                }
                quota.burst_bytes = burst;
            }
            other => {
                return Err(format!(
                    "unknown tenant budget key `{other}` (expected conns|apps|rate|burst)"
                ))
            }
        }
    }
    Ok(quota)
}

/// Parses the arguments following `ftio serve`.
pub fn parse_serve_options(args: &[String]) -> Result<ServeCliOptions, String> {
    let mut options = ServeCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--unix" => options.unix = Some(next_value(args, &mut i, "--unix")?),
            "--tcp" => options.tcp = Some(next_value(args, &mut i, "--tcp")?),
            "--max-conns" => options.max_conns = parse_count(args, &mut i, "--max-conns")?,
            "--shards" => options.shards = parse_count(args, &mut i, "--shards")?,
            "--capacity" => options.capacity = parse_count(args, &mut i, "--capacity")?,
            "--batch" => options.batch = parse_count(args, &mut i, "--batch")?,
            "--policy" => {
                let value = next_value(args, &mut i, "--policy")?;
                options.policy = BackpressurePolicy::parse(&value)
                    .ok_or(format!("unknown backpressure policy `{value}`"))?;
            }
            "--threads" => {
                let value = next_value(args, &mut i, "--threads")?;
                options.threads = crate::parse_threads_flag(&value)?;
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
                if !(options.freq.is_finite() && options.freq > 0.0) {
                    return Err(format!("invalid sampling frequency `{value}`"));
                }
            }
            "--batch-size" => options.batch_size = parse_count(args, &mut i, "--batch-size")?,
            "--read-timeout" => {
                options.read_timeout_ms = parse_millis(args, &mut i, "--read-timeout")?;
            }
            "--write-timeout" => {
                options.write_timeout_ms = parse_millis(args, &mut i, "--write-timeout")?;
            }
            "--idle-timeout" => {
                options.idle_timeout_ms = parse_millis(args, &mut i, "--idle-timeout")?;
            }
            "--push-queue" => options.push_queue = parse_count(args, &mut i, "--push-queue")?,
            "--slow-policy" => {
                let value = next_value(args, &mut i, "--slow-policy")?;
                options.slow_policy = SlowSubscriberPolicy::parse(&value)?;
            }
            "--retry-after" => {
                options.retry_after_ms = parse_millis(args, &mut i, "--retry-after")?;
            }
            "--resume-ring" => {
                let value = next_value(args, &mut i, "--resume-ring")?;
                options.resume_ring = value
                    .parse()
                    .map_err(|_| format!("invalid value `{value}` for --resume-ring"))?;
            }
            "--tenant" => {
                let value = next_value(args, &mut i, "--tenant")?;
                let (name, spec) = value
                    .split_once(':')
                    .ok_or(format!("--tenant `{value}` is not name:spec"))?;
                if name.is_empty() {
                    return Err(format!("--tenant `{value}` has an empty tenant name"));
                }
                let quota = parse_tenant_quota(spec)?;
                options.tenants.tenants.insert(name.to_string(), quota);
            }
            "--tenant-default" => {
                let value = next_value(args, &mut i, "--tenant-default")?;
                options.tenants.default_quota = Some(parse_tenant_quota(&value)?);
            }
            other => {
                return Err(format!(
                    "unknown serve option `{other}` (see `ftio serve --help`)"
                ))
            }
        }
        i += 1;
    }
    match (&options.unix, &options.tcp) {
        (None, None) => return Err("give --unix <path> or --tcp <host:port>".into()),
        (Some(_), Some(_)) => return Err("--unix and --tcp are mutually exclusive".into()),
        _ => {}
    }
    #[cfg(not(unix))]
    if options.unix.is_some() {
        return Err("--unix is not supported on this platform (use --tcp)".into());
    }
    if options.max_conns == 0 {
        return Err("--max-conns must be at least 1".into());
    }
    if options.shards == 0 || options.capacity == 0 || options.batch == 0 {
        return Err("--shards, --capacity and --batch must be at least 1".into());
    }
    if options.batch_size == 0 {
        return Err("--batch-size must be at least 1".into());
    }
    if options.push_queue == 0 {
        return Err("--push-queue must be at least 1".into());
    }
    Ok(options)
}

fn millis_opt(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// Builds the [`ServerConfig`] the options describe.
pub fn server_config(options: &ServeCliOptions) -> Result<ServerConfig, String> {
    let ftio = FtioConfig {
        sampling_freq: options.freq,
        use_autocorrelation: false,
        ..Default::default()
    };
    ftio.validate()?;
    Ok(ServerConfig {
        max_connections: options.max_conns,
        batch_size: options.batch_size,
        read_timeout: millis_opt(options.read_timeout_ms),
        write_timeout: millis_opt(options.write_timeout_ms),
        idle_timeout: millis_opt(options.idle_timeout_ms),
        push_queue: options.push_queue,
        slow_policy: options.slow_policy,
        retry_after: Duration::from_millis(options.retry_after_ms.max(1)),
        tenants: options.tenants.clone(),
        cluster: ClusterConfig {
            shards: options.shards,
            queue_capacity: options.capacity,
            max_batch: options.batch,
            threads: options.threads,
            policy: options.policy,
            ftio,
            resume_ring: options.resume_ring,
            ..ClusterConfig::default()
        },
    })
}

/// Boots the daemon, serves until a client shuts it down, and renders the
/// drained report. Prints a `listening on ...` line (and flushes it) as soon
/// as the socket is bound, so a supervising script knows when to connect.
pub fn run_serve(options: &ServeCliOptions) -> Result<String, String> {
    let config = server_config(options)?;
    let listener = bind_listener(options)?;
    let server = Server::start(listener, config).map_err(|e| format!("cannot serve: {e}"))?;
    println!("ftio serve: listening on {}", server.address());
    let _ = std::io::stdout().flush();
    let report = server.wait();
    let stats = &report.cluster;
    let mut out = String::new();
    out.push_str(&format!(
        "served: {} connections ({} raw), {} rejected at the limit, {} protocol errors\n",
        report.server.accepted,
        report.server.raw_connections,
        report.server.rejected_connections,
        report.server.protocol_errors
    ));
    // The hardening counters only earn a line when something happened, so
    // the happy-path report stays as short as it always was.
    let hardening = [
        ("evicted idle", report.server.evicted_idle),
        ("evicted stalled", report.server.evicted_stalled),
        ("shed", report.server.shed),
        ("rate limited", report.server.rate_limited),
        ("quota rejections", report.server.quota_rejections),
        ("push dropped", report.server.push_dropped),
        ("slow disconnects", report.server.slow_disconnects),
        ("resumed subscriptions", report.server.resumed_subscriptions),
    ];
    let nonzero: Vec<String> = hardening
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(label, count)| format!("{label} {count}"))
        .collect();
    if !nonzero.is_empty() {
        out.push_str(&format!("hardening: {}\n", nonzero.join("  ")));
    }
    out.push_str(&format!(
        "engine: submitted {}  ticks {}  coalesced {}  dropped {}  rejected {}  panicked {}\n",
        stats.submitted,
        stats.ticks,
        stats.coalesced,
        stats.dropped,
        stats.rejected,
        stats.panicked
    ));
    let mut apps: Vec<_> = report.predictions.iter().collect();
    apps.sort_by_key(|(app, _)| **app);
    for (app, history) in apps {
        // Render the hello name when the client announced one; the bare
        // AppId only appears for streams that never said hello.
        let name = report
            .names
            .get(app)
            .cloned()
            .unwrap_or_else(|| app.to_string());
        match history.last().and_then(|p| p.period()) {
            Some(period) => out.push_str(&format!(
                "{name}: {} predictions, period {period:.2} s (confidence {:.1} %)\n",
                history.len(),
                history
                    .last()
                    .map(|p| p.confidence() * 100.0)
                    .unwrap_or(0.0)
            )),
            None => out.push_str(&format!(
                "{name}: {} predictions, no dominant frequency\n",
                history.len()
            )),
        }
    }
    Ok(out)
}

fn bind_listener(options: &ServeCliOptions) -> Result<ServerListener, String> {
    #[cfg(unix)]
    if let Some(path) = &options.unix {
        return ServerListener::unix(path).map_err(|e| format!("cannot bind `{path}`: {e}"));
    }
    let addr = options
        .tcp
        .as_ref()
        .expect("validated by parse_serve_options");
    ServerListener::tcp(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))
}

/// Options of the `ftio client` subcommand.
#[derive(Clone, Debug, Default)]
pub struct ClientCliOptions {
    /// Unix-domain socket path of the daemon.
    pub unix: Option<String>,
    /// TCP address of the daemon.
    pub tcp: Option<String>,
    /// Application name sent in the `Hello` frame.
    pub name: String,
    /// Trace file streamed as `Data` frames (optional with `--shutdown`).
    pub file: Option<String>,
    /// Whether to subscribe to live predictions for this application.
    pub subscribe: bool,
    /// Resume the subscription from this sequence number (implies
    /// `--subscribe`).
    pub from_seq: Option<u64>,
    /// Whether to send a `Shutdown` frame after the stream (or immediately
    /// when no file was given) and print the daemon's final stats.
    pub shutdown: bool,
    /// Connect retries after a refused/failed connection (0 = fail fast).
    pub retries: u32,
    /// Ceiling of one backoff sleep, in milliseconds.
    pub retry_max_ms: u64,
    /// Seed of the backoff jitter (deterministic schedules for tests).
    pub retry_seed: u64,
    /// Fault-injection plan wrapped around the connection (chaos testing).
    pub inject: Option<FaultPlan>,
}

/// Usage text of `ftio client`.
pub const CLIENT_USAGE: &str = "usage: ftio client --unix <path> | --tcp <host:port> [options]\n\
     \n\
     Stream a trace file into a running `ftio serve` daemon over the framed\n\
     wire protocol and print the predictions it answers with.\n\
     \n\
     options:\n\
     \x20 --unix <path>               connect to a Unix-domain socket\n\
     \x20 --tcp <host:port>           connect to a TCP address\n\
     \x20 --name <app>                application name in the hello frame (default: the file name)\n\
     \x20 --file <trace>              trace file to stream (jsonl/msgpack/..., gzip ok)\n\
     \x20 --subscribe                 receive live predictions for this application\n\
     \x20 --from-seq <n>              resume the subscription from sequence <n>\n\
     \x20                             (implies --subscribe; missed predictions are\n\
     \x20                             replayed from the daemon's resume ring)\n\
     \x20 --shutdown                  ask the daemon to drain and print its final stats\n\
     \x20 --retries <n>               retry a failed connect up to <n> times with\n\
     \x20                             capped exponential backoff (default 0)\n\
     \x20 --retry-max-ms <ms>         backoff sleep ceiling (default 2000)\n\
     \x20 --retry-seed <n>            seed of the backoff jitter (default 0)\n\
     \x20 --inject <plan>             wrap the connection in a seeded fault\n\
     \x20                             injector; plan is a comma list of seed=<n>,\n\
     \x20                             short=<p>, interrupt=<p>, wouldblock=<p>,\n\
     \x20                             corrupt=<p>, truncate=<bytes>, stall=<n>x<ms>";

/// Parses the arguments following `ftio client`.
pub fn parse_client_options(args: &[String]) -> Result<ClientCliOptions, String> {
    let mut options = ClientCliOptions {
        retry_max_ms: 2_000,
        ..Default::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--unix" => options.unix = Some(next_value(args, &mut i, "--unix")?),
            "--tcp" => options.tcp = Some(next_value(args, &mut i, "--tcp")?),
            "--name" => options.name = next_value(args, &mut i, "--name")?,
            "--file" => options.file = Some(next_value(args, &mut i, "--file")?),
            "--subscribe" => options.subscribe = true,
            "--from-seq" => {
                let value = next_value(args, &mut i, "--from-seq")?;
                let seq = value
                    .parse()
                    .map_err(|_| format!("invalid value `{value}` for --from-seq"))?;
                options.from_seq = Some(seq);
                options.subscribe = true;
            }
            "--shutdown" => options.shutdown = true,
            "--retries" => {
                let value = next_value(args, &mut i, "--retries")?;
                options.retries = value
                    .parse()
                    .map_err(|_| format!("invalid value `{value}` for --retries"))?;
            }
            "--retry-max-ms" => {
                options.retry_max_ms = parse_millis(args, &mut i, "--retry-max-ms")?;
                if options.retry_max_ms == 0 {
                    return Err("--retry-max-ms must be at least 1".into());
                }
            }
            "--retry-seed" => {
                let value = next_value(args, &mut i, "--retry-seed")?;
                options.retry_seed = value
                    .parse()
                    .map_err(|_| format!("invalid value `{value}` for --retry-seed"))?;
            }
            "--inject" => {
                let value = next_value(args, &mut i, "--inject")?;
                options.inject = Some(FaultPlan::parse(&value)?);
            }
            other => {
                return Err(format!(
                    "unknown client option `{other}` (see `ftio client --help`)"
                ))
            }
        }
        i += 1;
    }
    match (&options.unix, &options.tcp) {
        (None, None) => return Err("give --unix <path> or --tcp <host:port>".into()),
        (Some(_), Some(_)) => return Err("--unix and --tcp are mutually exclusive".into()),
        _ => {}
    }
    if options.file.is_none() && !options.shutdown {
        return Err("give --file <trace> to stream, or --shutdown to stop the daemon".into());
    }
    if options.name.is_empty() {
        if let Some(file) = &options.file {
            options.name = std::path::Path::new(file)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| file.clone());
        } else {
            options.name = "ftio-client".into();
        }
    }
    Ok(options)
}

/// The deterministic connect-retry schedule: exponential from 25 ms, capped
/// at `max_ms`, with seeded uniform jitter in `[0.5, 1.0)` of the capped
/// value (full sleeps synchronize reconnect storms; jittered ones spread
/// them).
pub fn backoff_schedule(retries: u32, max_ms: u64, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut base: u64 = 25;
    (0..retries)
        .map(|_| {
            let capped = base.min(max_ms.max(1));
            base = base.saturating_mul(2);
            let jitter: f64 = rng.gen_range(0.5..1.0);
            Duration::from_millis(((capped as f64) * jitter).max(1.0) as u64)
        })
        .collect()
}

enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ClientStream {
    fn connect_once(options: &ClientCliOptions) -> Result<ClientStream, String> {
        #[cfg(unix)]
        if let Some(path) = &options.unix {
            return UnixStream::connect(path)
                .map(ClientStream::Unix)
                .map_err(|e| format!("cannot connect to `{path}`: {e}"));
        }
        #[cfg(not(unix))]
        if options.unix.is_some() {
            return Err("--unix is not supported on this platform (use --tcp)".into());
        }
        let addr = options.tcp.as_ref().expect("validated by parse");
        TcpStream::connect(addr)
            .map(ClientStream::Tcp)
            .map_err(|e| format!("cannot connect to `{addr}`: {e}"))
    }

    /// Connects, retrying per [`backoff_schedule`] when the daemon is not
    /// there yet (or refused the connection).
    fn connect(options: &ClientCliOptions) -> Result<ClientStream, String> {
        let mut last_error = String::new();
        for (attempt, sleep) in
            backoff_schedule(options.retries, options.retry_max_ms, options.retry_seed)
                .into_iter()
                .enumerate()
        {
            match ClientStream::connect_once(options) {
                Ok(stream) => return Ok(stream),
                Err(e) => {
                    last_error = e;
                    eprintln!(
                        "ftio client: connect attempt {} failed, retrying in {} ms",
                        attempt + 1,
                        sleep.as_millis()
                    );
                    std::thread::sleep(sleep);
                }
            }
        }
        ClientStream::connect_once(options).map_err(|e| {
            if options.retries > 0 {
                format!(
                    "{e} (after {} retries; last: {last_error})",
                    options.retries
                )
            } else {
                e
            }
        })
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// Runs one framed client session and renders what the daemon answered.
pub fn run_client(options: &ClientCliOptions) -> Result<String, String> {
    let stream = ClientStream::connect(options)?;
    match &options.inject {
        Some(plan) if !plan.is_noop() => {
            // Chaos mode: every byte in both directions runs through the
            // seeded fault injector.
            run_session(FaultStream::new(stream, plan.clone()), options)
        }
        _ => run_session(stream, options),
    }
}

/// The protocol half of the client, generic over the transport so the fault
/// injector can sit between the session and the socket.
fn run_session<S: Read + Write>(
    mut stream: S,
    options: &ClientCliOptions,
) -> Result<String, String> {
    let send = |stream: &mut S, frame: Frame| -> Result<(), String> {
        frame
            .write_to(stream)
            .map_err(|e| format!("cannot send to the daemon: {e}"))
    };
    send(
        &mut stream,
        Frame::Hello {
            name: options.name.clone(),
        },
    )?;
    if options.subscribe {
        send(
            &mut stream,
            Frame::Subscribe {
                app: Some(AppId::from_name(&options.name)),
                from_seq: options.from_seq,
            },
        )?;
    }
    let mut out = String::new();
    if let Some(file) = &options.file {
        let bytes = std::fs::read(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
        out.push_str(&format!(
            "{}: streamed {} bytes as `{}`\n",
            file,
            bytes.len(),
            options.name
        ));
        send(&mut stream, Frame::Data(bytes))?;
        send(&mut stream, Frame::End)?;
        stream
            .flush()
            .map_err(|e| format!("cannot send to the daemon: {e}"))?;
        // Collect pushed predictions until the flush Ack.
        let mut frames = FrameReader::new(&mut stream);
        loop {
            match read_server_frame(&mut frames)? {
                Frame::Welcome {
                    oldest_seq,
                    next_seq,
                    ..
                } => out.push_str(&format!(
                    "welcome: `{}` resume window [{oldest_seq}, {next_seq})\n",
                    options.name
                )),
                Frame::Prediction(update) => {
                    let period = match update.period {
                        Some(seconds) => format!("{seconds:.3} s"),
                        None => "none".into(),
                    };
                    out.push_str(&format!(
                        "prediction @ {:.1} s: period {period} (confidence {:.1} %, seq {})\n",
                        update.time,
                        update.confidence * 100.0,
                        update.seq
                    ));
                }
                Frame::Error {
                    message,
                    retry_after_ms: Some(wait_ms),
                } => {
                    // A retryable refusal (shed submissions, byte budget):
                    // the daemon kept the connection; report and carry on.
                    out.push_str(&format!(
                        "daemon asks to retry in {wait_ms} ms: {message}\n"
                    ));
                }
                Frame::Ack => break,
                other => return Err(format!("unexpected frame from the daemon: {other:?}")),
            }
        }
        out.push_str("acknowledged: all predictions for the stream were delivered\n");
    }
    if options.shutdown {
        send(&mut stream, Frame::Shutdown)?;
        stream
            .flush()
            .map_err(|e| format!("cannot send to the daemon: {e}"))?;
        let mut frames = FrameReader::new(&mut stream);
        loop {
            match read_server_frame(&mut frames)? {
                // A shutdown-only session still gets its hello answered, and
                // a subscribed shutdown can still be drained predictions.
                Frame::Welcome { .. } | Frame::Prediction(_) => continue,
                Frame::Error {
                    message,
                    retry_after_ms: Some(_),
                } => {
                    out.push_str(&format!("daemon warning: {message}\n"));
                }
                Frame::Stats(stats) => {
                    out.push_str(&format!(
                        "daemon drained: submitted {}  ticks {}  coalesced {}  dropped {}  rejected {}  (balanced: {})\n",
                        stats.submitted,
                        stats.ticks,
                        stats.coalesced,
                        stats.dropped,
                        stats.rejected,
                        stats.is_balanced()
                    ));
                    break;
                }
                other => return Err(format!("unexpected frame from the daemon: {other:?}")),
            }
        }
    }
    Ok(out)
}

fn read_server_frame<R: Read>(frames: &mut FrameReader<R>) -> Result<Frame, String> {
    match frames.read_frame() {
        // Errors without a retry hint are terminal: the daemon is closing
        // this connection. Retryable errors pass through to the caller.
        Ok(Some(Frame::Error {
            message,
            retry_after_ms: None,
        })) => Err(format!("daemon error: {message}")),
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err("the daemon closed the connection".into()),
        Err(e) => Err(format!("broken reply from the daemon: {e}")),
    }
}

fn parse_count(args: &[String], i: &mut usize, flag: &str) -> Result<usize, String> {
    let value = next_value(args, i, flag)?;
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {flag}"))
}

fn parse_millis(args: &[String], i: &mut usize, flag: &str) -> Result<u64, String> {
    let value = next_value(args, i, flag)?;
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_options_are_parsed() {
        let options = parse_serve_options(&strings(&[
            "--tcp",
            "127.0.0.1:0",
            "--max-conns",
            "3",
            "--shards",
            "2",
            "--capacity",
            "64",
            "--batch",
            "1",
            "--policy",
            "reject",
            "--threads",
            "2",
            "--freq",
            "1.5",
            "--batch-size",
            "32",
        ]))
        .unwrap();
        assert_eq!(options.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(options.max_conns, 3);
        assert_eq!(options.shards, 2);
        assert_eq!(options.capacity, 64);
        assert_eq!(options.batch, 1);
        assert_eq!(options.policy, BackpressurePolicy::Reject);
        assert_eq!(options.threads, 2);
        assert_eq!(options.freq, 1.5);
        assert_eq!(options.batch_size, 32);
        assert!(server_config(&options).is_ok());
    }

    #[test]
    fn serve_hardening_options_are_parsed() {
        let options = parse_serve_options(&strings(&[
            "--tcp",
            "127.0.0.1:0",
            "--read-timeout",
            "250",
            "--write-timeout",
            "0",
            "--idle-timeout",
            "1500",
            "--push-queue",
            "4",
            "--slow-policy",
            "disconnect",
            "--retry-after",
            "50",
            "--resume-ring",
            "16",
            "--tenant",
            "acme:conns=2,apps=3,rate=1000,burst=4000",
            "--tenant-default",
            "conns=8",
        ]))
        .unwrap();
        assert_eq!(options.read_timeout_ms, 250);
        assert_eq!(options.write_timeout_ms, 0);
        assert_eq!(options.idle_timeout_ms, 1500);
        assert_eq!(options.push_queue, 4);
        assert_eq!(options.slow_policy, SlowSubscriberPolicy::Disconnect);
        assert_eq!(options.retry_after_ms, 50);
        assert_eq!(options.resume_ring, 16);
        let quota = options.tenants.quota_for("acme").unwrap();
        assert_eq!(quota.max_connections, 2);
        assert_eq!(quota.max_apps, 3);
        assert_eq!(quota.bytes_per_sec, 1000.0);
        assert_eq!(quota.burst_bytes, 4000.0);
        // Unknown tenants fall back to the default budget.
        assert_eq!(
            options.tenants.quota_for("other").unwrap().max_connections,
            8
        );

        let config = server_config(&options).unwrap();
        assert_eq!(config.read_timeout, Some(Duration::from_millis(250)));
        assert_eq!(config.write_timeout, None, "0 disables the deadline");
        assert_eq!(config.idle_timeout, Some(Duration::from_millis(1500)));
        assert_eq!(config.cluster.resume_ring, 16);
    }

    #[test]
    fn serve_options_errors() {
        assert!(parse_serve_options(&[]).is_err());
        assert!(parse_serve_options(&strings(&["--unix", "a", "--tcp", "b"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--max-conns", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--shards", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--threads", "many"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--freq", "-2"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--bogus"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--batch-size", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--push-queue", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--slow-policy", "x"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--tenant", "nocolon"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--tenant", ":conns=1"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--tenant", "t:weird=1"])).is_err());
        assert!(
            parse_serve_options(&strings(&["--tcp", "a", "--tenant-default", "rate=-4"])).is_err()
        );
    }

    #[test]
    fn client_options_are_parsed() {
        let options = parse_client_options(&strings(&[
            "--unix",
            "/tmp/ftio.sock",
            "--file",
            "tests/data/ior_small.jsonl",
            "--subscribe",
        ]))
        .unwrap();
        assert_eq!(options.unix.as_deref(), Some("/tmp/ftio.sock"));
        assert_eq!(options.name, "ior_small.jsonl"); // defaults to the file name
        assert!(options.subscribe);
        assert!(!options.shutdown);

        let options =
            parse_client_options(&strings(&["--tcp", "127.0.0.1:7000", "--shutdown"])).unwrap();
        assert!(options.file.is_none());
        assert_eq!(options.name, "ftio-client");
        assert!(options.shutdown);
    }

    #[test]
    fn client_hardening_options_are_parsed() {
        let options = parse_client_options(&strings(&[
            "--tcp",
            "127.0.0.1:7000",
            "--file",
            "t.jsonl",
            "--from-seq",
            "42",
            "--retries",
            "3",
            "--retry-max-ms",
            "500",
            "--retry-seed",
            "7",
            "--inject",
            "seed=1,short=0.5,interrupt=0.1",
        ]))
        .unwrap();
        assert_eq!(options.from_seq, Some(42));
        assert!(options.subscribe, "--from-seq implies --subscribe");
        assert_eq!(options.retries, 3);
        assert_eq!(options.retry_max_ms, 500);
        assert_eq!(options.retry_seed, 7);
        let plan = options.inject.unwrap();
        assert_eq!(plan.seed, 1);
        assert!(!plan.is_noop());
    }

    #[test]
    fn client_options_errors() {
        assert!(parse_client_options(&[]).is_err());
        assert!(parse_client_options(&strings(&["--unix", "a", "--tcp", "b"])).is_err());
        // Neither a file nor a shutdown: the session would do nothing.
        assert!(parse_client_options(&strings(&["--unix", "a"])).is_err());
        assert!(parse_client_options(&strings(&["--unix", "a", "--weird"])).is_err());
        // Malformed fault plans are rejected at parse time.
        assert!(parse_client_options(&strings(&[
            "--unix",
            "a",
            "--shutdown",
            "--inject",
            "short=2.0"
        ]))
        .is_err());
        assert!(parse_client_options(&strings(&[
            "--unix",
            "a",
            "--shutdown",
            "--retry-max-ms",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_jittered() {
        let schedule = backoff_schedule(6, 400, 9);
        assert_eq!(schedule.len(), 6);
        // Same seed, same schedule; different seed, different sleeps.
        assert_eq!(schedule, backoff_schedule(6, 400, 9));
        assert_ne!(schedule, backoff_schedule(6, 400, 10));
        // Every sleep respects the cap, and jitter keeps it above half of
        // the capped exponential base.
        let bases = [25u64, 50, 100, 200, 400, 400];
        for (sleep, base) in schedule.iter().zip(bases) {
            let ms = sleep.as_millis() as u64;
            assert!(ms <= base, "sleep {ms} over base {base}");
            assert!(ms >= base / 2, "sleep {ms} under half of base {base}");
        }
        assert!(backoff_schedule(0, 400, 9).is_empty());
    }

    /// An in-process end-to-end pass: `run_client` (stream + subscribe, then
    /// shutdown) against a `Server` booted with `server_config`, over TCP.
    #[test]
    fn client_round_trips_against_a_served_engine() {
        use ftio_trace::{jsonl, IoRequest};

        let requests: Vec<IoRequest> = (0..12)
            .map(|i| {
                let start = i as f64 * 10.0;
                IoRequest::write(0, start, start + 2.0, 1_000_000_000)
            })
            .collect();
        let file = std::env::temp_dir().join("ftio_serve_cli_test.jsonl");
        std::fs::write(&file, jsonl::encode_requests(&requests)).unwrap();

        let serve_options = ServeCliOptions {
            tcp: Some("127.0.0.1:0".into()),
            shards: 2,
            batch: 1,
            ..Default::default()
        };
        let server = Server::start(
            bind_listener(&serve_options).unwrap(),
            server_config(&serve_options).unwrap(),
        )
        .unwrap();

        let client_options = ClientCliOptions {
            tcp: Some(server.address().to_string()),
            name: "cli-app".into(),
            file: Some(file.to_str().unwrap().to_string()),
            subscribe: true,
            retry_max_ms: 2_000,
            ..Default::default()
        };
        let report = run_client(&client_options).unwrap();
        assert!(
            report.contains("welcome: `cli-app` resume window [0, 0)"),
            "{report}"
        );
        assert!(report.contains("prediction @"), "{report}");
        assert!(report.contains("period 10."), "{report}");
        assert!(report.contains("seq 0"), "{report}");
        assert!(report.contains("acknowledged"), "{report}");

        let stop = ClientCliOptions {
            tcp: Some(server.address().to_string()),
            name: "stopper".into(),
            shutdown: true,
            retry_max_ms: 2_000,
            ..Default::default()
        };
        let report = run_client(&stop).unwrap();
        assert!(report.contains("daemon drained"), "{report}");
        assert!(report.contains("balanced: true"), "{report}");

        let report = server.wait();
        assert_eq!(report.server.accepted, 2);
        assert_eq!(report.server.protocol_errors, 0);
        let _ = std::fs::remove_file(file);
    }

    /// The same round trip with a benign fault plan on the client side:
    /// short reads and interrupts must not corrupt the framed session.
    #[test]
    fn client_survives_benign_fault_injection() {
        use ftio_trace::{jsonl, IoRequest};

        let requests: Vec<IoRequest> = (0..12)
            .map(|i| {
                let start = i as f64 * 10.0;
                IoRequest::write(0, start, start + 2.0, 1_000_000_000)
            })
            .collect();
        let file = std::env::temp_dir().join("ftio_serve_cli_inject_test.jsonl");
        std::fs::write(&file, jsonl::encode_requests(&requests)).unwrap();

        let serve_options = ServeCliOptions {
            tcp: Some("127.0.0.1:0".into()),
            shards: 1,
            batch: 1,
            ..Default::default()
        };
        let server = Server::start(
            bind_listener(&serve_options).unwrap(),
            server_config(&serve_options).unwrap(),
        )
        .unwrap();

        let client_options = ClientCliOptions {
            tcp: Some(server.address().to_string()),
            name: "chaotic".into(),
            file: Some(file.to_str().unwrap().to_string()),
            subscribe: true,
            retry_max_ms: 2_000,
            inject: Some(FaultPlan::parse("seed=3,short=0.7,interrupt=0.3").unwrap()),
            ..Default::default()
        };
        let report = run_client(&client_options).unwrap();
        assert!(report.contains("acknowledged"), "{report}");
        assert!(report.contains("period 10."), "{report}");

        let report = server.finish();
        assert_eq!(report.server.protocol_errors, 0, "{:?}", report.server);
        let _ = std::fs::remove_file(file);
    }
}
