//! The `ftio serve` and `ftio client` subcommands: the socket-facing
//! prediction daemon and its bundled test client.
//!
//! `ftio serve` binds a Unix-domain socket or TCP address and multiplexes any
//! number of trace streams into one shared
//! [`ClusterEngine`](ftio_core::ClusterEngine) (see
//! [`ftio_core::server`]). It runs until a client sends a `Shutdown` frame,
//! then drains the shard queues and prints the final cluster report.
//!
//! `ftio client` is the matching sender: it connects, names its application,
//! optionally subscribes to live predictions, streams a trace file as `Data`
//! frames, waits for the flush `Ack`, and prints every prediction the server
//! pushed. With `--shutdown` it instead (or additionally) asks the daemon to
//! drain and prints the final stats frame — the CI smoke lane is exactly
//! these two commands run against each other.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

use ftio_core::server::{Server, ServerConfig, ServerListener};
use ftio_core::{BackpressurePolicy, ClusterConfig, FtioConfig};
use ftio_trace::source::DEFAULT_BATCH_SIZE;
use ftio_trace::wire::{Frame, FrameReader};
use ftio_trace::AppId;

use crate::next_value;

/// Options of the `ftio serve` subcommand.
#[derive(Clone, Debug)]
pub struct ServeCliOptions {
    /// Unix-domain socket path to listen on.
    pub unix: Option<String>,
    /// TCP address to listen on (`host:port`; port 0 picks one).
    pub tcp: Option<String>,
    /// Maximum concurrently served connections.
    pub max_conns: usize,
    /// Number of predictor shards.
    pub shards: usize,
    /// Bounded queue capacity per shard.
    pub capacity: usize,
    /// Maximum submissions of one application coalesced into a tick.
    pub batch: usize,
    /// Backpressure policy.
    pub policy: BackpressurePolicy,
    /// Engine worker threads (0 = one worker per shard). Connection handler
    /// threads are I/O-bound and do not count against this budget; the
    /// engine workers themselves run transforms inline (no nested pool), so
    /// the daemon's CPU-bound parallelism is exactly this knob.
    pub threads: usize,
    /// Sampling frequency of the analysis.
    pub freq: f64,
    /// Requests per decoded source batch.
    pub batch_size: usize,
}

impl Default for ServeCliOptions {
    fn default() -> Self {
        ServeCliOptions {
            unix: None,
            tcp: None,
            max_conns: 64,
            shards: 4,
            capacity: 256,
            batch: 8,
            policy: BackpressurePolicy::Block,
            threads: crate::default_threads(),
            freq: 2.0,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

/// Usage text of `ftio serve`.
pub const SERVE_USAGE: &str = "usage: ftio serve --unix <path> | --tcp <host:port> [options]\n\
     \n\
     Run the prediction daemon: accept framed or raw trace streams on a\n\
     socket, route them through the sharded cluster engine, push live\n\
     predictions to subscribed clients, and drain cleanly when a client\n\
     sends a Shutdown frame (`ftio client --shutdown`).\n\
     \n\
     Raw mode needs no client at all:  nc -U <path> < trace.jsonl\n\
     (gzipped traces are decompressed transparently).\n\
     \n\
     options:\n\
     \x20 --unix <path>               listen on a Unix-domain socket\n\
     \x20 --tcp <host:port>           listen on a TCP address (port 0 = pick one)\n\
     \x20 --max-conns <n>             concurrent connection limit (default 64)\n\
     \x20 --shards <n>                predictor shards (default 4)\n\
     \x20 --capacity <n>              per-shard queue capacity (default 256)\n\
     \x20 --batch <n>                 max coalesced submissions per tick (default 8)\n\
     \x20 --policy block|drop-oldest|reject   backpressure policy (default block)\n\
     \x20 --threads <n>|auto          engine worker threads, clamped to the shard\n\
     \x20                             count (default: FTIO_THREADS, else one\n\
     \x20                             worker per shard); this is the daemon's\n\
     \x20                             whole CPU budget — workers never nest a pool\n\
     \x20 --freq <hz>                 sampling frequency (default 2)\n\
     \x20 --batch-size <n>            requests per decoded batch (default 1024)";

/// Parses the arguments following `ftio serve`.
pub fn parse_serve_options(args: &[String]) -> Result<ServeCliOptions, String> {
    let mut options = ServeCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--unix" => options.unix = Some(next_value(args, &mut i, "--unix")?),
            "--tcp" => options.tcp = Some(next_value(args, &mut i, "--tcp")?),
            "--max-conns" => options.max_conns = parse_count(args, &mut i, "--max-conns")?,
            "--shards" => options.shards = parse_count(args, &mut i, "--shards")?,
            "--capacity" => options.capacity = parse_count(args, &mut i, "--capacity")?,
            "--batch" => options.batch = parse_count(args, &mut i, "--batch")?,
            "--policy" => {
                let value = next_value(args, &mut i, "--policy")?;
                options.policy = BackpressurePolicy::parse(&value)
                    .ok_or(format!("unknown backpressure policy `{value}`"))?;
            }
            "--threads" => {
                let value = next_value(args, &mut i, "--threads")?;
                options.threads = crate::parse_threads_flag(&value)?;
            }
            "--freq" => {
                let value = next_value(args, &mut i, "--freq")?;
                options.freq = value
                    .parse()
                    .map_err(|_| format!("invalid sampling frequency `{value}`"))?;
                if !(options.freq.is_finite() && options.freq > 0.0) {
                    return Err(format!("invalid sampling frequency `{value}`"));
                }
            }
            "--batch-size" => options.batch_size = parse_count(args, &mut i, "--batch-size")?,
            other => {
                return Err(format!(
                    "unknown serve option `{other}` (see `ftio serve --help`)"
                ))
            }
        }
        i += 1;
    }
    match (&options.unix, &options.tcp) {
        (None, None) => return Err("give --unix <path> or --tcp <host:port>".into()),
        (Some(_), Some(_)) => return Err("--unix and --tcp are mutually exclusive".into()),
        _ => {}
    }
    #[cfg(not(unix))]
    if options.unix.is_some() {
        return Err("--unix is not supported on this platform (use --tcp)".into());
    }
    if options.max_conns == 0 {
        return Err("--max-conns must be at least 1".into());
    }
    if options.shards == 0 || options.capacity == 0 || options.batch == 0 {
        return Err("--shards, --capacity and --batch must be at least 1".into());
    }
    if options.batch_size == 0 {
        return Err("--batch-size must be at least 1".into());
    }
    Ok(options)
}

/// Builds the [`ServerConfig`] the options describe.
pub fn server_config(options: &ServeCliOptions) -> Result<ServerConfig, String> {
    let ftio = FtioConfig {
        sampling_freq: options.freq,
        use_autocorrelation: false,
        ..Default::default()
    };
    ftio.validate()?;
    Ok(ServerConfig {
        max_connections: options.max_conns,
        batch_size: options.batch_size,
        cluster: ClusterConfig {
            shards: options.shards,
            queue_capacity: options.capacity,
            max_batch: options.batch,
            threads: options.threads,
            policy: options.policy,
            ftio,
            ..ClusterConfig::default()
        },
    })
}

/// Boots the daemon, serves until a client shuts it down, and renders the
/// drained report. Prints a `listening on ...` line (and flushes it) as soon
/// as the socket is bound, so a supervising script knows when to connect.
pub fn run_serve(options: &ServeCliOptions) -> Result<String, String> {
    let config = server_config(options)?;
    let listener = bind_listener(options)?;
    let server = Server::start(listener, config).map_err(|e| format!("cannot serve: {e}"))?;
    println!("ftio serve: listening on {}", server.address());
    let _ = std::io::stdout().flush();
    let report = server.wait();
    let stats = &report.cluster;
    let mut out = String::new();
    out.push_str(&format!(
        "served: {} connections ({} raw), {} rejected at the limit, {} protocol errors\n",
        report.server.accepted,
        report.server.raw_connections,
        report.server.rejected_connections,
        report.server.protocol_errors
    ));
    out.push_str(&format!(
        "engine: submitted {}  ticks {}  coalesced {}  dropped {}  rejected {}  panicked {}\n",
        stats.submitted,
        stats.ticks,
        stats.coalesced,
        stats.dropped,
        stats.rejected,
        stats.panicked
    ));
    let mut apps: Vec<_> = report.predictions.iter().collect();
    apps.sort_by_key(|(app, _)| **app);
    for (app, history) in apps {
        // Render the hello name when the client announced one; the bare
        // AppId only appears for streams that never said hello.
        let name = report
            .names
            .get(app)
            .cloned()
            .unwrap_or_else(|| app.to_string());
        match history.last().and_then(|p| p.period()) {
            Some(period) => out.push_str(&format!(
                "{name}: {} predictions, period {period:.2} s (confidence {:.1} %)\n",
                history.len(),
                history
                    .last()
                    .map(|p| p.confidence() * 100.0)
                    .unwrap_or(0.0)
            )),
            None => out.push_str(&format!(
                "{name}: {} predictions, no dominant frequency\n",
                history.len()
            )),
        }
    }
    Ok(out)
}

fn bind_listener(options: &ServeCliOptions) -> Result<ServerListener, String> {
    #[cfg(unix)]
    if let Some(path) = &options.unix {
        return ServerListener::unix(path).map_err(|e| format!("cannot bind `{path}`: {e}"));
    }
    let addr = options
        .tcp
        .as_ref()
        .expect("validated by parse_serve_options");
    ServerListener::tcp(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))
}

/// Options of the `ftio client` subcommand.
#[derive(Clone, Debug, Default)]
pub struct ClientCliOptions {
    /// Unix-domain socket path of the daemon.
    pub unix: Option<String>,
    /// TCP address of the daemon.
    pub tcp: Option<String>,
    /// Application name sent in the `Hello` frame.
    pub name: String,
    /// Trace file streamed as `Data` frames (optional with `--shutdown`).
    pub file: Option<String>,
    /// Whether to subscribe to live predictions for this application.
    pub subscribe: bool,
    /// Whether to send a `Shutdown` frame after the stream (or immediately
    /// when no file was given) and print the daemon's final stats.
    pub shutdown: bool,
}

/// Usage text of `ftio client`.
pub const CLIENT_USAGE: &str = "usage: ftio client --unix <path> | --tcp <host:port> [options]\n\
     \n\
     Stream a trace file into a running `ftio serve` daemon over the framed\n\
     wire protocol and print the predictions it answers with.\n\
     \n\
     options:\n\
     \x20 --unix <path>               connect to a Unix-domain socket\n\
     \x20 --tcp <host:port>           connect to a TCP address\n\
     \x20 --name <app>                application name in the hello frame (default: the file name)\n\
     \x20 --file <trace>              trace file to stream (jsonl/msgpack/..., gzip ok)\n\
     \x20 --subscribe                 receive live predictions for this application\n\
     \x20 --shutdown                  ask the daemon to drain and print its final stats";

/// Parses the arguments following `ftio client`.
pub fn parse_client_options(args: &[String]) -> Result<ClientCliOptions, String> {
    let mut options = ClientCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--unix" => options.unix = Some(next_value(args, &mut i, "--unix")?),
            "--tcp" => options.tcp = Some(next_value(args, &mut i, "--tcp")?),
            "--name" => options.name = next_value(args, &mut i, "--name")?,
            "--file" => options.file = Some(next_value(args, &mut i, "--file")?),
            "--subscribe" => options.subscribe = true,
            "--shutdown" => options.shutdown = true,
            other => {
                return Err(format!(
                    "unknown client option `{other}` (see `ftio client --help`)"
                ))
            }
        }
        i += 1;
    }
    match (&options.unix, &options.tcp) {
        (None, None) => return Err("give --unix <path> or --tcp <host:port>".into()),
        (Some(_), Some(_)) => return Err("--unix and --tcp are mutually exclusive".into()),
        _ => {}
    }
    if options.file.is_none() && !options.shutdown {
        return Err("give --file <trace> to stream, or --shutdown to stop the daemon".into());
    }
    if options.name.is_empty() {
        if let Some(file) = &options.file {
            options.name = std::path::Path::new(file)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| file.clone());
        } else {
            options.name = "ftio-client".into();
        }
    }
    Ok(options)
}

enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ClientStream {
    fn connect(options: &ClientCliOptions) -> Result<ClientStream, String> {
        #[cfg(unix)]
        if let Some(path) = &options.unix {
            return UnixStream::connect(path)
                .map(ClientStream::Unix)
                .map_err(|e| format!("cannot connect to `{path}`: {e}"));
        }
        #[cfg(not(unix))]
        if options.unix.is_some() {
            return Err("--unix is not supported on this platform (use --tcp)".into());
        }
        let addr = options.tcp.as_ref().expect("validated by parse");
        TcpStream::connect(addr)
            .map(ClientStream::Tcp)
            .map_err(|e| format!("cannot connect to `{addr}`: {e}"))
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// Runs one framed client session and renders what the daemon answered.
pub fn run_client(options: &ClientCliOptions) -> Result<String, String> {
    let mut stream = ClientStream::connect(options)?;
    let send = |stream: &mut ClientStream, frame: Frame| -> Result<(), String> {
        frame
            .write_to(stream)
            .map_err(|e| format!("cannot send to the daemon: {e}"))
    };
    send(
        &mut stream,
        Frame::Hello {
            name: options.name.clone(),
        },
    )?;
    if options.subscribe {
        send(
            &mut stream,
            Frame::Subscribe {
                app: Some(AppId::from_name(&options.name)),
            },
        )?;
    }
    let mut out = String::new();
    if let Some(file) = &options.file {
        let bytes = std::fs::read(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
        out.push_str(&format!(
            "{}: streamed {} bytes as `{}`\n",
            file,
            bytes.len(),
            options.name
        ));
        send(&mut stream, Frame::Data(bytes))?;
        send(&mut stream, Frame::End)?;
        stream
            .flush()
            .map_err(|e| format!("cannot send to the daemon: {e}"))?;
        // Collect pushed predictions until the flush Ack.
        let mut frames = FrameReader::new(&mut stream);
        loop {
            match read_server_frame(&mut frames)? {
                Frame::Prediction(update) => {
                    let period = match update.period {
                        Some(seconds) => format!("{seconds:.3} s"),
                        None => "none".into(),
                    };
                    out.push_str(&format!(
                        "prediction @ {:.1} s: period {period} (confidence {:.1} %)\n",
                        update.time,
                        update.confidence * 100.0
                    ));
                }
                Frame::Ack => break,
                other => return Err(format!("unexpected frame from the daemon: {other:?}")),
            }
        }
        out.push_str("acknowledged: all predictions for the stream were delivered\n");
    }
    if options.shutdown {
        send(&mut stream, Frame::Shutdown)?;
        stream
            .flush()
            .map_err(|e| format!("cannot send to the daemon: {e}"))?;
        let mut frames = FrameReader::new(&mut stream);
        loop {
            match read_server_frame(&mut frames)? {
                // A subscribed shutdown can still be drained predictions.
                Frame::Prediction(_) => continue,
                Frame::Stats(stats) => {
                    out.push_str(&format!(
                        "daemon drained: submitted {}  ticks {}  coalesced {}  dropped {}  rejected {}  (balanced: {})\n",
                        stats.submitted,
                        stats.ticks,
                        stats.coalesced,
                        stats.dropped,
                        stats.rejected,
                        stats.is_balanced()
                    ));
                    break;
                }
                other => return Err(format!("unexpected frame from the daemon: {other:?}")),
            }
        }
    }
    Ok(out)
}

fn read_server_frame<R: Read>(frames: &mut FrameReader<R>) -> Result<Frame, String> {
    match frames.read_frame() {
        Ok(Some(Frame::Error { message })) => Err(format!("daemon error: {message}")),
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err("the daemon closed the connection".into()),
        Err(e) => Err(format!("broken reply from the daemon: {e}")),
    }
}

fn parse_count(args: &[String], i: &mut usize, flag: &str) -> Result<usize, String> {
    let value = next_value(args, i, flag)?;
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_options_are_parsed() {
        let options = parse_serve_options(&strings(&[
            "--tcp",
            "127.0.0.1:0",
            "--max-conns",
            "3",
            "--shards",
            "2",
            "--capacity",
            "64",
            "--batch",
            "1",
            "--policy",
            "reject",
            "--threads",
            "2",
            "--freq",
            "1.5",
            "--batch-size",
            "32",
        ]))
        .unwrap();
        assert_eq!(options.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(options.max_conns, 3);
        assert_eq!(options.shards, 2);
        assert_eq!(options.capacity, 64);
        assert_eq!(options.batch, 1);
        assert_eq!(options.policy, BackpressurePolicy::Reject);
        assert_eq!(options.threads, 2);
        assert_eq!(options.freq, 1.5);
        assert_eq!(options.batch_size, 32);
        assert!(server_config(&options).is_ok());
    }

    #[test]
    fn serve_options_errors() {
        assert!(parse_serve_options(&[]).is_err());
        assert!(parse_serve_options(&strings(&["--unix", "a", "--tcp", "b"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--max-conns", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--shards", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--threads", "many"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--freq", "-2"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--bogus"])).is_err());
        assert!(parse_serve_options(&strings(&["--tcp", "a", "--batch-size", "0"])).is_err());
    }

    #[test]
    fn client_options_are_parsed() {
        let options = parse_client_options(&strings(&[
            "--unix",
            "/tmp/ftio.sock",
            "--file",
            "tests/data/ior_small.jsonl",
            "--subscribe",
        ]))
        .unwrap();
        assert_eq!(options.unix.as_deref(), Some("/tmp/ftio.sock"));
        assert_eq!(options.name, "ior_small.jsonl"); // defaults to the file name
        assert!(options.subscribe);
        assert!(!options.shutdown);

        let options =
            parse_client_options(&strings(&["--tcp", "127.0.0.1:7000", "--shutdown"])).unwrap();
        assert!(options.file.is_none());
        assert_eq!(options.name, "ftio-client");
        assert!(options.shutdown);
    }

    #[test]
    fn client_options_errors() {
        assert!(parse_client_options(&[]).is_err());
        assert!(parse_client_options(&strings(&["--unix", "a", "--tcp", "b"])).is_err());
        // Neither a file nor a shutdown: the session would do nothing.
        assert!(parse_client_options(&strings(&["--unix", "a"])).is_err());
        assert!(parse_client_options(&strings(&["--unix", "a", "--weird"])).is_err());
    }

    /// An in-process end-to-end pass: `run_client` (stream + subscribe, then
    /// shutdown) against a `Server` booted with `server_config`, over TCP.
    #[test]
    fn client_round_trips_against_a_served_engine() {
        use ftio_trace::{jsonl, IoRequest};

        let requests: Vec<IoRequest> = (0..12)
            .map(|i| {
                let start = i as f64 * 10.0;
                IoRequest::write(0, start, start + 2.0, 1_000_000_000)
            })
            .collect();
        let file = std::env::temp_dir().join("ftio_serve_cli_test.jsonl");
        std::fs::write(&file, jsonl::encode_requests(&requests)).unwrap();

        let serve_options = ServeCliOptions {
            tcp: Some("127.0.0.1:0".into()),
            shards: 2,
            batch: 1,
            ..Default::default()
        };
        let server = Server::start(
            bind_listener(&serve_options).unwrap(),
            server_config(&serve_options).unwrap(),
        )
        .unwrap();

        let client_options = ClientCliOptions {
            tcp: Some(server.address().to_string()),
            name: "cli-app".into(),
            file: Some(file.to_str().unwrap().to_string()),
            subscribe: true,
            ..Default::default()
        };
        let report = run_client(&client_options).unwrap();
        assert!(report.contains("prediction @"), "{report}");
        assert!(report.contains("period 10."), "{report}");
        assert!(report.contains("acknowledged"), "{report}");

        let stop = ClientCliOptions {
            tcp: Some(server.address().to_string()),
            name: "stopper".into(),
            shutdown: true,
            ..Default::default()
        };
        let report = run_client(&stop).unwrap();
        assert!(report.contains("daemon drained"), "{report}");
        assert!(report.contains("balanced: true"), "{report}");

        let report = server.wait();
        assert_eq!(report.server.accepted, 2);
        assert_eq!(report.server.protocol_errors, 0);
        let _ = std::fs::remove_file(file);
    }
}
