//! `predictor` — online period prediction, replaying a trace file as if the
//! application were still running.
//!
//! Usage:
//!
//! ```text
//! predictor <trace-file> [options] [--step <seconds>]
//! predictor --demo [options]
//! ```
//!
//! The tool ingests the trace incrementally (one analysis step every `--step`
//! seconds of trace time, default: one step per I/O burst for the demo, 60 s
//! otherwise), runs an FTIO prediction at every step — exactly what the online
//! mode does at every flush — and prints the evolving period, confidence, and
//! adaptive analysis window, followed by the merged frequency intervals.

use std::process::ExitCode;

use ftio_cli::{
    demo_flush_points, load_trace, parse_common_options, print_usage_and_exit, LoadedInput,
};
use ftio_core::{OnlinePredictor, WindowStrategy};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage_and_exit("predictor");
    }

    // Extract the predictor-specific `--step` option before the common parsing.
    let mut step: Option<f64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--step") {
        if pos + 1 >= args.len() {
            eprintln!("error: missing value for --step");
            return ExitCode::FAILURE;
        }
        step = match args[pos + 1].parse() {
            Ok(v) => Some(v),
            Err(_) => {
                eprintln!("error: invalid value for --step");
                return ExitCode::FAILURE;
            }
        };
        args.drain(pos..=pos + 1);
    }

    let options = match parse_common_options(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match load_trace(&options) {
        Ok(LoadedInput::Trace(trace)) => trace,
        Ok(LoadedInput::Heatmap(_)) => {
            eprintln!("error: the online predictor needs a request-level trace, not a heatmap");
            return ExitCode::FAILURE;
        }
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    // Prediction points: demo flush points, or a fixed cadence over the trace.
    let prediction_points: Vec<f64> = if options.demo && step.is_none() {
        demo_flush_points()
    } else {
        let step = step.unwrap_or(60.0);
        let mut points = Vec::new();
        let mut t = trace.start_time() + step;
        while t < trace.end_time() + step {
            points.push(t);
            t += step;
        }
        points
    };

    let mut predictor =
        OnlinePredictor::new(options.config, WindowStrategy::Adaptive { multiple: 3 });
    let mut requests: Vec<ftio_trace::IoRequest> = trace.requests().to_vec();
    requests.sort_by(|a, b| a.end.partial_cmp(&b.end).expect("NaN request time"));
    let mut next_request = 0;

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "step", "time (s)", "period (s)", "conf (%)", "window (s)", "requests"
    );
    for (i, &now) in prediction_points.iter().enumerate() {
        // Feed everything that has completed by `now` — the data the
        // application would have flushed so far.
        let mut batch = Vec::new();
        while next_request < requests.len() && requests[next_request].end <= now {
            batch.push(requests[next_request]);
            next_request += 1;
        }
        predictor.ingest(batch);
        let prediction = predictor.predict(now);
        println!(
            "{:>6} {:>12.1} {:>12} {:>12.1} {:>14.1} {:>12}",
            i + 1,
            now,
            prediction
                .period()
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".into()),
            prediction.confidence() * 100.0,
            prediction.window_end - prediction.window_start,
            predictor.collected_requests()
        );
    }

    println!("\nmerged frequency intervals (probability = share of predictions):");
    let intervals = predictor.merged_intervals();
    if intervals.is_empty() {
        println!("  (none — no dominant frequency was found often enough)");
    }
    for interval in intervals {
        let (lo, hi) = interval.period_bounds();
        println!(
            "  {:.4}-{:.4} Hz  (period {:.2}-{:.2} s)  p = {:.2}",
            interval.min_freq, interval.max_freq, lo, hi, interval.probability
        );
    }
    ExitCode::SUCCESS
}
