//! `ftio` — offline detection of periodic I/O from a trace file.
//!
//! Usage:
//!
//! ```text
//! ftio [detect] <trace-file> [options]
//! ftio --demo [options]
//! ftio replay <trace-file> [replay options]
//! ftio cluster [cluster options]
//! ftio eval <scenario>|--all [eval options]
//! ftio serve --unix <path>|--tcp <host:port> [serve options]
//! ftio client --unix <path>|--tcp <host:port> [client options]
//! ftio watch <trace-file> [watch options]
//!
//! options:
//!   --format auto|jsonl|msgpack|tmio-json|tmio-msgpack|darshan-parser|heatmap|recorder
//!            input format (default: auto — sniff content, then extension)
//!   --freq <hz>                               sampling frequency (default 10)
//!   --tolerance <0..1>                        candidate tolerance (default 0.8)
//!   --no-autocorrelation                      skip the ACF refinement
//!   --window <t0> <t1>                        restrict the analysis window (seconds)
//!   --demo                                    analyse a generated demo trace instead of a file
//! ```
//!
//! The tool mirrors the reference implementation's offline mode: every
//! supported trace format (this crate's JSON Lines / MessagePack, TMIO-native
//! JSON/MessagePack profiles, `darshan-parser` text output including DXT,
//! Recorder text, Darshan-style heatmaps) is ingested through one streaming
//! `TraceSource` pipeline with content sniffing, and the FTIO detection
//! report is printed. The `replay` subcommand streams a trace file through
//! the sharded cluster engine instead; `cluster` drives a synthetic
//! multi-application fleet through it (`--help` on either lists options).

use std::process::ExitCode;

use ftio_cli::cluster::{parse_cluster_options, run_cluster, CLUSTER_USAGE};
use ftio_cli::eval::{parse_eval_options, run_eval, EVAL_USAGE};
use ftio_cli::replay::{parse_replay_options, run_replay, REPLAY_USAGE};
use ftio_cli::serve::{
    parse_client_options, parse_serve_options, run_client, run_serve, CLIENT_USAGE, SERVE_USAGE,
};
use ftio_cli::watch::{parse_watch_options, run_watch, WATCH_USAGE};
use ftio_cli::{load_trace, parse_common_options, print_usage_and_exit};
use ftio_core::{detect_heatmap, detect_signal, report, sample_trace, sample_trace_window};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("cluster") => return run_cluster_command(&args[1..]),
        Some("replay") => return run_replay_command(&args[1..]),
        Some("eval") => return run_eval_command(&args[1..]),
        Some("serve") => return run_serve_command(&args[1..]),
        Some("client") => return run_client_command(&args[1..]),
        Some("watch") => return run_watch_command(&args[1..]),
        // `ftio detect <file>` is the explicit spelling of the bare form.
        Some("detect") => {
            args.remove(0);
        }
        _ => {}
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage_and_exit("ftio");
    }
    let options = match parse_common_options(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(threads) = options.threads {
        // Size the process-wide pool before the first transform builds it;
        // large-N FFTs then fan out across exactly this many workers.
        ftio_core::pool::configure_global(threads);
    }

    let input = match load_trace(&options) {
        Ok(input) => input,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let result = match &input {
        ftio_cli::LoadedInput::Heatmap(heatmap) => detect_heatmap(heatmap, &options.config),
        ftio_cli::LoadedInput::Trace(trace) => {
            println!(
                "trace: {} requests, {} ranks, {:.1} s, {:.2} GB",
                trace.len(),
                trace.active_ranks().len(),
                trace.duration(),
                trace.total_volume() as f64 / 1e9
            );
            let signal = match options.window {
                Some((t0, t1)) => sample_trace_window(trace, t0, t1, options.config.sampling_freq),
                None => sample_trace(trace, options.config.sampling_freq),
            };
            detect_signal(&signal, &options.config)
        }
    };

    println!("{}", report::render(&result));
    match result.period() {
        Some(period) => {
            println!(
                "==> period: {period:.2} s  (confidence {:.1} %, refined {:.1} %)",
                result.confidence() * 100.0,
                result.refined_confidence() * 100.0
            );
            ExitCode::SUCCESS
        }
        None => {
            println!("==> no dominant frequency found (signal not periodic)");
            ExitCode::SUCCESS
        }
    }
}

/// `ftio replay ...`: stream a trace file through the sharded cluster engine
/// and print the replay/detection report.
fn run_replay_command(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{REPLAY_USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_replay_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run_replay(&options) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `ftio eval ...`: run the adversarial scenario harness and print the
/// tracking-latency / frequency-error report against ground truth.
fn run_eval_command(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{EVAL_USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_eval_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run_eval(&options) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `ftio serve ...`: run the socket-facing prediction daemon until a client
/// sends a Shutdown frame, then print the drained report.
fn run_serve_command(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{SERVE_USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_serve_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run_serve(&options) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `ftio client ...`: stream a trace file into a running daemon over the
/// framed wire protocol and print what it answers.
fn run_client_command(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{CLIENT_USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_client_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run_client(&options) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `ftio watch ...`: tail a growing trace file and print live predictions.
fn run_watch_command(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{WATCH_USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_watch_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run_watch(&options) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `ftio cluster ...`: run the multi-application fleet through the sharded
/// cluster engine and print the accuracy/throughput report.
fn run_cluster_command(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{CLUSTER_USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_cluster_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run_cluster(&options) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
