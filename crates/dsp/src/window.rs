//! Window (taper) functions.
//!
//! FTIO's default analysis uses a rectangular window (it transforms the raw
//! bandwidth samples), but windowing is the standard countermeasure against
//! spectral leakage when the observation interval does not contain an integer
//! number of periods, so the common tapers are provided for the ablation
//! benchmarks and for downstream users of the DSP crate.

/// Supported window shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    /// No taper (all ones).
    Rectangular,
    /// Hann window `0.5 - 0.5 cos(2πn/(N-1))`.
    Hann,
    /// Hamming window `0.54 - 0.46 cos(2πn/(N-1))`.
    Hamming,
    /// Blackman window.
    Blackman,
    /// Triangular (Bartlett) window.
    Bartlett,
}

impl WindowKind {
    /// Generates the window coefficients for a window of length `n`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / m;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (2.0 * std::f64::consts::PI * x).cos()
                            + 0.08 * (4.0 * std::f64::consts::PI * x).cos()
                    }
                    WindowKind::Bartlett => 1.0 - (2.0 * x - 1.0).abs(),
                }
            })
            .collect()
    }

    /// Applies the window to `signal`, returning the tapered copy.
    pub fn apply(self, signal: &[f64]) -> Vec<f64> {
        let coeffs = self.coefficients(signal.len());
        signal.iter().zip(coeffs).map(|(x, w)| x * w).collect()
    }

    /// Coherent gain of the window (mean of its coefficients), used to rescale
    /// amplitudes measured through a taper.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let coeffs = self.coefficients(n);
        if coeffs.is_empty() {
            return 0.0;
        }
        coeffs.iter().sum::<f64>() / coeffs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = WindowKind::Rectangular.coefficients(16);
        assert!(w.iter().all(|&x| x == 1.0));
        assert_eq!(WindowKind::Rectangular.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_starts_and_ends_at_zero() {
        let w = WindowKind::Hann.coefficients(64);
        assert!(w[0].abs() < 1e-12);
        assert!(w[63].abs() < 1e-12);
        assert!((w[31] - 1.0).abs() < 0.01 || (w[32] - 1.0).abs() < 0.01);
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Bartlett,
        ] {
            let w = kind.coefficients(33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{kind:?} not symmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn coefficients_are_in_unit_range() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Bartlett,
        ] {
            for &x in &kind.coefficients(100) {
                assert!((-1e-12..=1.0 + 1e-12).contains(&x), "{kind:?}: {x}");
            }
        }
    }

    #[test]
    fn apply_scales_the_signal() {
        let signal = vec![2.0; 8];
        let tapered = WindowKind::Hann.apply(&signal);
        assert_eq!(tapered.len(), 8);
        assert!(tapered[0].abs() < 1e-12);
        assert!(tapered[4] > 1.5);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(WindowKind::Hann.coefficients(0).is_empty());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
        assert_eq!(WindowKind::Blackman.coherent_gain(0), 0.0);
    }

    #[test]
    fn hamming_coherent_gain_near_054() {
        let g = WindowKind::Hamming.coherent_gain(1000);
        assert!((g - 0.54).abs() < 0.01);
    }
}
