//! Small statistics toolbox used across FTIO-rs.
//!
//! Everything operates on `&[f64]` and is written so empty inputs return
//! well-defined values (usually `0.0` or `NaN`-free defaults) rather than
//! panicking, because the analysis pipeline frequently deals with empty
//! candidate sets (e.g. no outliers found).

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Weighted arithmetic mean. Returns `0.0` if the weights sum to zero.
///
/// # Panics
///
/// Panics if `data` and `weights` have different lengths.
pub fn weighted_mean(data: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        data.len(),
        weights.len(),
        "weighted_mean: data and weights must have the same length"
    );
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return 0.0;
    }
    data.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / wsum
}

/// Running first and second moments, accumulated in a single pass with
/// Welford's algorithm (numerically stable: no catastrophic cancellation
/// between a large mean and a small spread).
///
/// This is the fused kernel behind [`variance`], [`std_dev`],
/// [`mean_and_std`] and the Z-score machinery in [`crate::zscore`]: the hot
/// outlier-detection path used to walk the data once for the mean, once more
/// (inside the variance) for a second mean, and again for the squared
/// deviations — `Moments` replaces all of that with one pass and no
/// intermediate allocations.
#[derive(Clone, Copy, Debug, Default)]
pub struct Moments {
    /// Number of accumulated samples.
    pub count: usize,
    /// Running arithmetic mean.
    pub mean: f64,
    /// Sum of squared deviations from the running mean (`M2` in Welford's
    /// recurrence); divide by `count` for the population variance.
    pub m2: f64,
}

impl Moments {
    /// Accumulates the moments of `data` in one pass.
    pub fn of(data: &[f64]) -> Self {
        let mut moments = Moments::default();
        for &x in data {
            moments.push(x);
        }
        moments
    }

    /// Accumulates the moments of an iterator (used to fold `|x|` magnitudes
    /// without materialising them).
    pub fn of_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut moments = Moments::default();
        for x in iter {
            moments.push(x);
        }
        moments
    }

    /// Folds one sample into the running moments.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Population variance (divides by `N`); `0.0` for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `N - 1`); `0.0` for fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Population variance (divides by `N`). Returns `0.0` for fewer than two
/// samples. Single pass ([`Moments`]).
pub fn variance(data: &[f64]) -> f64 {
    Moments::of(data).variance()
}

/// Sample variance (divides by `N - 1`). Returns `0.0` for fewer than two
/// samples. Single pass ([`Moments`]).
pub fn sample_variance(data: &[f64]) -> f64 {
    Moments::of(data).sample_variance()
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Sample standard deviation.
pub fn sample_std_dev(data: &[f64]) -> f64 {
    sample_variance(data).sqrt()
}

/// Mean and population standard deviation in one fused pass. An empty slice
/// yields `(0.0, 0.0)` (the fold's starting values).
pub fn mean_and_std(data: &[f64]) -> (f64, f64) {
    let moments = Moments::of(data);
    (moments.mean, moments.std_dev())
}

/// Coefficient of variation `σ/µ` (population σ). Returns `0.0` when the mean
/// is zero. Single pass ([`Moments`]).
pub fn coefficient_of_variation(data: &[f64]) -> f64 {
    let (m, sd) = mean_and_std(data);
    if m == 0.0 {
        return 0.0;
    }
    sd / m.abs()
}

/// Geometric mean of strictly positive values.
///
/// Values `<= 0` are ignored; returns `0.0` if no positive values remain. The
/// Set-10 evaluation (paper §IV) aggregates stretch and I/O slowdown with the
/// geometric mean.
pub fn geometric_mean(data: &[f64]) -> f64 {
    let logs: Vec<f64> = data.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Median (linear interpolation is not needed: even lengths average the two middle values).
pub fn median(data: &[f64]) -> f64 {
    percentile(data, 50.0)
}

/// Percentile in `[0, 100]` using linear interpolation between closest ranks.
///
/// Returns `0.0` for an empty slice.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in data"));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum value; `0.0` for an empty slice.
pub fn min(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value; `0.0` for an empty slice.
pub fn max(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Five-number summary plus mean, matching what the paper's box plots show.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
    /// Lower whisker at `Q1 - 1.5*IQR`, clamped to the data range.
    pub whisker_lo: f64,
    /// Upper whisker at `Q3 + 1.5*IQR`, clamped to the data range.
    pub whisker_hi: f64,
    /// Number of observations outside the whiskers.
    pub outliers: usize,
}

impl BoxStats {
    /// Computes the summary for `data`. The whiskers use the conventional
    /// `1.5 * IQR` rule used by the paper's box plots (Fig. 8 and 17).
    pub fn from(data: &[f64]) -> Self {
        if data.is_empty() {
            return BoxStats::default();
        }
        let q1 = percentile(data, 25.0);
        let q3 = percentile(data, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let dmin = min(data);
        let dmax = max(data);
        let whisker_lo = data
            .iter()
            .copied()
            .filter(|&x| x >= lo_fence)
            .fold(f64::INFINITY, f64::min);
        let whisker_hi = data
            .iter()
            .copied()
            .filter(|&x| x <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max);
        let outliers = data
            .iter()
            .filter(|&&x| x < lo_fence || x > hi_fence)
            .count();
        BoxStats {
            min: dmin,
            q1,
            median: percentile(data, 50.0),
            q3,
            max: dmax,
            mean: mean(data),
            count: data.len(),
            whisker_lo,
            whisker_hi,
            outliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_sequence() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn weighted_mean_matches_hand_computation() {
        let v = weighted_mean(&[1.0, 3.0], &[1.0, 3.0]);
        assert!((v - 2.5).abs() < 1e-12);
        assert_eq!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn weighted_mean_length_mismatch_panics() {
        weighted_mean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn variance_and_std_dev() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&data) - 4.0).abs() < 1e-12);
        assert!((std_dev(&data) - 2.0).abs() < 1e-12);
        assert!((sample_variance(&data) - 4.571428571428571).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn fused_moments_match_the_two_pass_definitions() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let moments = Moments::of(&data);
        assert_eq!(moments.count, 8);
        let two_pass_mean = data.iter().sum::<f64>() / data.len() as f64;
        let two_pass_var = data
            .iter()
            .map(|x| (x - two_pass_mean) * (x - two_pass_mean))
            .sum::<f64>()
            / data.len() as f64;
        assert!((moments.mean - two_pass_mean).abs() < 1e-12);
        assert!((moments.variance() - two_pass_var).abs() < 1e-12);
        let (m, sd) = mean_and_std(&data);
        assert!((m - two_pass_mean).abs() < 1e-12);
        assert!((sd - two_pass_var.sqrt()).abs() < 1e-12);
        // Welford stays stable when a large offset dwarfs the spread.
        let offset: Vec<f64> = data.iter().map(|x| x + 1.0e9).collect();
        assert!((variance(&offset) - two_pass_var).abs() < 1e-6);
        // Degenerate sizes keep their documented defaults.
        assert_eq!(mean_and_std(&[]), (0.0, 0.0));
        assert_eq!(mean_and_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn coefficient_of_variation_basic() {
        let data = [10.0, 10.0, 10.0];
        assert_eq!(coefficient_of_variation(&data), 0.0);
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((coefficient_of_variation(&data) - 2.0 / 5.0).abs() < 1e-12);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn geometric_mean_ignores_non_positive() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0, 0.0, -3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[-1.0]), 0.0);
    }

    #[test]
    fn median_and_percentiles() {
        let data = [7.0, 1.0, 3.0, 5.0];
        assert!((median(&data) - 4.0).abs() < 1e-12);
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 7.0);
        let odd = [3.0, 1.0, 2.0];
        assert_eq!(median(&odd), 2.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let data = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&data, -5.0), 1.0);
        assert_eq!(percentile(&data, 150.0), 3.0);
    }

    #[test]
    fn min_max_handle_empty() {
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(min(&[3.0, -1.0, 2.0]), -1.0);
        assert_eq!(max(&[3.0, -1.0, 2.0]), 3.0);
    }

    #[test]
    fn box_stats_quartiles_and_whiskers() {
        let data: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let b = BoxStats::from(&data);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 9.0);
        assert_eq!(b.count, 9);
        assert_eq!(b.outliers, 0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 9.0);
    }

    #[test]
    fn box_stats_flags_outliers() {
        let mut data: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        data.push(1000.0);
        let b = BoxStats::from(&data);
        assert_eq!(b.outliers, 1);
        assert!(b.whisker_hi <= 20.0);
        assert_eq!(b.max, 1000.0);
    }

    #[test]
    fn box_stats_empty_is_default() {
        assert_eq!(BoxStats::from(&[]), BoxStats::default());
    }
}
