//! Local outlier factor (LOF) for one-dimensional data.
//!
//! LOF compares the local density around a point with the local densities
//! around its neighbours; scores well above 1 indicate that the point sits in
//! a sparser region than its neighbours and is therefore an outlier. The FTIO
//! paper lists LOF among the alternative outlier-detection strategies that can
//! replace or complement the Z-score on the power spectrum.

/// Result of a LOF computation.
#[derive(Clone, Debug)]
pub struct LofResult {
    /// LOF score per input point (values near 1 are inliers).
    pub scores: Vec<f64>,
    /// The `k` used for the k-nearest-neighbour queries.
    pub k: usize,
}

impl LofResult {
    /// Indices whose LOF score is at least `threshold` (1.5 is a common choice).
    pub fn outliers(&self, threshold: f64) -> Vec<usize> {
        self.scores
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| if s >= threshold { Some(i) } else { None })
            .collect()
    }
}

/// Computes the local outlier factor of every point with `k` neighbours.
///
/// `k` is clamped to `points.len() - 1`. For fewer than three points every
/// score is 1 (no meaningful density estimate is possible).
pub fn local_outlier_factor(points: &[f64], k: usize) -> LofResult {
    let n = points.len();
    if n < 3 || k == 0 {
        return LofResult {
            scores: vec![1.0; n],
            k,
        };
    }
    let k = k.min(n - 1);

    // k-nearest neighbours per point (1-D: sort and scan around each rank).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| points[a].partial_cmp(&points[b]).expect("NaN in LOF input"));
    let rank_of: Vec<usize> = {
        let mut r = vec![0; n];
        for (rank, &idx) in order.iter().enumerate() {
            r[idx] = rank;
        }
        r
    };

    let knn = |i: usize| -> Vec<(usize, f64)> {
        // Merge outward from the point's rank position to collect the k closest.
        let rank = rank_of[i];
        let mut lo = rank;
        let mut hi = rank;
        let mut result: Vec<(usize, f64)> = Vec::with_capacity(k);
        while result.len() < k {
            let left = if lo > 0 {
                Some((order[lo - 1], (points[order[lo - 1]] - points[i]).abs()))
            } else {
                None
            };
            let right = if hi + 1 < n {
                Some((order[hi + 1], (points[order[hi + 1]] - points[i]).abs()))
            } else {
                None
            };
            match (left, right) {
                (Some(l), Some(r)) => {
                    if l.1 <= r.1 {
                        result.push(l);
                        lo -= 1;
                    } else {
                        result.push(r);
                        hi += 1;
                    }
                }
                (Some(l), None) => {
                    result.push(l);
                    lo -= 1;
                }
                (None, Some(r)) => {
                    result.push(r);
                    hi += 1;
                }
                (None, None) => break,
            }
        }
        result
    };

    let neighbours: Vec<Vec<(usize, f64)>> = (0..n).map(knn).collect();
    let k_distance: Vec<f64> = neighbours
        .iter()
        .map(|nb| nb.iter().map(|&(_, d)| d).fold(0.0, f64::max))
        .collect();

    // Local reachability density. Duplicate points make the reachability sum
    // zero; instead of an infinite density (which would poison the ratios) a
    // very large finite density is used, so clusters of duplicates score ~1
    // while genuinely isolated points still get huge LOF values.
    const MAX_DENSITY: f64 = 1e15;
    let lrd: Vec<f64> = (0..n)
        .map(|i| {
            let sum_reach: f64 = neighbours[i]
                .iter()
                .map(|&(j, d)| d.max(k_distance[j]))
                .sum();
            if sum_reach == 0.0 {
                MAX_DENSITY
            } else {
                (neighbours[i].len() as f64 / sum_reach).min(MAX_DENSITY)
            }
        })
        .collect();

    // LOF = average ratio of neighbour densities to own density.
    let scores: Vec<f64> = (0..n)
        .map(|i| {
            let avg_neighbour_lrd: f64 = neighbours[i].iter().map(|&(j, _)| lrd[j]).sum::<f64>()
                / neighbours[i].len() as f64;
            avg_neighbour_lrd / lrd[i]
        })
        .collect();

    LofResult { scores, k }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cluster_members_score_near_one() {
        let points: Vec<f64> = (0..30).map(|i| 1.0 + i as f64 * 0.01).collect();
        let lof = local_outlier_factor(&points, 5);
        for &s in &lof.scores {
            assert!(s < 1.3, "inlier score too high: {s}");
        }
    }

    #[test]
    fn far_away_point_gets_high_score() {
        let mut points: Vec<f64> = (0..30).map(|i| 1.0 + i as f64 * 0.01).collect();
        points.push(100.0);
        let lof = local_outlier_factor(&points, 5);
        let outliers = lof.outliers(1.5);
        assert_eq!(outliers, vec![30]);
        assert!(lof.scores[30] > 5.0);
    }

    #[test]
    fn tiny_inputs_are_all_inliers() {
        let lof = local_outlier_factor(&[1.0, 2.0], 3);
        assert_eq!(lof.scores, vec![1.0, 1.0]);
        let lof = local_outlier_factor(&[], 3);
        assert!(lof.scores.is_empty());
    }

    #[test]
    fn identical_points_do_not_blow_up() {
        let lof = local_outlier_factor(&[4.0; 20], 4);
        assert!(lof.scores.iter().all(|&s| (s - 1.0).abs() < 1e-9));
        assert!(lof.outliers(1.5).is_empty());
    }

    #[test]
    fn k_is_clamped_to_population() {
        let points = [1.0, 1.1, 0.9, 10.0];
        let lof = local_outlier_factor(&points, 100);
        assert_eq!(lof.k, 3);
        assert_eq!(lof.scores.len(), 4);
    }

    #[test]
    fn outlier_between_two_clusters_is_detected() {
        let mut points: Vec<f64> = (0..15).map(|i| i as f64 * 0.05).collect();
        points.extend((0..15).map(|i| 20.0 + i as f64 * 0.05));
        points.push(10.0); // lonely point between the clusters
        let lof = local_outlier_factor(&points, 5);
        let outliers = lof.outliers(1.5);
        assert!(outliers.contains(&30));
    }
}
