//! Autocorrelation and cross-correlation.
//!
//! FTIO's confidence refinement (paper §II-C) computes the autocorrelation
//! function (ACF) of the discretised bandwidth signal, finds its peaks, and
//! derives period candidates from the gaps between consecutive peaks. The
//! paper uses NumPy's `correlate` for this; here both a direct `O(N^2)`
//! implementation and an FFT-based `O(N log N)` implementation are provided,
//! with the FFT path chosen automatically for long signals.

use crate::plan_cache;

/// How to scale the autocorrelation output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalization {
    /// Raw sums of lagged products.
    None,
    /// Divide every lag by the zero-lag value so the ACF starts at 1 and lies in `[-1, 1]`.
    ZeroLag,
    /// Subtract the signal mean before correlating and divide by the zero-lag
    /// value (the statistician's ACF as used by `statsmodels`).
    Biased,
}

/// Autocorrelation for lags `0 .. signal.len()`, normalised so that lag 0 equals 1.
///
/// This is the variant used by FTIO: it mirrors `np.correlate(x, x, "full")`
/// restricted to non-negative lags and divided by the maximum.
pub fn autocorrelation(signal: &[f64]) -> Vec<f64> {
    autocorrelation_with(signal, Normalization::ZeroLag)
}

/// Autocorrelation with an explicit normalisation mode.
pub fn autocorrelation_with(signal: &[f64], normalization: Normalization) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let centered: Vec<f64>;
    let input: &[f64] = match normalization {
        Normalization::Biased => {
            let mean = signal.iter().sum::<f64>() / n as f64;
            centered = signal.iter().map(|x| x - mean).collect();
            &centered
        }
        _ => signal,
    };

    let mut acf = if n * n <= 1 << 18 {
        autocorrelation_direct(input)
    } else {
        autocorrelation_fft(input)
    };

    match normalization {
        Normalization::None => {}
        Normalization::ZeroLag | Normalization::Biased => {
            let r0 = acf[0];
            if r0 != 0.0 {
                for v in acf.iter_mut() {
                    *v /= r0;
                }
            }
        }
    }
    acf
}

/// Direct `O(N^2)` autocorrelation (non-negative lags, no normalisation).
pub fn autocorrelation_direct(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let mut out = vec![0.0; n];
    for (lag, out_lag) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += signal[i] * signal[i + lag];
        }
        *out_lag = acc;
    }
    out
}

/// FFT-based autocorrelation via the Wiener–Khinchin theorem
/// (non-negative lags, no normalisation). Zero-pads to avoid circular wrap-around.
///
/// The whole pipeline runs on the real-input half spectrum in deinterleaved
/// (structure-of-arrays) form: a cached [`crate::rfft::RealFft`] plan
/// transforms the zero-padded signal (an `N/2`-point complex FFT) straight
/// into `re`/`im` planes, the power spectrum `|X_k|^2` is folded into the
/// `N/2 + 1` retained bins with one contiguous-stream loop (the
/// autovectorisable form of the fold), and the c2r inverse brings the ACF
/// back — half the transform work of the full-complex version, with no plan
/// construction and no scratch allocation in steady state (see
/// [`crate::plan_cache`]).
pub fn autocorrelation_fft(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    // Power of two >= 2n: guarantees linear (non-circular) lags 0..n and an
    // even length, so the r2c/c2r fast path always applies.
    let padded = (2 * n).next_power_of_two();
    let plan = plan_cache::rfft_plan(padded);
    let mut half = plan_cache::take_split(plan.output_len());
    plan.process_padded_split(signal, &mut half);
    // Wiener–Khinchin: the ACF is the inverse transform of the power
    // spectrum, which for a real signal is fully described by the half bins.
    for (r, i) in half.re.iter_mut().zip(half.im.iter_mut()) {
        *r = *r * *r + *i * *i;
        *i = 0.0;
    }
    // inverse_split resizes to the padded length before the truncate.
    let mut acf = Vec::with_capacity(padded);
    plan.inverse_split(&half, &mut acf);
    plan_cache::give_split(half);
    acf.truncate(n);
    acf
}

/// Full linear cross-correlation of `a` and `b` (equivalent to
/// `np.correlate(a, b, mode="full")`), returned for lags
/// `-(b.len()-1) ..= a.len()-1` in increasing lag order.
pub fn cross_correlation_full(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let mut out = vec![0.0; out_len];
    // lag index l in output corresponds to shift s = l - (b.len() - 1)
    for (l, out_l) in out.iter_mut().enumerate() {
        let s = l as isize - (b.len() as isize - 1);
        let mut acc = 0.0;
        for (j, &bj) in b.iter().enumerate() {
            let i = j as isize + s;
            if i >= 0 && (i as usize) < a.len() {
                acc += a[i as usize] * bj;
            }
        }
        *out_l = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lag_is_one_after_normalisation() {
        let signal: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let acf = autocorrelation(&signal);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert!(acf.iter().all(|&v| v <= 1.0 + 1e-12));
    }

    #[test]
    fn direct_and_fft_paths_agree() {
        let signal: Vec<f64> = (0..600).map(|i| ((i % 13) as f64) - 4.0).collect();
        let direct = autocorrelation_direct(&signal);
        let fast = autocorrelation_fft(&signal);
        for (a, b) in direct.iter().zip(fast.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn periodic_signal_has_peak_at_its_period() {
        let period = 25usize;
        let n = 500;
        let signal: Vec<f64> = (0..n)
            .map(|i| if i % period < 5 { 10.0 } else { 0.0 })
            .collect();
        let acf = autocorrelation_with(&signal, Normalization::Biased);
        // The ACF at the true period must exceed the ACF at nearby non-multiple lags.
        assert!(acf[period] > acf[period - 7]);
        assert!(acf[period] > acf[period + 7]);
        assert!(acf[period] > 0.5);
    }

    #[test]
    fn white_noise_acf_decays_quickly() {
        // Deterministic pseudo-noise via a simple LCG to keep the test reproducible.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let signal: Vec<f64> = (0..2000).map(|_| next()).collect();
        let acf = autocorrelation_with(&signal, Normalization::Biased);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        let tail_max = acf[10..500].iter().cloned().fold(f64::MIN, f64::max);
        assert!(tail_max < 0.2, "noise ACF should be small, got {tail_max}");
    }

    #[test]
    fn empty_signal_yields_empty_acf() {
        assert!(autocorrelation(&[]).is_empty());
        assert!(autocorrelation_fft(&[]).is_empty());
        assert!(cross_correlation_full(&[], &[1.0]).is_empty());
    }

    #[test]
    fn all_zero_signal_does_not_divide_by_zero() {
        let acf = autocorrelation(&[0.0; 16]);
        assert!(acf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cross_correlation_matches_numpy_example() {
        // np.correlate([1,2,3],[0,1,0.5],'full') == [0.5, 2., 3.5, 3., 0.]
        let out = cross_correlation_full(&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.5]);
        let expect = [0.5, 2.0, 3.5, 3.0, 0.0];
        assert_eq!(out.len(), expect.len());
        for (a, b) in out.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn autocorrelation_none_matches_direct_sum() {
        let signal = [1.0, 2.0, 3.0, 4.0];
        let acf = autocorrelation_with(&signal, Normalization::None);
        // lag 0: 1+4+9+16 = 30; lag 1: 2+6+12 = 20; lag 2: 3+8 = 11; lag 3: 4
        let expect = [30.0, 20.0, 11.0, 4.0];
        for (a, b) in acf.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
