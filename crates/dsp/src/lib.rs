//! # ftio-dsp
//!
//! Signal-processing substrate for FTIO-rs, the Rust reproduction of
//! *"Capturing Periodic I/O Using Frequency Techniques"* (IPDPS 2024).
//!
//! The crate provides everything the FTIO analysis needs, implemented from
//! scratch with no numeric dependencies:
//!
//! * [`fft`] — fast Fourier transform for arbitrary lengths (radix-2,
//!   mixed-radix, and Bluestein), plus a naive DFT for cross-checking;
//! * [`spectrum`] — single-sided amplitude/power spectra, normalised power,
//!   and time-domain reconstruction from selected bins (Eq. (1) of the paper);
//! * [`correlation`] — autocorrelation (direct and FFT-based) and
//!   cross-correlation;
//! * [`peaks`] — SciPy-style `find_peaks` with height/threshold/distance/
//!   prominence filters;
//! * [`stats`] — means, variances, percentiles and box-plot summaries;
//! * [`zscore`], [`dbscan`], [`lof`], [`isolation_forest`] — the outlier
//!   detection methods the paper evaluates (§II-B2);
//! * [`window`] — taper functions for the ablation studies.
//!
//! # Quick example
//!
//! ```
//! use ftio_dsp::spectrum::Spectrum;
//! use ftio_dsp::zscore::outlier_indices;
//!
//! // A bandwidth-like signal with a strong 10-sample period.
//! let signal: Vec<f64> = (0..200)
//!     .map(|i| if i % 10 < 2 { 8.0 } else { 0.0 })
//!     .collect();
//! let spectrum = Spectrum::from_signal(&signal, 1.0);
//! let powers = spectrum.powers_without_dc();
//! let outliers = outlier_indices(&powers, 3.0);
//! // Bin 20 (of the non-DC spectrum: index 19) corresponds to f = 0.1 Hz.
//! assert!(outliers.contains(&19));
//! ```

pub mod complex;
pub mod correlation;
pub mod dbscan;
pub mod fft;
pub mod isolation_forest;
pub mod lof;
pub mod peaks;
pub mod spectrum;
pub mod stats;
pub mod window;
pub mod zscore;

pub use complex::Complex;
pub use correlation::{autocorrelation, autocorrelation_with, Normalization};
pub use dbscan::{cluster_intervals, dbscan_1d, ClusterInterval, Clustering, Label};
pub use fft::{dft_naive, fft, fft_real, ifft, Direction, Fft};
pub use isolation_forest::{isolation_forest_outliers, ForestConfig, IsolationForest};
pub use lof::{local_outlier_factor, LofResult};
pub use peaks::{find_peak_indices, find_peaks, Peak, PeakConfig};
pub use spectrum::{reconstruct_from_bins, reconstruct_from_top_bins, Spectrum};
pub use stats::BoxStats;
pub use window::WindowKind;
pub use zscore::{outlier_indices, z_scores};

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-100.0f64..100.0, 1..max_len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `ifft(fft(x)) == x` for any real signal of any length.
        #[test]
        fn fft_roundtrip_recovers_signal(signal in arbitrary_signal(300)) {
            let complex: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
            let roundtrip = ifft(&fft(&complex));
            for (a, b) in roundtrip.iter().zip(signal.iter()) {
                prop_assert!((a.re - b).abs() < 1e-6);
                prop_assert!(a.im.abs() < 1e-6);
            }
        }

        /// Parseval: time-domain energy equals frequency-domain energy / N.
        #[test]
        fn fft_preserves_energy(signal in arbitrary_signal(300)) {
            let spec = fft_real(&signal);
            let time_energy: f64 = signal.iter().map(|x| x * x).sum();
            let freq_energy: f64 = spec.iter().map(|x| x.norm_sqr()).sum::<f64>() / signal.len() as f64;
            prop_assert!((time_energy - freq_energy).abs() <= 1e-6 * time_energy.max(1.0));
        }

        /// The FFT agrees with the O(N^2) reference DFT for random signals.
        #[test]
        fn fft_matches_naive_dft(signal in arbitrary_signal(128)) {
            let complex: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
            let fast = fft(&complex);
            let slow = dft_naive(&complex, Direction::Forward);
            for (a, b) in fast.iter().zip(slow.iter()) {
                prop_assert!((a.re - b.re).abs() < 1e-5);
                prop_assert!((a.im - b.im).abs() < 1e-5);
            }
        }

        /// Normalised powers always sum to 1 (or 0 for a null signal).
        #[test]
        fn normalized_power_sums_to_one(signal in arbitrary_signal(256)) {
            let spectrum = Spectrum::from_signal(&signal, 2.0);
            let total: f64 = spectrum.normalized_powers().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6 || total == 0.0);
        }

        /// The normalised autocorrelation is 1 at lag zero and bounded by 1 in magnitude.
        #[test]
        fn acf_bounded_by_one(signal in arbitrary_signal(256)) {
            let acf = autocorrelation(&signal);
            if acf[0] != 0.0 {
                prop_assert!((acf[0] - 1.0).abs() < 1e-9);
            }
            for &v in &acf {
                prop_assert!(v.abs() <= 1.0 + 1e-9);
            }
        }

        /// Z-score outliers are always a subset of the input indices and the
        /// threshold is monotone: raising it never adds outliers.
        #[test]
        fn zscore_threshold_is_monotone(signal in arbitrary_signal(200)) {
            let lo = outlier_indices(&signal, 2.0);
            let hi = outlier_indices(&signal, 3.0);
            for idx in &hi {
                prop_assert!(lo.contains(idx));
                prop_assert!(*idx < signal.len());
            }
        }

        /// DBSCAN assigns every point either to a cluster or to noise, and
        /// cluster ids are dense in 0..num_clusters.
        #[test]
        fn dbscan_labels_are_consistent(
            points in prop::collection::vec(0.0f64..50.0, 1..100),
            eps in 0.1f64..5.0,
            min_pts in 1usize..5,
        ) {
            let c = dbscan_1d(&points, eps, min_pts);
            prop_assert_eq!(c.labels.len(), points.len());
            for label in &c.labels {
                if let Some(id) = label.cluster_id() {
                    prop_assert!(id < c.num_clusters);
                }
            }
            let clustered: usize = (0..c.num_clusters).map(|id| c.members(id).len()).sum();
            prop_assert_eq!(clustered + c.noise().len(), points.len());
        }

        /// Cluster-interval probabilities sum to at most 1.
        #[test]
        fn cluster_probabilities_bounded(
            points in prop::collection::vec(0.0f64..10.0, 1..80),
        ) {
            let intervals = cluster_intervals(&points, 0.5, 2);
            let total: f64 = intervals.iter().map(|i| i.probability).sum();
            prop_assert!(total <= 1.0 + 1e-9);
            for i in &intervals {
                prop_assert!(i.min <= i.center && i.center <= i.max);
            }
        }

        /// Peak indices are strictly increasing and never at the boundaries.
        #[test]
        fn peaks_are_interior_and_sorted(signal in arbitrary_signal(200)) {
            let peaks = find_peak_indices(&signal, &PeakConfig::default());
            for w in peaks.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &p in &peaks {
                prop_assert!(p > 0 && p + 1 < signal.len());
            }
        }

        /// Percentile is monotone in p and bounded by the data range.
        #[test]
        fn percentile_is_monotone(signal in arbitrary_signal(100)) {
            let p25 = stats::percentile(&signal, 25.0);
            let p50 = stats::percentile(&signal, 50.0);
            let p75 = stats::percentile(&signal, 75.0);
            prop_assert!(p25 <= p50 + 1e-12);
            prop_assert!(p50 <= p75 + 1e-12);
            prop_assert!(p25 >= stats::min(&signal) - 1e-12);
            prop_assert!(p75 <= stats::max(&signal) + 1e-12);
        }
    }
}
