//! # ftio-dsp
//!
//! Signal-processing substrate for FTIO-rs, the Rust reproduction of
//! *"Capturing Periodic I/O Using Frequency Techniques"* (IPDPS 2024).
//!
//! The crate provides everything the FTIO analysis needs, implemented from
//! scratch with no numeric dependencies:
//!
//! * [`mod@fft`] — fast Fourier transform for arbitrary lengths (mixed-radix
//!   with radix-4/2 kernels, and Bluestein), executing on a deinterleaved
//!   (structure-of-arrays) complex layout ([`complex::SplitComplex`]) whose
//!   contiguous-plane butterfly loops autovectorise on stable Rust, plus a
//!   naive DFT for cross-checking;
//! * [`mod@rfft`] — the real-input FFT fast path: FTIO's signals are real, so
//!   their spectra are conjugate-symmetric and an `N`-point transform reduces
//!   to an `N/2`-point complex FFT plus an `O(N)` recombination — half the
//!   arithmetic and memory traffic of the complex path;
//! * [`plan_cache`] — per-thread memoisation of FFT plans plus a scratch
//!   buffer pool, so the hot spectral paths (`Spectrum::from_signal`, the
//!   FFT autocorrelation, the `ftio-core` online tick) build no plans and
//!   allocate no work buffers in steady state; debug counters
//!   ([`plan_cache::stats`]) make the property testable;
//! * [`mod@pool`] — a small vendored work-stealing thread pool (bounded
//!   workers, `FTIO_THREADS` budget, scope/join semantics, inline sequential
//!   degradation at one thread) powering the concurrent four-step FFT and the
//!   cluster engine's shard workers;
//! * [`spectrum`] — single-sided amplitude/power spectra, normalised power,
//!   and time-domain reconstruction from selected bins (Eq. (1) of the paper);
//! * [`correlation`] — autocorrelation (direct and FFT-based via the real
//!   half-spectrum) and cross-correlation;
//! * [`peaks`] — SciPy-style `find_peaks` with height/threshold/distance/
//!   prominence filters;
//! * [`stats`] — means, variances, percentiles and box-plot summaries;
//! * [`zscore`], [`dbscan`], [`lof`], [`isolation_forest`] — the outlier
//!   detection methods the paper evaluates (§II-B2);
//! * [`window`] — taper functions for the ablation studies.
//!
//! # Quick example
//!
//! ```
//! use ftio_dsp::spectrum::Spectrum;
//! use ftio_dsp::zscore::outlier_indices;
//!
//! // A bandwidth-like signal with a strong 10-sample period.
//! let signal: Vec<f64> = (0..200)
//!     .map(|i| if i % 10 < 2 { 8.0 } else { 0.0 })
//!     .collect();
//! let spectrum = Spectrum::from_signal(&signal, 1.0);
//! let powers = spectrum.powers_without_dc();
//! let outliers = outlier_indices(&powers, 3.0);
//! // Bin 20 (of the non-DC spectrum: index 19) corresponds to f = 0.1 Hz.
//! assert!(outliers.contains(&19));
//! ```

pub mod complex;
pub mod correlation;
pub mod dbscan;
pub mod fft;
pub mod isolation_forest;
pub mod lof;
pub mod peaks;
pub mod plan_cache;
pub mod pool;
pub mod rfft;
pub mod spectrum;
pub mod stats;
pub mod window;
pub mod zscore;

pub use complex::{Complex, SplitComplex};
pub use correlation::{autocorrelation, autocorrelation_with, Normalization};
pub use dbscan::{cluster_intervals, dbscan_1d, ClusterInterval, Clustering, Label};
pub use fft::{dft_naive, fft, fft_real, ifft, Direction, Fft};
pub use isolation_forest::{isolation_forest_outliers, ForestConfig, IsolationForest};
pub use lof::{local_outlier_factor, LofResult};
pub use peaks::{find_peak_indices, find_peaks, Peak, PeakConfig};
pub use plan_cache::PlanCacheStats;
pub use pool::Pool;
pub use rfft::{irfft, rfft, RealFft};
pub use spectrum::{reconstruct_from_bins, reconstruct_from_top_bins, Spectrum};
pub use stats::BoxStats;
pub use window::WindowKind;
pub use zscore::{outlier_indices, z_scores};

#[cfg(test)]
// Seeded randomized invariant tests (a property-test stand-in: the build
// environment has no crates.io access, so `proptest` is unavailable).
mod property_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn arbitrary_signal(rng: &mut StdRng, max_len: usize) -> Vec<f64> {
        let n = rng.gen_range(1..max_len);
        (0..n).map(|_| rng.gen_range(-100.0f64..100.0)).collect()
    }

    /// `ifft(fft(x)) == x` for any real signal of any length.
    #[test]
    fn fft_roundtrip_recovers_signal() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0001);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 300);
            let complex: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
            let roundtrip = ifft(&fft(&complex));
            for (a, b) in roundtrip.iter().zip(signal.iter()) {
                assert!((a.re - b).abs() < 1e-6);
                assert!(a.im.abs() < 1e-6);
            }
        }
    }

    /// Parseval: time-domain energy equals frequency-domain energy / N.
    #[test]
    fn fft_preserves_energy() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0002);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 300);
            let spec = fft_real(&signal);
            let time_energy: f64 = signal.iter().map(|x| x * x).sum();
            let freq_energy: f64 =
                spec.iter().map(|x| x.norm_sqr()).sum::<f64>() / signal.len() as f64;
            assert!((time_energy - freq_energy).abs() <= 1e-6 * time_energy.max(1.0));
        }
    }

    /// The FFT agrees with the O(N^2) reference DFT for random signals.
    #[test]
    fn fft_matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0003);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 128);
            let complex: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
            let fast = fft(&complex);
            let slow = dft_naive(&complex, Direction::Forward);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!((a.re - b.re).abs() < 1e-5);
                assert!((a.im - b.im).abs() < 1e-5);
            }
        }
    }

    /// Normalised powers always sum to 1 (or 0 for a null signal).
    #[test]
    fn normalized_power_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0004);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 256);
            let spectrum = Spectrum::from_signal(&signal, 2.0);
            let total: f64 = spectrum.normalized_powers().iter().sum();
            assert!((total - 1.0).abs() < 1e-6 || total == 0.0);
        }
    }

    /// The normalised autocorrelation is 1 at lag zero and bounded by 1 in magnitude.
    #[test]
    fn acf_bounded_by_one() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0005);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 256);
            let acf = autocorrelation(&signal);
            if acf[0] != 0.0 {
                assert!((acf[0] - 1.0).abs() < 1e-9);
            }
            for &v in &acf {
                assert!(v.abs() <= 1.0 + 1e-9);
            }
        }
    }

    /// Z-score outliers are always a subset of the input indices and the
    /// threshold is monotone: raising it never adds outliers.
    #[test]
    fn zscore_threshold_is_monotone() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0006);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 200);
            let lo = outlier_indices(&signal, 2.0);
            let hi = outlier_indices(&signal, 3.0);
            for idx in &hi {
                assert!(lo.contains(idx));
                assert!(*idx < signal.len());
            }
        }
    }

    /// DBSCAN assigns every point either to a cluster or to noise, and
    /// cluster ids are dense in 0..num_clusters.
    #[test]
    fn dbscan_labels_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0007);
        for _case in 0..64 {
            let points: Vec<f64> = (0..rng.gen_range(1usize..100))
                .map(|_| rng.gen_range(0.0f64..50.0))
                .collect();
            let eps = rng.gen_range(0.1f64..5.0);
            let min_pts = rng.gen_range(1usize..5);
            let c = dbscan_1d(&points, eps, min_pts);
            assert_eq!(c.labels.len(), points.len());
            for label in &c.labels {
                if let Some(id) = label.cluster_id() {
                    assert!(id < c.num_clusters);
                }
            }
            let clustered: usize = (0..c.num_clusters).map(|id| c.members(id).len()).sum();
            assert_eq!(clustered + c.noise().len(), points.len());
        }
    }

    /// Cluster-interval probabilities sum to at most 1.
    #[test]
    fn cluster_probabilities_bounded() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0008);
        for _case in 0..64 {
            let points: Vec<f64> = (0..rng.gen_range(1usize..80))
                .map(|_| rng.gen_range(0.0f64..10.0))
                .collect();
            let intervals = cluster_intervals(&points, 0.5, 2);
            let total: f64 = intervals.iter().map(|i| i.probability).sum();
            assert!(total <= 1.0 + 1e-9);
            for i in &intervals {
                assert!(i.min <= i.center && i.center <= i.max);
            }
        }
    }

    /// Peak indices are strictly increasing and never at the boundaries.
    #[test]
    fn peaks_are_interior_and_sorted() {
        let mut rng = StdRng::seed_from_u64(0x0d59_0009);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 200);
            let peaks = find_peak_indices(&signal, &PeakConfig::default());
            for w in peaks.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &p in &peaks {
                assert!(p > 0 && p + 1 < signal.len());
            }
        }
    }

    /// Percentile is monotone in p and bounded by the data range.
    #[test]
    fn percentile_is_monotone() {
        let mut rng = StdRng::seed_from_u64(0x0d59_000a);
        for _case in 0..64 {
            let signal = arbitrary_signal(&mut rng, 100);
            let p25 = stats::percentile(&signal, 25.0);
            let p50 = stats::percentile(&signal, 50.0);
            let p75 = stats::percentile(&signal, 75.0);
            assert!(p25 <= p50 + 1e-12);
            assert!(p50 <= p75 + 1e-12);
            assert!(p25 >= stats::min(&signal) - 1e-12);
            assert!(p75 <= stats::max(&signal) + 1e-12);
        }
    }
}
