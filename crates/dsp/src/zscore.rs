//! Z-score based outlier detection (paper §II-B2, Eq. (2)).
//!
//! The Z-score of a value tells how many standard deviations it lies from the
//! mean of all values; a score above 3 conventionally flags an outlier. FTIO
//! applies it to the power spectrum to decide whether the highest-power
//! frequency is genuinely dominant or merely the largest among equals.

use crate::stats::Moments;

/// The affine map `z(x) = (|x| - m) / sd` shared by every Z-score entry point.
///
/// Built in **one** fused pass over the magnitudes ([`Moments`]); the old
/// implementation walked the data four times (abs copy, mean, a second mean
/// hidden inside the variance, squared deviations) and allocated an
/// intermediate `|x|` vector on every call — on the spectrum outlier path that
/// was four O(N/2) sweeps per prediction tick.
#[derive(Clone, Copy, Debug)]
struct ZScale {
    mean: f64,
    std_dev: f64,
}

impl ZScale {
    /// Scale with the unweighted magnitude mean.
    fn of(data: &[f64]) -> Self {
        let moments = Moments::of_iter(data.iter().map(|x| x.abs()));
        ZScale {
            mean: moments.mean,
            std_dev: moments.std_dev(),
        }
    }

    /// Scale with a weighted magnitude mean but the unweighted standard
    /// deviation (the reference implementation's behaviour), still one pass.
    fn of_weighted(data: &[f64], weights: &[f64]) -> Self {
        let mut moments = Moments::default();
        let mut wsum = 0.0;
        let mut wxsum = 0.0;
        for (x, &w) in data.iter().zip(weights) {
            let a = x.abs();
            moments.push(a);
            wsum += w;
            wxsum += w * a;
        }
        ZScale {
            mean: if wsum == 0.0 { 0.0 } else { wxsum / wsum },
            std_dev: moments.std_dev(),
        }
    }

    /// Whether the scale is degenerate (constant input): all scores are zero.
    #[inline]
    fn is_flat(&self) -> bool {
        self.std_dev == 0.0
    }

    #[inline]
    fn score(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            0.0
        } else {
            (x.abs() - self.mean) / self.std_dev
        }
    }
}

/// Z-scores `z_k = (|x_k| - |x̄|) / σ` for each element (population σ).
///
/// Returns an all-zero vector when the standard deviation is zero (constant
/// input), which correctly reports "no outliers".
pub fn z_scores(data: &[f64]) -> Vec<f64> {
    let scale = ZScale::of(data);
    data.iter().map(|&x| scale.score(x)).collect()
}

/// Z-scores computed against a weighted mean (used on autocorrelation period
/// candidates, where the ACF peak heights act as weights, paper §II-C).
///
/// The deviation is still divided by the unweighted standard deviation, which
/// matches the reference implementation's behaviour.
///
/// # Panics
///
/// Panics if `data` and `weights` differ in length.
pub fn weighted_z_scores(data: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(data.len(), weights.len(), "data and weights must match");
    let scale = ZScale::of_weighted(data, weights);
    data.iter().map(|&x| scale.score(x)).collect()
}

/// Indices whose Z-score is at least `threshold` (3.0 in the paper).
///
/// Fused: one moments pass plus one thresholding pass, with no intermediate
/// score vector.
pub fn outlier_indices(data: &[f64], threshold: f64) -> Vec<usize> {
    let scale = ZScale::of(data);
    if scale.is_flat() {
        return Vec::new();
    }
    data.iter()
        .enumerate()
        .filter_map(|(i, &x)| {
            if scale.score(x) >= threshold {
                Some(i)
            } else {
                None
            }
        })
        .collect()
}

/// Indices whose Z-score magnitude is at least `threshold`, catching both
/// unusually large and unusually small values.
pub fn outlier_indices_two_sided(data: &[f64], threshold: f64) -> Vec<usize> {
    let scale = ZScale::of(data);
    if scale.is_flat() {
        return Vec::new();
    }
    data.iter()
        .enumerate()
        .filter_map(|(i, &x)| {
            if scale.score(x).abs() >= threshold {
                Some(i)
            } else {
                None
            }
        })
        .collect()
}

/// Removes elements whose Z-score magnitude exceeds `threshold`, returning the
/// retained values (used to filter period candidates from the ACF).
pub fn filter_outliers(data: &[f64], threshold: f64) -> Vec<f64> {
    let scale = ZScale::of(data);
    data.iter()
        .copied()
        .filter(|&x| scale.score(x).abs() < threshold)
        .collect()
}

/// Removes elements whose weighted Z-score magnitude exceeds `threshold`.
pub fn filter_outliers_weighted(data: &[f64], weights: &[f64], threshold: f64) -> Vec<f64> {
    assert_eq!(data.len(), weights.len(), "data and weights must match");
    let scale = ZScale::of_weighted(data, weights);
    data.iter()
        .copied()
        .filter(|&x| scale.score(x).abs() < threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_has_zero_scores() {
        let scores = z_scores(&[5.0; 10]);
        assert!(scores.iter().all(|&z| z == 0.0));
        assert!(outlier_indices(&[5.0; 10], 3.0).is_empty());
    }

    #[test]
    fn single_spike_is_an_outlier() {
        let mut data = vec![1.0; 40];
        data[17] = 100.0;
        let idx = outlier_indices(&data, 3.0);
        assert_eq!(idx, vec![17]);
        let scores = z_scores(&data);
        assert!(scores[17] > 3.0);
        assert!(scores[0] < 0.0);
    }

    #[test]
    fn scores_use_absolute_values() {
        // A strongly negative value counts through its magnitude (Eq. 2 uses |p_k|).
        let mut data = vec![1.0; 40];
        data[5] = -100.0;
        let idx = outlier_indices(&data, 3.0);
        assert_eq!(idx, vec![5]);
    }

    #[test]
    fn two_similar_spikes_are_both_outliers() {
        let mut data = vec![0.5; 60];
        data[10] = 50.0;
        data[40] = 52.0;
        let idx = outlier_indices(&data, 3.0);
        assert_eq!(idx, vec![10, 40]);
    }

    #[test]
    fn uniform_data_with_no_structure_has_no_outliers() {
        let data: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        assert!(outlier_indices(&data, 3.0).is_empty());
    }

    #[test]
    fn filter_outliers_removes_the_spike() {
        let mut data = vec![2.0; 30];
        data[3] = 500.0;
        let kept = filter_outliers(&data, 3.0);
        assert_eq!(kept.len(), 29);
        assert!(kept.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn two_sided_detection_catches_low_outliers() {
        // With |x| used, a "low outlier" means an unusually small magnitude.
        let mut data = vec![10.0; 50];
        data[7] = 0.0;
        let one_sided = outlier_indices(&data, 3.0);
        assert!(one_sided.is_empty());
        let two_sided = outlier_indices_two_sided(&data, 3.0);
        assert_eq!(two_sided, vec![7]);
    }

    #[test]
    fn weighted_scores_shift_with_weights() {
        let data = [1.0, 1.0, 1.0, 10.0];
        let w_uniform = [1.0, 1.0, 1.0, 1.0];
        let w_biased = [0.0, 0.0, 0.0, 1.0];
        let zu = weighted_z_scores(&data, &w_uniform);
        let zb = weighted_z_scores(&data, &w_biased);
        // With all the weight on the spike the mean moves to 10, so the spike's
        // score drops to zero and the small values become negative outliers.
        assert!(zu[3] > zb[3]);
        assert!((zb[3] - 0.0).abs() < 1e-12);
        assert!(zb[0] < 0.0);
    }

    #[test]
    fn weighted_filtering_respects_acf_style_weights() {
        let periods = [10.0, 10.2, 9.8, 10.1, 30.0];
        let weights = [1.0, 0.9, 0.8, 0.85, 0.1];
        let kept = filter_outliers_weighted(&periods, &weights, 1.5);
        assert!(kept.contains(&10.0));
        assert!(!kept.contains(&30.0));
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(z_scores(&[]).is_empty());
        assert!(outlier_indices(&[], 3.0).is_empty());
        assert!(filter_outliers(&[], 3.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn weighted_scores_length_mismatch_panics() {
        weighted_z_scores(&[1.0, 2.0], &[1.0]);
    }
}
