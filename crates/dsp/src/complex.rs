//! A minimal complex-number type used by the FFT and spectrum code, plus the
//! deinterleaved (structure-of-arrays) buffer the FFT kernels execute on.
//!
//! The crate deliberately avoids external numeric dependencies, so a small,
//! `Copy`-able complex type with the handful of operations the DFT pipeline
//! needs is implemented here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the complex exponential `e^{i theta} = cos(theta) + i sin(theta)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplies by the imaginary unit `i` without a full complex multiply
    /// (a 90° rotation, used by the radix-4 FFT butterfly).
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplies by `-i` without a full complex multiply (a −90° rotation,
    /// used by the radix-4 FFT butterfly).
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Complex {
            re: self.im,
            im: -self.re,
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A complex buffer in deinterleaved (structure-of-arrays) form: one plane of
/// real parts, one plane of imaginary parts.
///
/// The `[Complex]` array-of-structs layout interleaves `re` and `im` in
/// memory, so a butterfly loop strides over the planes and LLVM has to emit
/// shuffles to vectorise it. With separate `re`/`im` planes every FFT kernel
/// loop — butterflies, twiddle multiplies, the `|X|²` power fold — reads and
/// writes contiguous `f64` runs and autovectorises on stable Rust. The FFT
/// plans execute on this layout internally ([`crate::fft::Fft::process_split`]);
/// the interleaved `[Complex]` API remains as the boundary representation.
///
/// The two planes always have the same length.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SplitComplex {
    /// Real plane.
    pub re: Vec<f64>,
    /// Imaginary plane.
    pub im: Vec<f64>,
}

impl SplitComplex {
    /// A zero-filled buffer of `len` elements.
    pub fn with_len(len: usize) -> Self {
        SplitComplex {
            re: vec![0.0; len],
            im: vec![0.0; len],
        }
    }

    /// Number of complex elements.
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.re.len(), self.im.len());
        self.re.len()
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Resizes both planes to `len`, zero-filling any new elements.
    pub fn resize(&mut self, len: usize) {
        self.re.resize(len, 0.0);
        self.im.resize(len, 0.0);
    }

    /// The element at `k` as an interleaved [`Complex`].
    #[inline]
    pub fn get(&self, k: usize) -> Complex {
        Complex::new(self.re[k], self.im[k])
    }

    /// Writes the element at `k`.
    #[inline]
    pub fn set(&mut self, k: usize, value: Complex) {
        self.re[k] = value.re;
        self.im[k] = value.im;
    }

    /// Mutable views of both planes at once (the borrow the kernels need).
    #[inline]
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Fills the buffer from an interleaved slice (deinterleave), resizing to
    /// match.
    pub fn copy_from_interleaved(&mut self, data: &[Complex]) {
        self.resize(data.len());
        for (k, z) in data.iter().enumerate() {
            self.re[k] = z.re;
            self.im[k] = z.im;
        }
    }

    /// Writes the buffer back into an interleaved slice (reinterleave).
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than the buffer.
    pub fn copy_to_interleaved(&self, data: &mut [Complex]) {
        assert!(
            data.len() >= self.len(),
            "interleaved buffer of {} elements cannot hold {} split elements",
            data.len(),
            self.len()
        );
        for (z, (&r, &i)) in data.iter_mut().zip(self.re.iter().zip(&self.im)) {
            *z = Complex::new(r, i);
        }
    }

    /// Collects the buffer into an interleaved vector.
    pub fn to_interleaved(&self) -> Vec<Complex> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < EPS && (a.im - b.im).abs() < EPS
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, 7.0);
        // (3+2i)(1+7i) = 3 + 21i + 2i + 14i^2 = -11 + 23i
        assert!(close(a * b, Complex::new(-11.0, 23.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, 7.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let a = Complex::new(2.0, -5.0);
        assert_eq!(a.conj(), Complex::new(2.0, 5.0));
        assert!((a * a.conj()).im.abs() < EPS);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn arg_of_axes() {
        assert!((Complex::new(1.0, 0.0).arg() - 0.0).abs() < EPS);
        assert!((Complex::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((Complex::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn scale_and_div_by_scalar() {
        let z = Complex::new(4.0, -6.0);
        assert!(close(z.scale(0.5), Complex::new(2.0, -3.0)));
        assert!(close(z / 2.0, Complex::new(2.0, -3.0)));
        assert!(close(z * 2.0, Complex::new(8.0, -12.0)));
    }

    #[test]
    fn neg_and_zero_identities() {
        let z = Complex::new(1.0, -1.0);
        assert!(close(z + (-z), Complex::ZERO));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z * Complex::ZERO, Complex::ZERO));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let z = Complex::new(2.5, -1.5);
        assert!(close(z.mul_i(), z * Complex::I));
        assert!(close(z.mul_neg_i(), z * -Complex::I));
        assert!(close(z.mul_i().mul_neg_i(), z));
    }

    #[test]
    fn split_complex_roundtrips_interleaved_data() {
        let data: Vec<Complex> = (0..7)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let mut split = SplitComplex::default();
        split.copy_from_interleaved(&data);
        assert_eq!(split.len(), 7);
        assert!(!split.is_empty());
        assert_eq!(split.get(3), data[3]);
        assert_eq!(split.to_interleaved(), data);
        let mut back = vec![Complex::ZERO; 7];
        split.copy_to_interleaved(&mut back);
        assert_eq!(back, data);
        split.set(0, Complex::new(9.0, 8.0));
        assert_eq!(split.get(0), Complex::new(9.0, 8.0));
        split.resize(9);
        assert_eq!(split.len(), 9);
        assert_eq!(split.get(8), Complex::ZERO);
        let (re, im) = split.planes_mut();
        assert_eq!(re.len(), im.len());
        assert!(SplitComplex::with_len(0).is_empty());
    }

    #[test]
    fn finite_and_nan_checks() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_nan());
    }
}
