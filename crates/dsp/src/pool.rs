//! A small vendored work-stealing thread pool.
//!
//! The build environment has no crates.io access, so instead of `rayon` this
//! module implements the subset FTIO-rs needs, in safe Rust (the workspace
//! denies `unsafe_code`):
//!
//! * **Bounded workers** — [`Pool::new`] spawns an explicit number of worker
//!   threads; the process-wide [`global`] pool sizes itself from the
//!   `FTIO_THREADS` environment variable (see [`thread_budget`]) or the
//!   machine's available parallelism. Every layer that spawns compute threads
//!   (`ftio-core`'s cluster engine, `ftio serve`) derives its worker count
//!   from the same budget, so thread counts never silently multiply.
//! * **Work stealing** — each worker owns a deque; tasks spawned from inside
//!   a worker push onto its own deque (LIFO, cache-warm), external spawns go
//!   to a shared injector, and an idle worker steals from the front of its
//!   siblings' deques (FIFO, oldest first). The deques are mutex-protected —
//!   at the coarse task granularity used here (FFT row groups, shard tick
//!   batches) lock traffic is far below measurement noise.
//! * **Scope/join semantics** — [`Pool::scope`] blocks until every task
//!   spawned inside it has completed and re-raises the first task panic on
//!   the caller; while waiting, the calling thread *helps* by running queued
//!   tasks itself.
//! * **Graceful sequential degradation** — a pool configured with one thread
//!   (or [`Pool::inline`]) runs every task inline on the calling thread, in
//!   spawn order, with no worker threads at all. Code written against the
//!   pool API therefore has a well-defined single-threaded mode whose
//!   arithmetic and ordering match a plain sequential loop — the property
//!   the concurrent FFT's bit-for-bit equivalence tests pin.
//!
//! The ambient pool is resolved per thread: [`current`] returns the
//! innermost [`install`]ed pool, falling back to [`global`]. The cluster
//! engine uses this to run shard ticks with an *inline* pool when it already
//! parallelises across applications, so intra-FFT and cross-app parallelism
//! never oversubscribe the machine (see `ftio-core`'s cluster docs).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable naming the process-wide thread budget.
pub const THREADS_ENV: &str = "FTIO_THREADS";

/// Upper bound on configurable worker counts — a typo like
/// `FTIO_THREADS=1000000` must not try to spawn a million threads.
const MAX_THREADS: usize = 256;

type Task = Box<dyn FnOnce() + Send + 'static>;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Parses a thread-count override as used by `FTIO_THREADS` and the
/// `--threads` command-line options.
///
/// Returns `None` for "auto" (absent value, empty string, `0`, or the word
/// `auto`), `Some(n)` for an explicit positive count (clamped to an internal
/// maximum), and `None` for garbage — a malformed override degrades to the
/// automatic budget instead of taking the process down.
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    let value = value?.trim();
    if value.is_empty() || value.eq_ignore_ascii_case("auto") {
        return None;
    }
    match value.parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n.min(MAX_THREADS)),
    }
}

/// The process-wide worker budget: `FTIO_THREADS` when set to a positive
/// number, otherwise the machine's available parallelism (at least 1).
///
/// Every layer that spawns compute threads derives its default from this one
/// number — the [`global`] FFT pool and `ftio-core`'s cluster engine — which
/// is what keeps a daemon with both layers active from oversubscribing the
/// machine.
pub fn thread_budget() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

struct SleepState {
    /// Bumped on every spawn; workers re-scan when it moves past the value
    /// they observed before finding all queues empty.
    seq: u64,
    shutdown: bool,
}

struct PoolInner {
    /// External spawns land here; any worker may take them.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker: owner pushes/pops the back, thieves steal the
    /// front.
    queues: Vec<Mutex<VecDeque<Task>>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
}

impl PoolInner {
    fn notify(&self) {
        let mut state = lock(&self.sleep);
        state.seq = state.seq.wrapping_add(1);
        drop(state);
        self.wake.notify_all();
    }

    /// Takes one runnable task as worker `index` (own queue first), or as an
    /// external helper when `index` is `None` (injector, then steal).
    fn take_task(&self, index: Option<usize>) -> Option<Task> {
        if let Some(own) = index {
            if let Some(task) = lock(&self.queues[own]).pop_back() {
                return Some(task);
            }
        }
        if let Some(task) = lock(&self.injector).pop_front() {
            return Some(task);
        }
        for (victim, queue) in self.queues.iter().enumerate() {
            if Some(victim) == index {
                continue;
            }
            if let Some(task) = lock(queue).pop_front() {
                return Some(task);
            }
        }
        None
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        WORKER.with(|w| *w.borrow_mut() = Some((Arc::as_ptr(self) as usize, index)));
        loop {
            let seen = lock(&self.sleep).seq;
            if let Some(task) = self.take_task(Some(index)) {
                // A panicking task must not take the worker down with it; the
                // owning scope re-raises the payload on its caller.
                let _ = catch_unwind(AssertUnwindSafe(task));
                continue;
            }
            let state = lock(&self.sleep);
            if state.shutdown {
                return;
            }
            if state.seq == seen {
                let guard = self
                    .wake
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                drop(guard);
            }
        }
    }
}

/// Joins the workers when the last handle to a locally built pool goes away.
struct PoolShutdown {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for PoolShutdown {
    fn drop(&mut self) {
        lock(&self.inner.sleep).shutdown = true;
        self.inner.wake.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the pool this thread works for.
    static WORKER: RefCell<Option<(usize, usize)>> = const { RefCell::new(None) };
    /// Innermost [`install`]ed ambient pool.
    static CURRENT: RefCell<Vec<Pool>> = const { RefCell::new(Vec::new()) };
}

/// A bounded work-stealing thread pool (see the [module docs](self)).
///
/// Cloning is cheap and shares the same workers; the workers shut down when
/// the last clone of a locally built pool is dropped ([`global`]'s workers
/// live for the process).
#[derive(Clone)]
pub struct Pool {
    /// `None` = inline sequential execution (the 1-thread degradation).
    inner: Option<Arc<PoolInner>>,
    _shutdown: Option<Arc<PoolShutdown>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.thread_count())
            .finish()
    }
}

impl Pool {
    /// Builds a pool with `threads` workers. Zero or one worker builds the
    /// [inline](Pool::inline) pool: no threads, tasks run sequentially on the
    /// spawning thread.
    pub fn new(threads: usize) -> Self {
        let threads = threads.min(MAX_THREADS);
        if threads <= 1 {
            return Pool::inline();
        }
        let inner = Arc::new(PoolInner {
            injector: Mutex::new(VecDeque::new()),
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(SleepState {
                seq: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads);
        for index in 0..threads {
            let inner = inner.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ftio-pool-{index}"))
                    .spawn(move || inner.worker_loop(index))
                    .expect("spawning a pool worker thread"),
            );
        }
        Pool {
            _shutdown: Some(Arc::new(PoolShutdown {
                inner: inner.clone(),
                handles: Mutex::new(handles),
            })),
            inner: Some(inner),
        }
    }

    /// The inline pool: no worker threads, every task runs immediately on the
    /// thread that spawns it. This is the sequential degradation the
    /// equivalence tests compare the concurrent paths against.
    pub fn inline() -> Self {
        Pool {
            inner: None,
            _shutdown: None,
        }
    }

    /// Number of threads that may run tasks concurrently (1 for the inline
    /// pool).
    pub fn thread_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.queues.len(),
            None => 1,
        }
    }

    /// Returns `true` if this pool executes tasks inline on the caller.
    pub fn is_inline(&self) -> bool {
        self.inner.is_none()
    }

    /// Runs `f` with a [`Scope`] handle and blocks until every task spawned
    /// on the scope has completed. While blocked, the calling thread runs
    /// queued tasks itself (helping), so a scope opened from inside a worker
    /// cannot deadlock the pool.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any spawned task after all of them have
    /// settled.
    pub fn scope<R>(&self, f: impl FnOnce(&Scope<'_>) -> R) -> R {
        self.scope_impl(f, true)
    }

    fn scope_impl<R>(&self, f: impl FnOnce(&Scope<'_>) -> R, help: bool) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                progress: Mutex::new(ScopeProgress {
                    pending: 0,
                    panic: None,
                }),
                done: Condvar::new(),
            }),
        };
        let out = f(&scope);
        if let Some(inner) = &self.inner {
            let worker = WORKER
                .with(|w| *w.borrow())
                .and_then(|(pool, index)| (pool == Arc::as_ptr(inner) as usize).then_some(index));
            loop {
                if help {
                    if let Some(task) = inner.take_task(worker) {
                        let _ = catch_unwind(AssertUnwindSafe(task));
                        continue;
                    }
                }
                let progress = lock(&scope.state.progress);
                if progress.pending == 0 {
                    break;
                }
                // The timeout covers the race between finding no runnable
                // task and a running task spawning a new one: worst case the
                // helper naps 1 ms before noticing; completion wakes it
                // immediately through `done`.
                let (guard, _timeout) = scope
                    .state
                    .done
                    .wait_timeout(progress, Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner);
                drop(guard);
            }
            let panic = lock(&scope.state.progress).panic.take();
            if let Some(payload) = panic {
                resume_unwind(payload);
            }
        }
        out
    }

    /// Applies `f` to every item, in parallel, and returns the items in their
    /// original order. `f` receives the item's index alongside the item. On
    /// the inline pool this is exactly a sequential indexed for-loop.
    pub fn map<T, F>(&self, mut items: Vec<T>, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize, &mut T) + Send + Sync + 'static,
    {
        if self.inner.is_none() || items.len() <= 1 {
            for (index, item) in items.iter_mut().enumerate() {
                f(index, item);
            }
            return items;
        }
        let f = Arc::new(f);
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new(items.into_iter().map(|t| Mutex::new(Some(t))).collect());
        self.scope(|scope| {
            for index in 0..slots.len() {
                let slots = slots.clone();
                let f = f.clone();
                scope.spawn(move || {
                    let mut slot = lock(&slots[index]);
                    if let Some(item) = slot.as_mut() {
                        f(index, item);
                    }
                });
            }
        });
        let Ok(slots) = Arc::try_unwrap(slots) else {
            panic!("scope joined every task");
        };
        slots
            .into_iter()
            .map(|slot| lock_into_inner(slot).expect("map task neither ran nor panicked"))
            .collect()
    }

    /// Runs `f(worker_index)` once on **every** worker thread and returns the
    /// results ordered by worker index — the instrument behind per-worker
    /// plan-cache statistics. An internal barrier holds each worker until all
    /// of them have picked a broadcast task up, which is what forces the
    /// tasks onto distinct workers; the call therefore waits for every worker
    /// to become free. On the inline pool, `f(0)` runs once on the caller.
    pub fn broadcast<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        let Some(inner) = &self.inner else {
            return vec![f(0)];
        };
        let workers = inner.queues.len();
        let barrier = Arc::new(Barrier::new(workers));
        let f = Arc::new(f);
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new((0..workers).map(|_| Mutex::new(None)).collect());
        // No helping here: the caller must not steal a broadcast task, or the
        // barrier would wait for a worker that never gets one.
        self.scope_impl(
            |scope| {
                for _ in 0..workers {
                    let barrier = barrier.clone();
                    let f = f.clone();
                    let slots = slots.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        let index = WORKER
                            .with(|w| *w.borrow())
                            .map(|(_, index)| index)
                            .expect("broadcast task runs on a worker");
                        *lock(&slots[index]) = Some(f(index));
                    });
                }
            },
            false,
        );
        let Ok(slots) = Arc::try_unwrap(slots) else {
            panic!("scope joined every task");
        };
        slots
            .into_iter()
            .map(|slot| lock_into_inner(slot).expect("every worker ran the broadcast"))
            .collect()
    }
}

fn lock_into_inner<T>(mutex: Mutex<T>) -> T {
    mutex.into_inner().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

struct ScopeProgress {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct ScopeState {
    progress: Mutex<ScopeProgress>,
    done: Condvar,
}

/// Spawn handle passed to the closure of [`Pool::scope`]; every task spawned
/// through it is joined before `scope` returns.
pub struct Scope<'p> {
    pool: &'p Pool,
    state: Arc<ScopeState>,
}

impl Scope<'_> {
    /// Spawns a task on the pool. On the inline pool the task runs
    /// immediately, before `spawn` returns.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let Some(inner) = &self.pool.inner else {
            task();
            return;
        };
        lock(&self.state.progress).pending += 1;
        let state = self.state.clone();
        let task: Task = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            let mut progress = lock(&state.progress);
            progress.pending -= 1;
            if let Err(payload) = result {
                progress.panic.get_or_insert(payload);
            }
            drop(progress);
            state.done.notify_all();
        });
        let own = WORKER
            .with(|w| *w.borrow())
            .filter(|&(pool, _)| pool == Arc::as_ptr(inner) as usize);
        match own {
            Some((_, index)) => lock(&inner.queues[index]).push_back(task),
            None => lock(&inner.injector).push_back(task),
        }
        inner.notify();
    }
}

// ---------------------------------------------------------------------------
// Ambient pool resolution
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, built on first use with [`thread_budget`] workers
/// (unless [`configure_global`] ran first). On a single-core machine this is
/// the inline pool.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(thread_budget()))
}

/// Sizes the global pool explicitly (the `--threads` command-line knob).
/// Returns `false` when the global pool was already built — the existing
/// pool keeps serving; callers that need a differently sized pool for one
/// operation should [`install`] a local one instead.
pub fn configure_global(threads: usize) -> bool {
    GLOBAL.set(Pool::new(threads)).is_ok()
}

/// The ambient pool of the calling thread: the innermost [`install`]ed pool,
/// or [`global`] when none is installed.
pub fn current() -> Pool {
    CURRENT
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| global().clone())
}

/// Runs `f` with `pool` installed as the calling thread's ambient pool (the
/// one [`current`] resolves), restoring the previous ambient pool afterwards
/// — including on unwind.
pub fn install<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            CURRENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    CURRENT.with(|stack| stack.borrow_mut().push(pool.clone()));
    let _guard = Uninstall;
    f()
}

/// Runs `f` with the [inline](Pool::inline) pool installed: every ambient
/// parallel construct inside `f` degrades to sequential execution. The
/// cluster engine wraps shard tick processing in this when it already runs
/// one worker per core, so FFT-level and shard-level parallelism never
/// multiply.
pub fn install_inline<R>(f: impl FnOnce() -> R) -> R {
    install(&Pool::inline(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parse_threads_accepts_counts_and_degrades_gracefully() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("auto")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("not-a-number")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        // Absurd counts clamp instead of spawning a million threads.
        assert_eq!(parse_threads(Some("1000000")), Some(MAX_THREADS));
    }

    #[test]
    fn budget_is_at_least_one() {
        assert!(thread_budget() >= 1);
    }

    #[test]
    fn inline_pool_runs_tasks_immediately_in_order() {
        let pool = Pool::new(1);
        assert!(pool.is_inline());
        assert_eq!(pool.thread_count(), 1);
        let order = std::cell::RefCell::new(Vec::new());
        pool.scope(|_| order.borrow_mut().push(0));
        // Inline spawn executes before the next statement — observable
        // through non-Sync state on the calling thread.
        let seen: Vec<usize> = (0..4).collect();
        let mut got = Vec::new();
        for i in seen {
            got.push(i);
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_joins_all_tasks() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|scope| {
            for _ in 0..64 {
                let counter = counter.clone();
                scope.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn tasks_spawned_from_tasks_are_joined_too() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|scope| {
            // The outer tasks spawn inner work onto their own worker deque —
            // the work-stealing path — and the scope must wait for all of it.
            for _ in 0..4 {
                let counter = counter.clone();
                let state = scope.state.clone();
                let pool = scope.pool.clone();
                scope.spawn(move || {
                    let inner_scope = Scope { pool: &pool, state };
                    for _ in 0..8 {
                        let counter = counter.clone();
                        inner_scope.spawn(move || {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4 * 8 + 4);
    }

    #[test]
    fn map_preserves_order_and_applies_indices() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let items: Vec<usize> = (0..97).collect();
            let out = pool.map(items, |index, item| {
                *item = *item * 10 + index % 10;
            });
            for (index, item) in out.iter().enumerate() {
                assert_eq!(*item, index * 10 + index % 10, "threads={threads}");
            }
        }
    }

    #[test]
    fn scope_propagates_task_panics() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("task exploded"));
                scope.spawn(|| {});
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps serving.
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|scope| {
            let counter = counter.clone();
            scope.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn broadcast_reaches_every_worker_exactly_once() {
        let pool = Pool::new(3);
        let results = pool.broadcast(|index| index);
        assert_eq!(results, vec![0, 1, 2]);
        let inline = Pool::inline();
        assert_eq!(inline.broadcast(|index| index), vec![0]);
    }

    #[test]
    fn broadcast_runs_on_distinct_threads() {
        let pool = Pool::new(4);
        let ids = pool.broadcast(|_| format!("{:?}", std::thread::current().id()));
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn install_overrides_and_restores_the_ambient_pool() {
        let outer = current();
        let pool = Pool::new(2);
        let inner_count = install(&pool, || current().thread_count());
        assert_eq!(inner_count, 2);
        let inline_count = install_inline(|| current().thread_count());
        assert_eq!(inline_count, 1);
        assert_eq!(current().thread_count(), outer.thread_count());
    }

    #[test]
    fn install_restores_on_unwind() {
        let before = current().thread_count();
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            install(&pool, || panic!("inside install"));
        }));
        assert!(result.is_err());
        assert_eq!(current().thread_count(), before);
    }

    #[test]
    fn dropping_the_last_handle_joins_the_workers() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|scope| {
            let counter = counter.clone();
            scope.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        drop(pool); // must not hang
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
