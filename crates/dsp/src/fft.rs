//! Fast Fourier transform implemented from scratch.
//!
//! Three execution strategies are selected automatically by [`Fft`]:
//!
//! * an iterative **mixed-radix Cooley–Tukey** transform for lengths whose
//!   prime factors are all small (2, 3, 5, 7), with specialised radix-4 and
//!   radix-2 butterflies — power-of-two lengths run as radix-4 stages plus at
//!   most one radix-2 fixup stage;
//! * **Bluestein's algorithm** (chirp-z transform) for every other length,
//!   which reduces an arbitrary-length DFT to a power-of-two convolution with
//!   chirp and filter tables precomputed in the plan;
//! * a **four-step (Bailey) decomposition** for composite lengths at or above
//!   [`MIN_CONCURRENT_SIZE`]: `N = n1·n2`, column FFTs of length `n2`, a
//!   twiddle scale by `W_N^{j1·k2}`, then row FFTs of length `n1`. The column
//!   and row transforms are independent, so they run as parallel tasks on the
//!   ambient [`crate::pool`] thread pool — and because every per-element
//!   operation is identical no matter how the rows are grouped onto workers,
//!   the result is **bit-for-bit identical across thread counts** (the
//!   inline 1-thread pool runs the exact same arithmetic sequentially).
//!   Lengths below the cutoff keep the sequential kernels untouched, so the
//!   FTIO hot lengths (a few thousand points) are byte-identical to the
//!   pre-parallel code path. A Bluestein plan whose power-of-two convolution
//!   length reaches the cutoff gets a four-step inner plan automatically, so
//!   large prime lengths parallelise too.
//!
//! All transforms are unnormalised in the forward direction and divide by `N`
//! in the inverse direction, so `ifft(fft(x)) == x`.
//!
//! Execution runs on a **deinterleaved (structure-of-arrays) complex layout**
//! ([`crate::complex::SplitComplex`]): the butterfly kernels read and write
//! separate contiguous `re`/`im` planes with the twiddle tables stored the
//! same way, so the inner `k`-loops autovectorise on stable Rust without any
//! `std::simd`. [`Fft::process_split`] is the native plane entry point; the
//! interleaved `[Complex]` API ([`Fft::process`]) converts at the boundary
//! using pooled plane buffers from the thread-local
//! [`crate::plan_cache`], so steady-state execution still performs **no
//! allocations**. The convenience wrappers [`fft`], [`ifft`] and [`fft_real`]
//! ride the same cache, so repeated calls at the same length neither rebuild
//! plans nor allocate.
//!
//! The FTIO pipeline (see `ftio-core`) applies the DFT to bandwidth signals
//! whose length `N = Δt · fs` is rarely a power of two, which is why
//! arbitrary-length support matters here. Real-valued signals should prefer
//! [`crate::rfft::RealFft`], which halves the work by exploiting the conjugate
//! symmetry of the spectrum.

use std::sync::Arc;

use crate::complex::{Complex, SplitComplex};
use crate::plan_cache;
use crate::pool;

/// Transforms of composite length at or above this execute as a four-step
/// decomposition whose column/row sub-transforms run as parallel tasks on the
/// ambient [`crate::pool`]. Below it, the sequential mixed-radix/Bluestein
/// kernels run unchanged — the FTIO hot lengths (≈ 8k points and the 16k
/// Bluestein convolutions they imply) all sit below the cutoff, where task
/// overhead would outweigh the win.
pub const MIN_CONCURRENT_SIZE: usize = 32_768;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Time domain to frequency domain (negative exponent).
    Forward,
    /// Frequency domain to time domain (positive exponent, output scaled by `1/N`).
    Inverse,
}

impl Direction {
    #[inline]
    pub(crate) fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A reusable FFT plan for a fixed transform length.
///
/// Creating a plan precomputes twiddle factors, the digit-reversal
/// permutation, and (for the Bluestein path) the chirp and filter tables.
/// Execution draws pooled plane buffers from [`crate::plan_cache`], so
/// steady-state processing does not allocate.
///
/// # Examples
///
/// ```
/// use ftio_dsp::{Complex, Fft, Direction};
///
/// let fft = Fft::new(8);
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::from_real(i as f64)).collect();
/// let original = data.clone();
/// fft.process(&mut data, Direction::Forward);
/// fft.process(&mut data, Direction::Inverse);
/// for (a, b) in data.iter().zip(original.iter()) {
///     assert!((a.re - b.re).abs() < 1e-9);
///     assert!(a.im.abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Fft {
    len: usize,
    kind: PlanKind,
}

#[derive(Clone, Debug)]
enum PlanKind {
    /// Lengths 0 and 1 are identity transforms.
    Trivial,
    /// Iterative mixed-radix Cooley–Tukey over radices 4, 2, 3, 5, 7.
    Smooth(SmoothPlan),
    /// Bluestein chirp-z transform via a power-of-two convolution.
    Bluestein(BluesteinPlan),
    /// Four-step `N = n1·n2` decomposition with parallel column/row FFTs.
    FourStep(FourStepPlan),
}

/// Precomputed state for the iterative mixed-radix transform.
#[derive(Clone, Debug)]
struct SmoothPlan {
    /// Butterfly stages in execution order (sub-transform size grows).
    stages: Vec<Stage>,
    /// Digit-reversal gather: slot `t` of the work buffer reads input `perm[t]`.
    perm: Vec<u32>,
}

/// One mixed-radix butterfly stage combining `radix` sub-transforms of size
/// `m` into transforms of size `radix * m`.
#[derive(Clone, Debug)]
struct Stage {
    radix: usize,
    m: usize,
    /// Deinterleaved inter-stage twiddles `W_M^{s·k}` (`M = radix·m`), real
    /// plane. Layout: one contiguous run of `m` values per butterfly input,
    /// `tw_re[(s−1)·m + k]` for `s in 1..radix`, `k in 0..m` — so every
    /// kernel's `k`-loop reads its twiddles sequentially (SoA, vectorisable).
    tw_re: Vec<f64>,
    /// Deinterleaved inter-stage twiddles, imaginary plane (same layout).
    tw_im: Vec<f64>,
    /// Intra-butterfly roots `W_radix^{s·q}` with layout `roots[s·radix + q]`
    /// (forward sign); only used by the generic odd-radix kernel.
    roots: Vec<Complex>,
}

#[derive(Clone, Debug)]
struct BluesteinPlan {
    /// Convolution length (power of two >= 2*len - 1).
    conv_len: usize,
    /// Chirp sequence `exp(-i*pi*n^2/len)` for n in 0..len (forward sign),
    /// stored as deinterleaved planes so the elementwise chirp multiplies run
    /// on contiguous `f64` streams.
    chirp: SplitComplex,
    /// Forward FFT of the zero-padded, conjugated chirp filter (planes).
    filter_fft: SplitComplex,
    /// Inner power-of-two plan used for the convolution.
    inner: Box<Fft>,
}

/// Precomputed state for the four-step decomposition `N = n1·n2`.
///
/// With input index `n = n1·j2 + j1` and output index `k = n2·k1 + k2`:
///
/// ```text
/// X[n2·k1 + k2] = Σ_{j1} W_{n1}^{j1·k1} · W_N^{j1·k2} · (Σ_{j2} x[n1·j2 + j1] · W_{n2}^{j2·k2})
/// ```
///
/// i.e. `n1` independent column FFTs of length `n2`, an elementwise twiddle
/// by `W_N^{j1·k2}`, then `n2` independent row FFTs of length `n1`. The
/// sub-plans are shared via `Arc` so execution can hand them to pool tasks
/// without copying their tables.
#[derive(Clone, Debug)]
struct FourStepPlan {
    /// Row-transform length (number of columns).
    n1: usize,
    /// Column-transform length.
    n2: usize,
    /// Length-`n2` plan for the column transforms.
    col: Arc<Fft>,
    /// Length-`n1` plan for the row transforms.
    row: Arc<Fft>,
    /// Inter-stage twiddles `W_N^{j1·k2}` (forward sign), row-major
    /// `twiddle[j1·n2 + k2]`, deinterleaved planes.
    twiddle: Arc<SplitComplex>,
}

impl Fft {
    /// Creates a plan for transforms of length `len`.
    ///
    /// Prefer [`crate::plan_cache::fft_plan`] on hot paths: it memoises plans
    /// per thread so repeated transforms of the same length reuse all tables.
    pub fn new(len: usize) -> Self {
        Fft::new_with_cutoff(len, MIN_CONCURRENT_SIZE)
    }

    /// Creates a plan with an explicit four-step cutoff instead of
    /// [`MIN_CONCURRENT_SIZE`] — composite lengths at or above `cutoff` use
    /// the (potentially parallel) four-step decomposition, and the cutoff
    /// propagates into Bluestein convolution sub-plans.
    ///
    /// This exists so tests and benchmarks can exercise the four-step path at
    /// cheap lengths (low cutoff) or force the sequential kernels at any
    /// length (`usize::MAX`); production callers should use [`Fft::new`].
    pub fn new_with_cutoff(len: usize, cutoff: usize) -> Self {
        let kind = if len <= 1 {
            PlanKind::Trivial
        } else {
            let factors = factorize(len);
            if len >= cutoff && four_step_split(len, &factors).is_some() {
                PlanKind::FourStep(FourStepPlan::new(len, &factors, cutoff))
            } else if factors.iter().all(|&f| f <= 7) {
                PlanKind::Smooth(SmoothPlan::new(len, &factors))
            } else {
                PlanKind::Bluestein(BluesteinPlan::new(len, cutoff))
            }
        };
        Fft { len, kind }
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Executes the transform in place on an interleaved buffer.
    ///
    /// Work buffers come from the thread-local pool
    /// ([`crate::plan_cache::take_split`]), so steady-state calls do not
    /// allocate.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn process(&self, data: &mut [Complex], direction: Direction) {
        assert_eq!(
            data.len(),
            self.len,
            "FFT plan length {} does not match buffer length {}",
            self.len,
            data.len()
        );
        self.execute_interleaved(data, direction);
    }

    /// Executes the transform in place on deinterleaved planes — the layout
    /// the butterfly kernels natively run on. This is the allocation-free hot
    /// path (apart from one pooled gather buffer): no interleave/deinterleave
    /// conversion happens at all.
    ///
    /// # Panics
    ///
    /// Panics if either plane's length differs from the plan length.
    pub fn process_split(&self, re: &mut [f64], im: &mut [f64], direction: Direction) {
        assert_eq!(
            re.len(),
            self.len,
            "FFT plan length {} does not match re-plane length {}",
            self.len,
            re.len()
        );
        assert_eq!(
            im.len(),
            self.len,
            "FFT plan length {} does not match im-plane length {}",
            self.len,
            im.len()
        );
        let conj = direction == Direction::Inverse;
        self.process_split_raw(re, im, conj);
        if conj && !matches!(self.kind, PlanKind::Trivial) {
            normalize_split(re, im);
        }
    }

    /// The unnormalised plane transform shared by every entry point: runs the
    /// plan kernels in place without the inverse `1/N` scale (the callers
    /// apply it), with `conj` selecting the inverse (conjugated-twiddle)
    /// direction. Four-step sub-transforms run through this so the scale is
    /// applied exactly once, at the outermost level.
    pub(crate) fn process_split_raw(&self, re: &mut [f64], im: &mut [f64], conj: bool) {
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Smooth(plan) => {
                let mut scratch = plan_cache::take_split(self.len);
                plan.gather_planes(re, im, &mut scratch);
                plan.run_stages(&mut scratch.re, &mut scratch.im, conj);
                re.copy_from_slice(&scratch.re);
                im.copy_from_slice(&scratch.im);
                plan_cache::give_split(scratch);
            }
            PlanKind::Bluestein(plan) => {
                let direction = if conj {
                    Direction::Inverse
                } else {
                    Direction::Forward
                };
                plan.process_split(re, im, direction);
            }
            PlanKind::FourStep(plan) => plan.run(re, im, conj),
        }
    }

    /// Shared interleaved execution: deinterleave into pooled planes, run the
    /// plane kernels, reinterleave. The smooth path fuses the deinterleave
    /// with the digit-reversal gather (one pass instead of two).
    fn execute_interleaved(&self, data: &mut [Complex], direction: Direction) {
        let conj = direction == Direction::Inverse;
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Smooth(plan) => {
                let mut work = plan_cache::take_split(self.len);
                plan.gather_interleaved(data, &mut work);
                plan.run_stages(&mut work.re, &mut work.im, conj);
                if conj {
                    normalize_split(&mut work.re, &mut work.im);
                }
                work.copy_to_interleaved(data);
                plan_cache::give_split(work);
            }
            PlanKind::Bluestein(_) | PlanKind::FourStep(_) => {
                let mut work = plan_cache::take_split(self.len);
                work.copy_from_interleaved(data);
                self.process_split_raw(&mut work.re, &mut work.im, conj);
                if conj {
                    normalize_split(&mut work.re, &mut work.im);
                }
                work.copy_to_interleaved(data);
                plan_cache::give_split(work);
            }
        }
    }

    /// Convenience wrapper: forward-transform a copy of `data` and return it.
    pub fn forward(&self, data: &[Complex]) -> Vec<Complex> {
        let mut buf = data.to_vec();
        self.process(&mut buf, Direction::Forward);
        buf
    }

    /// Convenience wrapper: inverse-transform a copy of `data` and return it.
    pub fn inverse(&self, data: &[Complex]) -> Vec<Complex> {
        let mut buf = data.to_vec();
        self.process(&mut buf, Direction::Inverse);
        buf
    }
}

impl SmoothPlan {
    fn new(len: usize, factors: &[usize]) -> Self {
        // Execution order: odd radices first (smallest sub-transforms), then
        // the radix-2 fixup (when the power of two is odd), then radix-4
        // stages — so the large, cache-hungry stages use the cheapest kernel.
        let twos = factors.iter().filter(|&&f| f == 2).count();
        let mut radices: Vec<usize> = factors.iter().copied().filter(|&f| f != 2).collect();
        if twos % 2 == 1 {
            radices.push(2);
        }
        radices.extend(std::iter::repeat(4).take(twos / 2));

        let mut stages = Vec::with_capacity(radices.len());
        let mut m = 1usize;
        for &radix in &radices {
            let big_m = radix * m;
            let mut tw_re = Vec::with_capacity((radix - 1) * m);
            let mut tw_im = Vec::with_capacity((radix - 1) * m);
            for s in 1..radix {
                for k in 0..m {
                    let angle = -2.0 * std::f64::consts::PI * (s * k) as f64 / big_m as f64;
                    tw_re.push(angle.cos());
                    tw_im.push(angle.sin());
                }
            }
            let mut roots = Vec::with_capacity(radix * radix);
            for s in 0..radix {
                for q in 0..radix {
                    let angle =
                        -2.0 * std::f64::consts::PI * ((s * q) % radix) as f64 / radix as f64;
                    roots.push(Complex::cis(angle));
                }
            }
            stages.push(Stage {
                radix,
                m,
                tw_re,
                tw_im,
                roots,
            });
            m = big_m;
        }
        debug_assert_eq!(m, len);

        // Digit-reversal permutation: decimation happens in the *reverse* of
        // the execution order, so peel digits from the last stage inwards.
        let dec_radices: Vec<usize> = radices.iter().rev().copied().collect();
        let mut perm = Vec::with_capacity(len);
        for i in 0..len {
            let mut rem = i;
            let mut pos = 0usize;
            let mut span = len;
            for &f in &dec_radices {
                span /= f;
                pos += (rem % f) * span;
                rem /= f;
            }
            perm.push(pos as u32);
        }
        // `perm` maps source -> target; invert it into a gather table
        // (target -> source) so execution reads sequentially from scratch.
        let mut gather = vec![0u32; len];
        for (src, &dst) in perm.iter().enumerate() {
            gather[dst as usize] = src as u32;
        }
        SmoothPlan {
            stages,
            perm: gather,
        }
    }

    /// Gathers the digit-reversed input from an interleaved buffer into
    /// planes (deinterleave and permutation fused into one pass).
    fn gather_interleaved(&self, data: &[Complex], out: &mut SplitComplex) {
        for ((slot_re, slot_im), &src) in out
            .re
            .iter_mut()
            .zip(out.im.iter_mut())
            .zip(self.perm.iter())
        {
            let z = data[src as usize];
            *slot_re = z.re;
            *slot_im = z.im;
        }
    }

    /// Gathers the digit-reversed input from source planes into `out`.
    fn gather_planes(&self, re: &[f64], im: &[f64], out: &mut SplitComplex) {
        for ((slot_re, slot_im), &src) in out
            .re
            .iter_mut()
            .zip(out.im.iter_mut())
            .zip(self.perm.iter())
        {
            *slot_re = re[src as usize];
            *slot_im = im[src as usize];
        }
    }

    /// Runs every butterfly stage in place on the (already digit-reversed)
    /// planes.
    fn run_stages(&self, re: &mut [f64], im: &mut [f64], conj: bool) {
        for stage in &self.stages {
            stage_in_place_split(re, im, stage, conj);
        }
    }
}

/// One in-place mixed-radix butterfly stage on deinterleaved planes. The
/// radix-2 and radix-4 bulk kernels loop over contiguous `f64` chunk slices
/// with sequential twiddle reads, which is the shape LLVM autovectorises.
fn stage_in_place_split(re: &mut [f64], im: &mut [f64], stage: &Stage, conj: bool) {
    match stage.radix {
        2 => radix2_stage(re, im, stage, conj),
        4 => radix4_stage(re, im, stage, conj),
        _ => generic_stage(re, im, stage, conj),
    }
}

fn radix2_stage(re: &mut [f64], im: &mut [f64], stage: &Stage, conj: bool) {
    let m = stage.m;
    let sign = if conj { -1.0 } else { 1.0 };
    let wr = &stage.tw_re[..m];
    let wi = &stage.tw_im[..m];
    for (rb, ib) in re.chunks_exact_mut(2 * m).zip(im.chunks_exact_mut(2 * m)) {
        let (r0, r1) = rb.split_at_mut(m);
        let (i0, i1) = ib.split_at_mut(m);
        for k in 0..m {
            let twr = wr[k];
            let twi = sign * wi[k];
            let tr = r1[k] * twr - i1[k] * twi;
            let ti = r1[k] * twi + i1[k] * twr;
            r1[k] = r0[k] - tr;
            i1[k] = i0[k] - ti;
            r0[k] += tr;
            i0[k] += ti;
        }
    }
}

fn radix4_stage(re: &mut [f64], im: &mut [f64], stage: &Stage, conj: bool) {
    let m = stage.m;
    let sign = if conj { -1.0 } else { 1.0 };
    let w1r = &stage.tw_re[..m];
    let w1i = &stage.tw_im[..m];
    let w2r = &stage.tw_re[m..2 * m];
    let w2i = &stage.tw_im[m..2 * m];
    let w3r = &stage.tw_re[2 * m..3 * m];
    let w3i = &stage.tw_im[2 * m..3 * m];
    for (rb, ib) in re.chunks_exact_mut(4 * m).zip(im.chunks_exact_mut(4 * m)) {
        let (r0, rest) = rb.split_at_mut(m);
        let (r1, rest) = rest.split_at_mut(m);
        let (r2, r3) = rest.split_at_mut(m);
        let (i0, rest) = ib.split_at_mut(m);
        let (i1, rest) = rest.split_at_mut(m);
        let (i2, i3) = rest.split_at_mut(m);
        for k in 0..m {
            let v0r = r0[k];
            let v0i = i0[k];
            let (x1r, x1i, t1r, t1i) = (r1[k], i1[k], w1r[k], sign * w1i[k]);
            let v1r = x1r * t1r - x1i * t1i;
            let v1i = x1r * t1i + x1i * t1r;
            let (x2r, x2i, t2wr, t2wi) = (r2[k], i2[k], w2r[k], sign * w2i[k]);
            let v2r = x2r * t2wr - x2i * t2wi;
            let v2i = x2r * t2wi + x2i * t2wr;
            let (x3r, x3i, t3wr, t3wi) = (r3[k], i3[k], w3r[k], sign * w3i[k]);
            let v3r = x3r * t3wr - x3i * t3wi;
            let v3i = x3r * t3wi + x3i * t3wr;

            let t0r = v0r + v2r;
            let t0i = v0i + v2i;
            let t1br = v0r - v2r;
            let t1bi = v0i - v2i;
            let t2r = v1r + v3r;
            let t2i = v1i + v3i;
            // (v1 - v3) rotated by −i (forward) / +i (inverse).
            let dr = v1r - v3r;
            let di = v1i - v3i;
            let t3r = sign * di;
            let t3i = -sign * dr;

            r0[k] = t0r + t2r;
            i0[k] = t0i + t2i;
            r1[k] = t1br + t3r;
            i1[k] = t1bi + t3i;
            r2[k] = t0r - t2r;
            i2[k] = t0i - t2i;
            r3[k] = t1br - t3r;
            i3[k] = t1bi - t3i;
        }
    }
}

/// Generic odd-radix (3, 5, 7) kernel: butterfly inputs are cached in small
/// stack arrays, so the strided writes never overwrite unread inputs.
fn generic_stage(re: &mut [f64], im: &mut [f64], stage: &Stage, conj: bool) {
    let m = stage.m;
    let r = stage.radix;
    let big_m = r * m;
    let sign = if conj { -1.0 } else { 1.0 };
    let mut vr = [0.0f64; 7];
    let mut vi = [0.0f64; 7];
    for (rb, ib) in re.chunks_exact_mut(big_m).zip(im.chunks_exact_mut(big_m)) {
        for k in 0..m {
            vr[0] = rb[k];
            vi[0] = ib[k];
            for s in 1..r {
                let twr = stage.tw_re[(s - 1) * m + k];
                let twi = sign * stage.tw_im[(s - 1) * m + k];
                let xr = rb[s * m + k];
                let xi = ib[s * m + k];
                vr[s] = xr * twr - xi * twi;
                vi[s] = xr * twi + xi * twr;
            }
            for q in 0..r {
                let mut ar = vr[0];
                let mut ai = vi[0];
                for s in 1..r {
                    let root = stage.roots[s * r + q];
                    let twr = root.re;
                    let twi = sign * root.im;
                    ar += vr[s] * twr - vi[s] * twi;
                    ai += vr[s] * twi + vi[s] * twr;
                }
                rb[q * m + k] = ar;
                ib[q * m + k] = ai;
            }
        }
    }
}

impl BluesteinPlan {
    /// Builds the chirp/filter tables; `cutoff` propagates the four-step
    /// threshold into the power-of-two convolution plan, so large prime
    /// lengths inherit the parallel path through their convolution.
    fn new(len: usize, cutoff: usize) -> Self {
        // The smallest power-of-two convolution length that makes the
        // circular convolution equal the linear one on the outputs we keep.
        let conv_len = (2 * len - 1).next_power_of_two();
        // Chirp: c_n = exp(-i * pi * n^2 / len). Computed with n^2 mod 2*len to
        // keep the argument small and avoid precision loss for large n.
        let mut chirp = SplitComplex::with_len(len);
        for n in 0..len {
            let sq = ((n as u128 * n as u128) % (2 * len as u128)) as f64;
            let angle = -std::f64::consts::PI * sq / len as f64;
            chirp.re[n] = angle.cos();
            chirp.im[n] = angle.sin();
        }
        // Filter b_n = conj(chirp), wrapped so that negative indices map to the
        // end of the buffer (circular convolution).
        let mut filter_fft = SplitComplex::with_len(conv_len);
        for n in 0..len {
            filter_fft.re[n] = chirp.re[n];
            filter_fft.im[n] = -chirp.im[n];
            if n != 0 {
                filter_fft.re[conv_len - n] = chirp.re[n];
                filter_fft.im[conv_len - n] = -chirp.im[n];
            }
        }
        let inner = Box::new(Fft::new_with_cutoff(conv_len, cutoff));
        inner.process_split(&mut filter_fft.re, &mut filter_fft.im, Direction::Forward);
        BluesteinPlan {
            conv_len,
            chirp,
            filter_fft,
            inner,
        }
    }

    fn process_split(&self, re: &mut [f64], im: &mut [f64], direction: Direction) {
        let n = re.len();
        let conv_len = self.conv_len;
        // The inverse transform conjugates the chirp — and the filter spectrum
        // (the filter is conjugate-symmetric by construction) — which on the
        // planes is just a sign on the imaginary parts.
        let cs = if direction == Direction::Inverse {
            -1.0
        } else {
            1.0
        };
        let mut a = plan_cache::take_split(conv_len);

        // a_n = x_n * chirp_n, zero-padded to the convolution length.
        for k in 0..n {
            let cr = self.chirp.re[k];
            let ci = cs * self.chirp.im[k];
            a.re[k] = re[k] * cr - im[k] * ci;
            a.im[k] = re[k] * ci + im[k] * cr;
        }
        a.re[n..conv_len].fill(0.0);
        a.im[n..conv_len].fill(0.0);

        self.inner
            .process_split(&mut a.re, &mut a.im, Direction::Forward);
        for k in 0..conv_len {
            let fr = self.filter_fft.re[k];
            let fi = cs * self.filter_fft.im[k];
            let xr = a.re[k];
            let xi = a.im[k];
            a.re[k] = xr * fr - xi * fi;
            a.im[k] = xr * fi + xi * fr;
        }
        self.inner
            .process_split(&mut a.re, &mut a.im, Direction::Inverse);

        for k in 0..n {
            let cr = self.chirp.re[k];
            let ci = cs * self.chirp.im[k];
            let xr = a.re[k];
            let xi = a.im[k];
            re[k] = xr * cr - xi * ci;
            im[k] = xr * ci + xi * cr;
        }
        plan_cache::give_split(a);
    }
}

/// One contiguous run of columns (stage 1) or rows (stage 2) of the four-step
/// matrix, owned by a single pool task. Ownership moves into the task and
/// back out through [`pool::Pool::map`], so no locking guards the planes.
struct FourStepGroup {
    /// First column/row index covered by this group.
    start: usize,
    /// Number of columns/rows in the group.
    count: usize,
    /// `count` transforms, row-major, deinterleaved.
    buf: SplitComplex,
}

impl FourStepPlan {
    fn new(len: usize, factors: &[usize], cutoff: usize) -> Self {
        let (n1, n2) =
            four_step_split(len, factors).expect("four-step requires a composite length");
        // Sub-plans inherit the cutoff: a very large transform decomposes
        // recursively, and test plans with a tiny cutoff exercise nesting.
        let col = Arc::new(Fft::new_with_cutoff(n2, cutoff));
        let row = Arc::new(Fft::new_with_cutoff(n1, cutoff));
        // W_N^{j1·k2} with the exponent reduced mod N before the angle is
        // formed, to keep precision at large N (same trick as the chirp).
        let mut twiddle = SplitComplex::with_len(len);
        for j1 in 0..n1 {
            let base = j1 * n2;
            for k2 in 0..n2 {
                let idx = ((j1 as u128 * k2 as u128) % len as u128) as f64;
                let angle = -2.0 * std::f64::consts::PI * idx / len as f64;
                twiddle.re[base + k2] = angle.cos();
                twiddle.im[base + k2] = angle.sin();
            }
        }
        FourStepPlan {
            n1,
            n2,
            col,
            row,
            twiddle: Arc::new(twiddle),
        }
    }

    /// Splits `0..total` into contiguous groups of roughly `total / (2 ·
    /// threads)` each, with every group's buffer drawn from the caller's
    /// scratch pool. Grouping only affects scheduling: no arithmetic crosses
    /// a group boundary, which is why results are bit-identical across
    /// thread counts.
    fn make_groups(total: usize, row_len: usize, pool: &pool::Pool) -> Vec<FourStepGroup> {
        let chunk = total.div_ceil(pool.thread_count() * 2).max(1);
        let mut groups = Vec::with_capacity(total.div_ceil(chunk));
        let mut start = 0;
        while start < total {
            let count = chunk.min(total - start);
            groups.push(FourStepGroup {
                start,
                count,
                buf: plan_cache::take_split(count * row_len),
            });
            start += count;
        }
        groups
    }

    /// Executes the unnormalised four-step transform in place on the ambient
    /// pool ([`pool::current`]): inline pool → sequential, identical
    /// arithmetic.
    fn run(&self, re: &mut [f64], im: &mut [f64], conj: bool) {
        let (n1, n2) = (self.n1, self.n2);
        let len = n1 * n2;
        let pool = pool::current();
        let sign = if conj { -1.0 } else { 1.0 };

        // Pool tasks are `'static`, so they cannot borrow `re`/`im`; the
        // input is copied once into a pooled buffer the tasks share
        // read-only. The copy is contiguous (cheap); the expensive strided
        // gathers happen inside the parallel tasks.
        let mut input = plan_cache::take_split(len);
        input.re.copy_from_slice(re);
        input.im.copy_from_slice(im);
        let input = Arc::new(input);

        // Stage 1: for each column j1, gather x[n1·j2 + j1], FFT (length n2),
        // then scale by W_N^{j1·k2}.
        let groups = Self::make_groups(n1, n2, &pool);
        let col = self.col.clone();
        let twiddle = self.twiddle.clone();
        let shared_input = input.clone();
        let cols = pool.map(groups, move |_, g: &mut FourStepGroup| {
            for local in 0..g.count {
                let j1 = g.start + local;
                let (bre, bim) = g.buf.planes_mut();
                let cre = &mut bre[local * n2..(local + 1) * n2];
                let cim = &mut bim[local * n2..(local + 1) * n2];
                for j2 in 0..n2 {
                    cre[j2] = shared_input.re[n1 * j2 + j1];
                    cim[j2] = shared_input.im[n1 * j2 + j1];
                }
                col.process_split_raw(cre, cim, conj);
                let twr = &twiddle.re[j1 * n2..(j1 + 1) * n2];
                let twi = &twiddle.im[j1 * n2..(j1 + 1) * n2];
                for k2 in 0..n2 {
                    let xr = cre[k2];
                    let xi = cim[k2];
                    let wr = twr[k2];
                    let wi = sign * twi[k2];
                    cre[k2] = xr * wr - xi * wi;
                    cim[k2] = xr * wi + xi * wr;
                }
            }
        });
        let Ok(input) = Arc::try_unwrap(input) else {
            panic!("four-step tasks released the shared input at join");
        };
        plan_cache::give_split(input);

        // Stage 2: for each output residue k2, gather the j1-th column
        // results, FFT (length n1). The concatenated stage-1 group buffers
        // already form the n1 × n2 intermediate matrix, so tasks read it in
        // place through the shared Vec instead of reassembling it.
        let cols = Arc::new(cols);
        let groups = Self::make_groups(n2, n1, &pool);
        let row = self.row.clone();
        let shared_cols = cols.clone();
        let rows = pool.map(groups, move |_, g: &mut FourStepGroup| {
            for local in 0..g.count {
                let k2 = g.start + local;
                let (bre, bim) = g.buf.planes_mut();
                let rre = &mut bre[local * n1..(local + 1) * n1];
                let rim = &mut bim[local * n1..(local + 1) * n1];
                let mut j1 = 0;
                for src in shared_cols.iter() {
                    for l in 0..src.count {
                        rre[j1] = src.buf.re[l * n2 + k2];
                        rim[j1] = src.buf.im[l * n2 + k2];
                        j1 += 1;
                    }
                }
                row.process_split_raw(rre, rim, conj);
            }
        });

        // Scatter: X[n2·k1 + k2] = R_{k2}[k1] (sequential on the caller —
        // the writes interleave across groups, so they cannot be split).
        for g in &rows {
            for local in 0..g.count {
                let k2 = g.start + local;
                let rre = &g.buf.re[local * n1..(local + 1) * n1];
                let rim = &g.buf.im[local * n1..(local + 1) * n1];
                for (k1, (&r, &i)) in rre.iter().zip(rim).enumerate() {
                    re[n2 * k1 + k2] = r;
                    im[n2 * k1 + k2] = i;
                }
            }
        }

        let Ok(cols) = Arc::try_unwrap(cols) else {
            panic!("four-step tasks released the stage-1 buffers at join");
        };
        for g in cols {
            plan_cache::give_split(g.buf);
        }
        for g in rows {
            plan_cache::give_split(g.buf);
        }
    }
}

/// Picks a balanced `N = n1·n2` split for the four-step decomposition —
/// `n1` is the largest divisor buildable from the prime factors that stays
/// at or below `√N` — or `None` when `len` is prime (no non-trivial split).
fn four_step_split(len: usize, factors: &[usize]) -> Option<(usize, usize)> {
    let target = integer_sqrt(len);
    let mut n1 = 1usize;
    for &f in factors.iter().rev() {
        if n1 * f <= target {
            n1 *= f;
        }
    }
    if n1 == 1 {
        // Every factor exceeds √N (e.g. 2·p with a huge prime p): fall back
        // to the smallest factor so the dominant side still decomposes.
        n1 = *factors.first()?;
    }
    if n1 <= 1 || n1 >= len {
        return None;
    }
    Some((n1, len / n1))
}

/// `⌊√n⌋` without floating-point edge cases.
fn integer_sqrt(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while r.saturating_mul(r) > n {
        r -= 1;
    }
    while (r + 1).saturating_mul(r + 1) <= n {
        r += 1;
    }
    r
}

/// Forward DFT of a real-valued signal, returning the full complex spectrum.
///
/// This is the historical full-spectrum entry point: the discretised bandwidth
/// signal is real, so the spectrum is conjugate-symmetric and only bins
/// `0..=N/2` carry independent information. Internally the transform runs
/// through the cached [`crate::rfft::RealFft`] fast path (an `N/2`-point
/// complex FFT for even `N`) and the redundant upper half is mirrored from the
/// lower bins. Callers that only need bins `0..=N/2` should use [`rfft`].
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len();
    let half = crate::rfft::rfft(signal);
    let mut full = Vec::with_capacity(n);
    full.extend_from_slice(&half);
    full.resize(n, Complex::ZERO);
    for k in 1..n.div_ceil(2) {
        full[n - k] = half[k].conj();
    }
    full
}

/// Forward half-spectrum DFT of a real-valued signal: bins `0..=N/2`.
///
/// Re-exported from [`mod@crate::rfft`]; see [`crate::rfft::RealFft`] for the
/// zero-allocation plan API.
pub use crate::rfft::rfft;

/// Forward FFT of a complex buffer (allocating convenience function).
///
/// Uses the thread-local [`crate::plan_cache`], so repeated calls at the same
/// length reuse the plan and its scratch buffers.
pub fn fft(signal: &[Complex]) -> Vec<Complex> {
    let mut buf = signal.to_vec();
    process_cached(&mut buf, Direction::Forward);
    buf
}

/// Inverse FFT of a complex buffer (allocating convenience function).
///
/// Uses the thread-local [`crate::plan_cache`], so repeated calls at the same
/// length reuse the plan and its scratch buffers.
pub fn ifft(spectrum: &[Complex]) -> Vec<Complex> {
    let mut buf = spectrum.to_vec();
    process_cached(&mut buf, Direction::Inverse);
    buf
}

/// Transforms `data` in place through the plan cache with pooled plane
/// buffers.
pub(crate) fn process_cached(data: &mut [Complex], direction: Direction) {
    let plan = plan_cache::fft_plan(data.len());
    plan.execute_interleaved(data, direction);
}

/// Naive `O(N^2)` DFT used as a cross-check in tests and for very short inputs.
pub fn dft_naive(signal: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = direction.sign();
    let mut out = vec![Complex::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in signal.iter().enumerate() {
            let angle = sign * 2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / n as f64;
            acc += x * Complex::cis(angle);
        }
        *out_k = acc;
    }
    if direction == Direction::Inverse {
        normalize(&mut out);
    }
    out
}

/// Returns the prime factorisation of `n` in non-decreasing order.
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            factors.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

pub(crate) fn normalize(data: &mut [Complex]) {
    let inv = 1.0 / data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(inv);
    }
}

/// `1/N` scaling of deinterleaved planes — two contiguous `f64` streams, the
/// vectorisable form of [`normalize`].
pub(crate) fn normalize_split(re: &mut [f64], im: &mut [f64]) {
    let inv = 1.0 / re.len() as f64;
    for x in re.iter_mut() {
        *x *= inv;
    }
    for x in im.iter_mut() {
        *x *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[0] = Complex::ONE;
        v
    }

    #[test]
    fn factorize_small_numbers() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        for &n in &[4usize, 8, 12, 15, 97, 128] {
            let spec = fft(&impulse(n));
            for x in spec {
                assert!((x.re - 1.0).abs() < 1e-9 && x.im.abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let n = 64;
        let signal = vec![Complex::from_real(2.5); n];
        let spec = fft(&signal);
        assert!((spec[0].re - 2.5 * n as f64).abs() < 1e-9);
        for x in &spec[1..] {
            assert!(x.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_cosine_peaks_at_its_frequency() {
        let n = 128;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        // Energy concentrated at bins k0 and N-k0, each with amplitude N/2.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-6);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-6);
        for (k, x) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(x.abs() < 1e-6, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        let n = 32;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        assert_spectra_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn all_power_of_two_lengths_match_naive_dft() {
        // Exercises the radix-4 kernel with (n = 4^k) and without (n = 2·4^k)
        // the radix-2 fixup stage.
        for &n in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.9).sin(), (i as f64 * 0.45).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn mixed_radix_matches_naive_dft() {
        for &n in &[6usize, 12, 15, 20, 21, 35, 60, 105, 210, 360] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.1).sin(), (i as f64 * 0.2).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft_for_prime_lengths() {
        for &n in &[11usize, 13, 17, 97, 101, 211] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-7);
        }
    }

    #[test]
    fn large_composite_with_big_prime_factor_uses_bluestein() {
        // 2 * 509 has a prime factor > 7 and must go through Bluestein.
        let n = 1018;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i % 10) as f64))
            .collect();
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        assert_spectra_close(&fast, &slow, 1e-6);
    }

    #[test]
    fn inverse_recovers_original_for_all_plan_kinds() {
        for &n in &[8usize, 12, 97, 100, 1018] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 / 3.0).cos()))
                .collect();
            let roundtrip = ifft(&fft(&signal));
            assert_spectra_close(&roundtrip, &signal, 1e-7);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 240;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let spec = fft_real(&signal);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-9);
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 90;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin() + 0.3).collect();
        let spec = fft_real(&signal);
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_and_one_length_transforms_are_identity() {
        assert!(fft(&[]).is_empty());
        let single = vec![Complex::new(3.0, -1.0)];
        assert_eq!(fft(&single), single);
        assert_eq!(ifft(&single), single);
    }

    #[test]
    #[should_panic(expected = "does not match buffer length")]
    fn mismatched_plan_length_panics() {
        let plan = Fft::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.process(&mut buf, Direction::Forward);
    }

    #[test]
    fn plan_reuse_gives_identical_results() {
        let n = 100;
        let signal: Vec<Complex> = (0..n).map(|i| Complex::from_real(i as f64)).collect();
        let plan = Fft::new(n);
        let a = plan.forward(&signal);
        let b = plan.forward(&signal);
        assert_spectra_close(&a, &b, 0.0);
    }

    #[test]
    fn split_plane_api_matches_interleaved_api() {
        // Smooth power-of-two, mixed-radix, odd-smooth, prime (Bluestein) and
        // composite-with-big-prime lengths, both directions.
        for &n in &[8usize, 12, 15, 60, 64, 97, 105, 360, 1018] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.77).sin(), (i as f64 * 0.31).cos()))
                .collect();
            let plan = Fft::new(n);
            for direction in [Direction::Forward, Direction::Inverse] {
                let mut interleaved = signal.clone();
                plan.process(&mut interleaved, direction);
                let mut re: Vec<f64> = signal.iter().map(|z| z.re).collect();
                let mut im: Vec<f64> = signal.iter().map(|z| z.im).collect();
                plan.process_split(&mut re, &mut im, direction);
                for (k, z) in interleaved.iter().enumerate() {
                    assert!(
                        (z.re - re[k]).abs() < 1e-12 && (z.im - im[k]).abs() < 1e-12,
                        "n={n} {direction:?} bin {k}: ({}, {}) vs {z:?}",
                        re[k],
                        im[k]
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match re-plane length")]
    fn mismatched_split_plane_length_panics() {
        let plan = Fft::new(8);
        let mut re = vec![0.0; 4];
        let mut im = vec![0.0; 4];
        plan.process_split(&mut re, &mut im, Direction::Forward);
    }

    #[test]
    fn in_place_and_copying_paths_agree() {
        for &n in &[16usize, 60, 97, 1018] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.13).cos(), (i as f64 * 0.29).sin()))
                .collect();
            let plan = Fft::new(n);
            let mut in_place = signal.clone();
            plan.process(&mut in_place, Direction::Forward);
            let copying = plan.forward(&signal);
            assert_spectra_close(&in_place, &copying, 0.0);
        }
    }

    #[test]
    fn four_step_split_is_balanced_and_rejects_primes() {
        for &(len, n1, n2) in &[
            (32_768usize, 128usize, 256usize), // 2^15: n1 = 128 ≤ √N < 256
            (4096, 64, 64),                    // perfect square
            (360, 15, 24),                     // mixed radix (greedy: 5·3 ≤ 18)
        ] {
            assert_eq!(
                four_step_split(len, &factorize(len)),
                Some((n1, n2)),
                "len={len}"
            );
        }
        // A length with every factor above √N still splits off its smallest.
        assert_eq!(four_step_split(1018, &factorize(1018)), Some((2, 509)));
        // Primes cannot split.
        assert_eq!(four_step_split(8191, &factorize(8191)), None);
        assert_eq!(integer_sqrt(0), 0);
        assert_eq!(integer_sqrt(35), 5);
        assert_eq!(integer_sqrt(36), 6);
    }

    #[test]
    fn plan_kind_selection_honours_the_cutoff() {
        // Composite at/above the cutoff → four-step; below → legacy kernels;
        // prime above the cutoff → Bluestein whose inner convolution is
        // four-step.
        assert!(matches!(
            Fft::new_with_cutoff(4096, 1024).kind,
            PlanKind::FourStep(_)
        ));
        assert!(matches!(
            Fft::new_with_cutoff(4096, 8192).kind,
            PlanKind::Smooth(_)
        ));
        // Hot FTIO lengths stay fully sequential at the default cutoff: 7919
        // is prime → Bluestein, and its convolution length 16384 < 32768 so
        // the inner plan keeps the smooth kernels.
        match &Fft::new(7919).kind {
            PlanKind::Bluestein(plan) => {
                assert!(matches!(plan.inner.kind, PlanKind::Smooth(_)));
            }
            other => panic!("7919 should be Bluestein, got {other:?}"),
        }
        match &Fft::new_with_cutoff(211, 64).kind {
            PlanKind::Bluestein(plan) => {
                assert!(
                    matches!(plan.inner.kind, PlanKind::FourStep(_)),
                    "conv plan should be four-step"
                );
            }
            other => panic!("211 should be Bluestein, got {other:?}"),
        }
    }

    #[test]
    fn four_step_matches_naive_dft() {
        // Power-of-two, mixed-radix and composite-with-big-prime lengths all
        // through the four-step path (cutoff forced low), checked against the
        // O(N²) reference.
        for &n in &[256usize, 360, 512, 1018] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.61).sin(), (i as f64 * 0.23).cos()))
                .collect();
            let plan = Fft::new_with_cutoff(n, 64);
            assert!(matches!(plan.kind, PlanKind::FourStep(_)), "n={n}");
            let fast = plan.forward(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-6);
            let roundtrip = plan.inverse(&fast);
            assert_spectra_close(&roundtrip, &signal, 1e-6);
        }
    }

    #[test]
    fn four_step_is_bit_identical_across_thread_counts() {
        use crate::pool::{install, Pool};
        // Mixed-radix (360·6), power-of-two, and prime-via-Bluestein lengths;
        // both directions; thread counts {1, 2, 4}. Equality is exact
        // (`==` on the f64 planes), which is the bit-for-bit contract: task
        // grouping must never change any per-element arithmetic.
        for &n in &[2160usize, 4096, 2053] {
            let plan = Fft::new_with_cutoff(n, 512);
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.19).cos()))
                .collect();
            for direction in [Direction::Forward, Direction::Inverse] {
                let mut reference: Option<(Vec<f64>, Vec<f64>)> = None;
                for threads in [1usize, 2, 4] {
                    let pool = Pool::new(threads);
                    let mut re: Vec<f64> = signal.iter().map(|z| z.re).collect();
                    let mut im: Vec<f64> = signal.iter().map(|z| z.im).collect();
                    install(&pool, || plan.process_split(&mut re, &mut im, direction));
                    match &reference {
                        None => reference = Some((re, im)),
                        Some((rre, rim)) => {
                            assert!(
                                re == *rre && im == *rim,
                                "n={n} {direction:?} threads={threads}: planes differ from 1-thread result"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn real_fft_is_bit_identical_across_thread_counts() {
        use crate::pool::{install, Pool};
        // r2c/c2r at a length whose inner complex plan (N/2 = 32768) sits
        // exactly at the default four-step cutoff — the production path large
        // real transforms take.
        let n = 65_536usize;
        let signal: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.013).sin() + 0.5 * (i as f64 * 0.11).cos())
            .collect();
        let plan = crate::rfft::RealFft::new(n);
        let mut reference = Vec::new();
        plan.process(&signal, &mut reference);
        let mut back_reference = Vec::new();
        plan.inverse(&reference, &mut back_reference);
        for threads in [2usize, 4] {
            let pool = Pool::new(threads);
            let (spec, back) = install(&pool, || {
                let mut spec = Vec::new();
                plan.process(&signal, &mut spec);
                let mut back = Vec::new();
                plan.inverse(&spec, &mut back);
                (spec, back)
            });
            assert!(spec == reference, "r2c differs at {threads} threads");
            assert!(back == back_reference, "c2r differs at {threads} threads");
        }
    }

    #[test]
    fn four_step_steady_state_builds_no_plans_and_grows_no_scratch() {
        use crate::pool::{install, Pool};
        let n = 4096usize;
        let plan = Fft::new_with_cutoff(n, 256);
        let pool = Pool::new(4);
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let run = |re: &mut Vec<f64>, im: &mut Vec<f64>| {
            install(&pool, || plan.process_split(re, im, Direction::Forward));
        };
        // Deterministic worker warm-up: pre-fill every worker's scratch pool
        // with full-size buffers so any later take pops one with sufficient
        // capacity, no matter which worker steals which task.
        pool.broadcast(move |_| {
            let bufs: Vec<_> = (0..8).map(|_| plan_cache::take_split(n)).collect();
            for buf in bufs {
                plan_cache::give_split(buf);
            }
        });
        // Caller warm-up: grow the caller-side group buffers.
        for _ in 0..3 {
            let mut re = signal.clone();
            let mut im = vec![0.0; n];
            run(&mut re, &mut im);
        }
        plan_cache::reset_stats();
        pool.broadcast(|_| plan_cache::reset_stats());
        for _ in 0..10 {
            let mut re = signal.clone();
            let mut im = vec![0.0; n];
            run(&mut re, &mut im);
        }
        let caller = plan_cache::stats();
        assert_eq!(caller.plans_built(), 0, "caller built plans: {caller:?}");
        assert_eq!(caller.scratch_grows, 0, "caller grew scratch: {caller:?}");
        for (worker, stats) in pool.broadcast(|_| plan_cache::stats()).iter().enumerate() {
            assert_eq!(
                stats.plans_built(),
                0,
                "worker {worker} built plans: {stats:?}"
            );
            assert_eq!(
                stats.scratch_grows, 0,
                "worker {worker} grew scratch: {stats:?}"
            );
        }
    }

    #[test]
    fn linearity_of_the_transform() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).sin()))
            .collect();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).cos()))
            .collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for k in 0..n {
            let expect = fx[k] + fy[k];
            assert!((fsum[k].re - expect.re).abs() < 1e-9);
            assert!((fsum[k].im - expect.im).abs() < 1e-9);
        }
    }
}
