//! Fast Fourier transform implemented from scratch.
//!
//! Three algorithms are provided and selected automatically by [`Fft`]:
//!
//! * an iterative **radix-2 Cooley–Tukey** transform for power-of-two lengths,
//! * a recursive **mixed-radix Cooley–Tukey** transform for lengths whose prime
//!   factors are all small (2, 3, 5, 7),
//! * **Bluestein's algorithm** (chirp-z transform) for every other length,
//!   which reduces an arbitrary-length DFT to a power-of-two convolution.
//!
//! All transforms are unnormalised in the forward direction and divide by `N`
//! in the inverse direction, so `ifft(fft(x)) == x`.
//!
//! The FTIO pipeline (see `ftio-core`) applies the DFT to bandwidth signals
//! whose length `N = Δt · fs` is rarely a power of two, which is why
//! arbitrary-length support matters here.

use crate::complex::Complex;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Time domain to frequency domain (negative exponent).
    Forward,
    /// Frequency domain to time domain (positive exponent, output scaled by `1/N`).
    Inverse,
}

impl Direction {
    #[inline]
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A reusable FFT plan for a fixed transform length.
///
/// Creating a plan precomputes twiddle factors; executing it does not
/// allocate for power-of-two lengths and allocates scratch only for the
/// Bluestein path.
///
/// # Examples
///
/// ```
/// use ftio_dsp::{Complex, Fft, Direction};
///
/// let fft = Fft::new(8);
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::from_real(i as f64)).collect();
/// let original = data.clone();
/// fft.process(&mut data, Direction::Forward);
/// fft.process(&mut data, Direction::Inverse);
/// for (a, b) in data.iter().zip(original.iter()) {
///     assert!((a.re - b.re).abs() < 1e-9);
///     assert!(a.im.abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Fft {
    len: usize,
    kind: PlanKind,
}

#[derive(Clone, Debug)]
enum PlanKind {
    /// Lengths 0 and 1 are identity transforms.
    Trivial,
    /// Iterative radix-2 with precomputed forward twiddles.
    Radix2 { twiddles: Vec<Complex> },
    /// Recursive mixed-radix over the stored factorisation (factors all <= 7).
    MixedRadix { factors: Vec<usize> },
    /// Bluestein chirp-z transform via a power-of-two convolution.
    Bluestein {
        /// Convolution length (power of two >= 2*len - 1).
        conv_len: usize,
        /// Chirp sequence `exp(-i*pi*n^2/len)` for n in 0..len (forward sign).
        chirp: Vec<Complex>,
        /// Forward FFT of the zero-padded, conjugated chirp filter.
        filter_fft: Vec<Complex>,
        /// Inner power-of-two plan used for the convolution.
        inner: Box<Fft>,
    },
}

impl Fft {
    /// Creates a plan for transforms of length `len`.
    pub fn new(len: usize) -> Self {
        let kind = if len <= 1 {
            PlanKind::Trivial
        } else if len.is_power_of_two() {
            PlanKind::Radix2 {
                twiddles: radix2_twiddles(len),
            }
        } else {
            let factors = factorize(len);
            if factors.iter().all(|&f| f <= 7) {
                PlanKind::MixedRadix { factors }
            } else {
                Self::new_bluestein(len)
            }
        };
        Fft { len, kind }
    }

    fn new_bluestein(len: usize) -> PlanKind {
        let conv_len = (2 * len - 1).next_power_of_two();
        // Chirp: c_n = exp(-i * pi * n^2 / len). Computed with n^2 mod 2*len to
        // keep the argument small and avoid precision loss for large n.
        let chirp: Vec<Complex> = (0..len)
            .map(|n| {
                let sq = ((n as u128 * n as u128) % (2 * len as u128)) as f64;
                Complex::cis(-std::f64::consts::PI * sq / len as f64)
            })
            .collect();
        // Filter b_n = conj(chirp), wrapped so that negative indices map to the
        // end of the buffer (circular convolution).
        let mut filter = vec![Complex::ZERO; conv_len];
        for n in 0..len {
            filter[n] = chirp[n].conj();
            if n != 0 {
                filter[conv_len - n] = chirp[n].conj();
            }
        }
        let inner = Box::new(Fft::new(conv_len));
        let mut filter_fft = filter;
        inner.process(&mut filter_fft, Direction::Forward);
        PlanKind::Bluestein {
            conv_len,
            chirp,
            filter_fft,
            inner,
        }
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Executes the transform in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn process(&self, data: &mut [Complex], direction: Direction) {
        assert_eq!(
            data.len(),
            self.len,
            "FFT plan length {} does not match buffer length {}",
            self.len,
            data.len()
        );
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Radix2 { twiddles } => {
                radix2_in_place(data, twiddles, direction);
                if direction == Direction::Inverse {
                    normalize(data);
                }
            }
            PlanKind::MixedRadix { factors } => {
                let out = mixed_radix_recursive(data, factors, direction.sign());
                data.copy_from_slice(&out);
                if direction == Direction::Inverse {
                    normalize(data);
                }
            }
            PlanKind::Bluestein {
                conv_len,
                chirp,
                filter_fft,
                inner,
            } => {
                bluestein(data, *conv_len, chirp, filter_fft, inner, direction);
            }
        }
    }

    /// Convenience wrapper: forward-transform a copy of `data` and return it.
    pub fn forward(&self, data: &[Complex]) -> Vec<Complex> {
        let mut buf = data.to_vec();
        self.process(&mut buf, Direction::Forward);
        buf
    }

    /// Convenience wrapper: inverse-transform a copy of `data` and return it.
    pub fn inverse(&self, data: &[Complex]) -> Vec<Complex> {
        let mut buf = data.to_vec();
        self.process(&mut buf, Direction::Inverse);
        buf
    }
}

/// Forward DFT of a real-valued signal, returning the full complex spectrum.
///
/// This is the entry point used by FTIO: the discretised bandwidth signal is
/// real, so the spectrum is conjugate-symmetric and only bins `0..=N/2` carry
/// independent information (see [`crate::spectrum`]).
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    let plan = Fft::new(buf.len());
    plan.process(&mut buf, Direction::Forward);
    buf
}

/// Forward FFT of a complex buffer (allocating convenience function).
pub fn fft(signal: &[Complex]) -> Vec<Complex> {
    Fft::new(signal.len()).forward(signal)
}

/// Inverse FFT of a complex buffer (allocating convenience function).
pub fn ifft(spectrum: &[Complex]) -> Vec<Complex> {
    Fft::new(spectrum.len()).inverse(spectrum)
}

/// Naive `O(N^2)` DFT used as a cross-check in tests and for very short inputs.
pub fn dft_naive(signal: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = direction.sign();
    let mut out = vec![Complex::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in signal.iter().enumerate() {
            let angle = sign * 2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / n as f64;
            acc += x * Complex::cis(angle);
        }
        *out_k = acc;
    }
    if direction == Direction::Inverse {
        normalize(&mut out);
    }
    out
}

/// Returns the prime factorisation of `n` in non-decreasing order.
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            factors.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

fn normalize(data: &mut [Complex]) {
    let inv = 1.0 / data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(inv);
    }
}

fn radix2_twiddles(len: usize) -> Vec<Complex> {
    // Forward twiddles for each butterfly stage, flattened: stage sizes
    // 2, 4, 8, ..., len with half-size twiddle tables each.
    let mut twiddles = Vec::with_capacity(len);
    let mut size = 2;
    while size <= len {
        let half = size / 2;
        for j in 0..half {
            let angle = -2.0 * std::f64::consts::PI * j as f64 / size as f64;
            twiddles.push(Complex::cis(angle));
        }
        size *= 2;
    }
    twiddles
}

fn radix2_in_place(data: &mut [Complex], twiddles: &[Complex], direction: Direction) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let conj = direction == Direction::Inverse;
    let mut size = 2;
    let mut tw_offset = 0;
    while size <= n {
        let half = size / 2;
        for start in (0..n).step_by(size) {
            for j in 0..half {
                let mut w = twiddles[tw_offset + j];
                if conj {
                    w = w.conj();
                }
                let a = data[start + j];
                let b = data[start + j + half] * w;
                data[start + j] = a + b;
                data[start + j + half] = a - b;
            }
        }
        tw_offset += half;
        size *= 2;
    }
}

/// Recursive mixed-radix Cooley–Tukey decimation-in-time.
///
/// `factors` must multiply to `data.len()`. Returns a newly allocated output
/// buffer; the caller copies it back. `sign` is -1 for forward, +1 for inverse.
fn mixed_radix_recursive(data: &[Complex], factors: &[usize], sign: f64) -> Vec<Complex> {
    let n = data.len();
    if n <= 1 || factors.is_empty() {
        return data.to_vec();
    }
    let radix = factors[0];
    let rest = &factors[1..];
    let m = n / radix;

    // Split into `radix` decimated sub-sequences and transform each.
    let mut subs: Vec<Vec<Complex>> = Vec::with_capacity(radix);
    for r in 0..radix {
        let sub: Vec<Complex> = (0..m).map(|j| data[j * radix + r]).collect();
        subs.push(mixed_radix_recursive(&sub, rest, sign));
    }

    // Combine: X[k + q*m] = sum_r subs[r][k] * W_N^{r*(k + q*m)}
    let mut out = vec![Complex::ZERO; n];
    for q in 0..radix {
        for k in 0..m {
            let idx = k + q * m;
            let mut acc = Complex::ZERO;
            for (r, sub) in subs.iter().enumerate() {
                let angle = sign * 2.0 * std::f64::consts::PI * (r * idx) as f64 / n as f64;
                acc += sub[k] * Complex::cis(angle);
            }
            out[idx] = acc;
        }
    }
    out
}

fn bluestein(
    data: &mut [Complex],
    conv_len: usize,
    chirp: &[Complex],
    filter_fft: &[Complex],
    inner: &Fft,
    direction: Direction,
) {
    let n = data.len();
    let conj_input = direction == Direction::Inverse;

    // a_n = x_n * chirp_n (use conjugated chirp for the inverse transform).
    let mut a = vec![Complex::ZERO; conv_len];
    for i in 0..n {
        let c = if conj_input {
            chirp[i].conj()
        } else {
            chirp[i]
        };
        a[i] = data[i] * c;
    }
    inner.process(&mut a, Direction::Forward);
    if conj_input {
        // The precomputed filter is for the forward chirp; the inverse chirp's
        // filter is its conjugate, and conj(FFT(x)) = FFT(conj(x)) reversed.
        // Instead of storing a second table we convolve with the conjugate
        // spectrum of the reversed filter, which equals conj(filter_fft) here
        // because the filter is conjugate-symmetric by construction.
        for (ai, fi) in a.iter_mut().zip(filter_fft.iter()) {
            *ai *= fi.conj();
        }
    } else {
        for (ai, fi) in a.iter_mut().zip(filter_fft.iter()) {
            *ai *= *fi;
        }
    }
    inner.process(&mut a, Direction::Inverse);

    for i in 0..n {
        let c = if conj_input {
            chirp[i].conj()
        } else {
            chirp[i]
        };
        data[i] = a[i] * c;
    }
    if direction == Direction::Inverse {
        normalize(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[0] = Complex::ONE;
        v
    }

    #[test]
    fn factorize_small_numbers() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        for &n in &[4usize, 8, 12, 15, 97, 128] {
            let spec = fft(&impulse(n));
            for x in spec {
                assert!((x.re - 1.0).abs() < 1e-9 && x.im.abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let n = 64;
        let signal = vec![Complex::from_real(2.5); n];
        let spec = fft(&signal);
        assert!((spec[0].re - 2.5 * n as f64).abs() < 1e-9);
        for x in &spec[1..] {
            assert!(x.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_cosine_peaks_at_its_frequency() {
        let n = 128;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        // Energy concentrated at bins k0 and N-k0, each with amplitude N/2.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-6);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-6);
        for (k, x) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(x.abs() < 1e-6, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        let n = 32;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        assert_spectra_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn mixed_radix_matches_naive_dft() {
        for &n in &[6usize, 12, 15, 20, 21, 35, 60, 105] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.1).sin(), (i as f64 * 0.2).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft_for_prime_lengths() {
        for &n in &[11usize, 13, 17, 97, 101, 211] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-7);
        }
    }

    #[test]
    fn large_composite_with_big_prime_factor_uses_bluestein() {
        // 2 * 509 has a prime factor > 7 and must go through Bluestein.
        let n = 1018;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i % 10) as f64))
            .collect();
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        assert_spectra_close(&fast, &slow, 1e-6);
    }

    #[test]
    fn inverse_recovers_original_for_all_plan_kinds() {
        for &n in &[8usize, 12, 97, 100, 1018] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 / 3.0).cos()))
                .collect();
            let roundtrip = ifft(&fft(&signal));
            assert_spectra_close(&roundtrip, &signal, 1e-7);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 240;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let spec = fft_real(&signal);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-9);
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 90;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin() + 0.3).collect();
        let spec = fft_real(&signal);
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_and_one_length_transforms_are_identity() {
        assert!(fft(&[]).is_empty());
        let single = vec![Complex::new(3.0, -1.0)];
        assert_eq!(fft(&single), single);
        assert_eq!(ifft(&single), single);
    }

    #[test]
    #[should_panic(expected = "does not match buffer length")]
    fn mismatched_plan_length_panics() {
        let plan = Fft::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.process(&mut buf, Direction::Forward);
    }

    #[test]
    fn plan_reuse_gives_identical_results() {
        let n = 100;
        let signal: Vec<Complex> = (0..n).map(|i| Complex::from_real(i as f64)).collect();
        let plan = Fft::new(n);
        let a = plan.forward(&signal);
        let b = plan.forward(&signal);
        assert_spectra_close(&a, &b, 0.0);
    }

    #[test]
    fn linearity_of_the_transform() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).sin()))
            .collect();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).cos()))
            .collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for k in 0..n {
            let expect = fx[k] + fy[k];
            assert!((fsum[k].re - expect.re).abs() < 1e-9);
            assert!((fsum[k].im - expect.im).abs() < 1e-9);
        }
    }
}
