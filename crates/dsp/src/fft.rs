//! Fast Fourier transform implemented from scratch.
//!
//! Two execution strategies are selected automatically by [`Fft`]:
//!
//! * an iterative **mixed-radix Cooley–Tukey** transform for lengths whose
//!   prime factors are all small (2, 3, 5, 7), with specialised radix-4 and
//!   radix-2 butterflies — power-of-two lengths run as radix-4 stages plus at
//!   most one radix-2 fixup stage;
//! * **Bluestein's algorithm** (chirp-z transform) for every other length,
//!   which reduces an arbitrary-length DFT to a power-of-two convolution with
//!   chirp and filter tables precomputed in the plan.
//!
//! All transforms are unnormalised in the forward direction and divide by `N`
//! in the inverse direction, so `ifft(fft(x)) == x`.
//!
//! Plans precompute every table they need (twiddles, digit-reversal
//! permutation, Bluestein chirp/filter); execution through
//! [`Fft::process_with_scratch`] performs **no allocations** — the caller
//! provides a scratch slice of [`Fft::scratch_len`] elements. The convenience
//! wrappers [`fft`], [`ifft`] and [`fft_real`] obtain plans and scratch from
//! the thread-local [`crate::plan_cache`], so repeated calls at the same
//! length neither rebuild plans nor allocate in steady state.
//!
//! The FTIO pipeline (see `ftio-core`) applies the DFT to bandwidth signals
//! whose length `N = Δt · fs` is rarely a power of two, which is why
//! arbitrary-length support matters here. Real-valued signals should prefer
//! [`crate::rfft::RealFft`], which halves the work by exploiting the conjugate
//! symmetry of the spectrum.

use crate::complex::Complex;
use crate::plan_cache;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Time domain to frequency domain (negative exponent).
    Forward,
    /// Frequency domain to time domain (positive exponent, output scaled by `1/N`).
    Inverse,
}

impl Direction {
    #[inline]
    pub(crate) fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A reusable FFT plan for a fixed transform length.
///
/// Creating a plan precomputes twiddle factors, the digit-reversal
/// permutation, and (for the Bluestein path) the chirp and filter tables.
/// Executing a plan through [`Fft::process_with_scratch`] does not allocate.
///
/// # Examples
///
/// ```
/// use ftio_dsp::{Complex, Fft, Direction};
///
/// let fft = Fft::new(8);
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::from_real(i as f64)).collect();
/// let original = data.clone();
/// fft.process(&mut data, Direction::Forward);
/// fft.process(&mut data, Direction::Inverse);
/// for (a, b) in data.iter().zip(original.iter()) {
///     assert!((a.re - b.re).abs() < 1e-9);
///     assert!(a.im.abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Fft {
    len: usize,
    kind: PlanKind,
}

#[derive(Clone, Debug)]
enum PlanKind {
    /// Lengths 0 and 1 are identity transforms.
    Trivial,
    /// Iterative mixed-radix Cooley–Tukey over radices 4, 2, 3, 5, 7.
    Smooth(SmoothPlan),
    /// Bluestein chirp-z transform via a power-of-two convolution.
    Bluestein(BluesteinPlan),
}

/// Precomputed state for the iterative mixed-radix transform.
#[derive(Clone, Debug)]
struct SmoothPlan {
    /// Butterfly stages in execution order (sub-transform size grows).
    stages: Vec<Stage>,
    /// Digit-reversal gather: slot `t` of the work buffer reads input `perm[t]`.
    perm: Vec<u32>,
}

/// One mixed-radix butterfly stage combining `radix` sub-transforms of size
/// `m` into transforms of size `radix * m`.
#[derive(Clone, Debug)]
struct Stage {
    radix: usize,
    m: usize,
    /// Flattened inter-stage twiddles `W_M^{s·k}` (`M = radix·m`) with layout
    /// `twiddles[k·(radix−1) + (s−1)]` for `k in 0..m`, `s in 1..radix`.
    twiddles: Vec<Complex>,
    /// Intra-butterfly roots `W_radix^{s·q}` with layout `roots[s·radix + q]`
    /// (forward sign); only used by the generic odd-radix kernel.
    roots: Vec<Complex>,
}

#[derive(Clone, Debug)]
struct BluesteinPlan {
    /// Convolution length (power of two >= 2*len - 1).
    conv_len: usize,
    /// Chirp sequence `exp(-i*pi*n^2/len)` for n in 0..len (forward sign).
    chirp: Vec<Complex>,
    /// Forward FFT of the zero-padded, conjugated chirp filter.
    filter_fft: Vec<Complex>,
    /// Inner power-of-two plan used for the convolution.
    inner: Box<Fft>,
}

impl Fft {
    /// Creates a plan for transforms of length `len`.
    ///
    /// Prefer [`crate::plan_cache::fft_plan`] on hot paths: it memoises plans
    /// per thread so repeated transforms of the same length reuse all tables.
    pub fn new(len: usize) -> Self {
        let kind = if len <= 1 {
            PlanKind::Trivial
        } else {
            let factors = factorize(len);
            if factors.iter().all(|&f| f <= 7) {
                PlanKind::Smooth(SmoothPlan::new(len, &factors))
            } else {
                PlanKind::Bluestein(BluesteinPlan::new(len))
            }
        };
        Fft { len, kind }
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of scratch elements [`Fft::process_with_scratch`] requires.
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            PlanKind::Trivial => 0,
            PlanKind::Smooth(_) => self.len,
            // One conv_len buffer for the chirped sequence plus the inner
            // (smooth power-of-two) plan's own scratch.
            PlanKind::Bluestein(plan) => plan.conv_len + plan.inner.scratch_len(),
        }
    }

    /// Executes the transform in place, allocating its own scratch buffer.
    ///
    /// Hot paths should use [`Fft::process_with_scratch`] with a pooled buffer
    /// (see [`crate::plan_cache`]) to avoid the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn process(&self, data: &mut [Complex], direction: Direction) {
        let mut scratch = vec![Complex::ZERO; self.scratch_len()];
        self.process_with_scratch(data, direction, &mut scratch);
    }

    /// Executes the transform in place without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length or `scratch` is
    /// shorter than [`Fft::scratch_len`].
    pub fn process_with_scratch(
        &self,
        data: &mut [Complex],
        direction: Direction,
        scratch: &mut [Complex],
    ) {
        assert_eq!(
            data.len(),
            self.len,
            "FFT plan length {} does not match buffer length {}",
            self.len,
            data.len()
        );
        assert!(
            scratch.len() >= self.scratch_len(),
            "FFT scratch length {} is below the required {}",
            scratch.len(),
            self.scratch_len()
        );
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Smooth(plan) => {
                plan.process(data, direction, &mut scratch[..self.len]);
                if direction == Direction::Inverse {
                    normalize(data);
                }
            }
            PlanKind::Bluestein(plan) => {
                plan.process(data, direction, scratch);
                if direction == Direction::Inverse {
                    normalize(data);
                }
            }
        }
    }

    /// Convenience wrapper: forward-transform a copy of `data` and return it.
    pub fn forward(&self, data: &[Complex]) -> Vec<Complex> {
        let mut buf = data.to_vec();
        self.process(&mut buf, Direction::Forward);
        buf
    }

    /// Convenience wrapper: inverse-transform a copy of `data` and return it.
    pub fn inverse(&self, data: &[Complex]) -> Vec<Complex> {
        let mut buf = data.to_vec();
        self.process(&mut buf, Direction::Inverse);
        buf
    }
}

impl SmoothPlan {
    fn new(len: usize, factors: &[usize]) -> Self {
        // Execution order: odd radices first (smallest sub-transforms), then
        // the radix-2 fixup (when the power of two is odd), then radix-4
        // stages — so the large, cache-hungry stages use the cheapest kernel.
        let twos = factors.iter().filter(|&&f| f == 2).count();
        let mut radices: Vec<usize> = factors.iter().copied().filter(|&f| f != 2).collect();
        if twos % 2 == 1 {
            radices.push(2);
        }
        radices.extend(std::iter::repeat(4).take(twos / 2));

        let mut stages = Vec::with_capacity(radices.len());
        let mut m = 1usize;
        for &radix in &radices {
            let big_m = radix * m;
            let mut twiddles = Vec::with_capacity((radix - 1) * m);
            for k in 0..m {
                for s in 1..radix {
                    let angle = -2.0 * std::f64::consts::PI * (s * k) as f64 / big_m as f64;
                    twiddles.push(Complex::cis(angle));
                }
            }
            let mut roots = Vec::with_capacity(radix * radix);
            for s in 0..radix {
                for q in 0..radix {
                    let angle =
                        -2.0 * std::f64::consts::PI * ((s * q) % radix) as f64 / radix as f64;
                    roots.push(Complex::cis(angle));
                }
            }
            stages.push(Stage {
                radix,
                m,
                twiddles,
                roots,
            });
            m = big_m;
        }
        debug_assert_eq!(m, len);

        // Digit-reversal permutation: decimation happens in the *reverse* of
        // the execution order, so peel digits from the last stage inwards.
        let dec_radices: Vec<usize> = radices.iter().rev().copied().collect();
        let mut perm = Vec::with_capacity(len);
        for i in 0..len {
            let mut rem = i;
            let mut pos = 0usize;
            let mut span = len;
            for &f in &dec_radices {
                span /= f;
                pos += (rem % f) * span;
                rem /= f;
            }
            perm.push(pos as u32);
        }
        // `perm` maps source -> target; invert it into a gather table
        // (target -> source) so execution reads sequentially from scratch.
        let mut gather = vec![0u32; len];
        for (src, &dst) in perm.iter().enumerate() {
            gather[dst as usize] = src as u32;
        }
        SmoothPlan {
            stages,
            perm: gather,
        }
    }

    fn process(&self, data: &mut [Complex], direction: Direction, scratch: &mut [Complex]) {
        let n = data.len();
        // Gather the digit-reversed input into scratch; the first stage then
        // writes back into `data`, and the remaining stages run in place.
        for (slot, &src) in scratch.iter_mut().zip(self.perm.iter()) {
            *slot = data[src as usize];
        }
        let conj = direction == Direction::Inverse;
        let mut first = true;
        for stage in &self.stages {
            if first {
                stage_out_of_place(scratch, data, stage, conj);
                first = false;
            } else {
                stage_in_place(data, stage, conj);
            }
        }
        if first {
            // No stages (len 1 handled by Trivial, but keep this robust).
            data.copy_from_slice(&scratch[..n]);
        }
    }
}

/// Reads one butterfly's inputs from `src` at stride `m`, applies the
/// inter-stage twiddles, and returns them in `v[0..radix]`.
#[inline]
fn load_twiddled(
    src: &[Complex],
    base: usize,
    k: usize,
    stage: &Stage,
    conj: bool,
    v: &mut [Complex; 7],
) {
    let r = stage.radix;
    let m = stage.m;
    v[0] = src[base + k];
    let tw = &stage.twiddles[k * (r - 1)..k * (r - 1) + (r - 1)];
    for s in 1..r {
        let mut w = tw[s - 1];
        if conj {
            w = w.conj();
        }
        v[s] = src[base + s * m + k] * w;
    }
}

/// Writes one butterfly's outputs computed from `v` into `dst`.
#[inline]
fn store_butterfly(
    dst: &mut [Complex],
    base: usize,
    k: usize,
    stage: &Stage,
    conj: bool,
    v: &[Complex; 7],
) {
    let r = stage.radix;
    let m = stage.m;
    match r {
        2 => {
            dst[base + k] = v[0] + v[1];
            dst[base + m + k] = v[0] - v[1];
        }
        4 => {
            let t0 = v[0] + v[2];
            let t1 = v[0] - v[2];
            let t2 = v[1] + v[3];
            let t3 = if conj {
                // Inverse: W_4 = +i.
                (v[1] - v[3]).mul_i()
            } else {
                (v[1] - v[3]).mul_neg_i()
            };
            dst[base + k] = t0 + t2;
            dst[base + m + k] = t1 + t3;
            dst[base + 2 * m + k] = t0 - t2;
            dst[base + 3 * m + k] = t1 - t3;
        }
        _ => {
            for q in 0..r {
                let mut acc = v[0];
                for (s, vs) in v.iter().enumerate().take(r).skip(1) {
                    let mut w = stage.roots[s * r + q];
                    if conj {
                        w = w.conj();
                    }
                    acc += *vs * w;
                }
                dst[base + q * m + k] = acc;
            }
        }
    }
}

fn stage_out_of_place(src: &[Complex], dst: &mut [Complex], stage: &Stage, conj: bool) {
    let big_m = stage.radix * stage.m;
    let mut v = [Complex::ZERO; 7];
    for base in (0..src.len()).step_by(big_m) {
        for k in 0..stage.m {
            load_twiddled(src, base, k, stage, conj, &mut v);
            store_butterfly(dst, base, k, stage, conj, &v);
        }
    }
}

fn stage_in_place(data: &mut [Complex], stage: &Stage, conj: bool) {
    let big_m = stage.radix * stage.m;
    let mut v = [Complex::ZERO; 7];
    for base in (0..data.len()).step_by(big_m) {
        for k in 0..stage.m {
            load_twiddled(data, base, k, stage, conj, &mut v);
            store_butterfly(data, base, k, stage, conj, &v);
        }
    }
}

impl BluesteinPlan {
    fn new(len: usize) -> Self {
        // The smallest power-of-two convolution length that makes the
        // circular convolution equal the linear one on the outputs we keep.
        let conv_len = (2 * len - 1).next_power_of_two();
        // Chirp: c_n = exp(-i * pi * n^2 / len). Computed with n^2 mod 2*len to
        // keep the argument small and avoid precision loss for large n.
        let chirp: Vec<Complex> = (0..len)
            .map(|n| {
                let sq = ((n as u128 * n as u128) % (2 * len as u128)) as f64;
                Complex::cis(-std::f64::consts::PI * sq / len as f64)
            })
            .collect();
        // Filter b_n = conj(chirp), wrapped so that negative indices map to the
        // end of the buffer (circular convolution).
        let mut filter = vec![Complex::ZERO; conv_len];
        for n in 0..len {
            filter[n] = chirp[n].conj();
            if n != 0 {
                filter[conv_len - n] = chirp[n].conj();
            }
        }
        let inner = Box::new(Fft::new(conv_len));
        let mut filter_fft = filter;
        inner.process(&mut filter_fft, Direction::Forward);
        BluesteinPlan {
            conv_len,
            chirp,
            filter_fft,
            inner,
        }
    }

    fn process(&self, data: &mut [Complex], direction: Direction, scratch: &mut [Complex]) {
        let n = data.len();
        let conv_len = self.conv_len;
        let (a, inner_scratch) = scratch.split_at_mut(conv_len);
        let conj_input = direction == Direction::Inverse;

        // a_n = x_n * chirp_n (use conjugated chirp for the inverse transform).
        for (ai, (x, c)) in a.iter_mut().zip(data.iter().zip(self.chirp.iter())) {
            let c = if conj_input { c.conj() } else { *c };
            *ai = *x * c;
        }
        for ai in a.iter_mut().take(conv_len).skip(n) {
            *ai = Complex::ZERO;
        }
        self.inner
            .process_with_scratch(a, Direction::Forward, inner_scratch);
        if conj_input {
            // The precomputed filter is for the forward chirp; the inverse
            // chirp's filter spectrum equals conj(filter_fft) because the
            // filter is conjugate-symmetric by construction.
            for (ai, fi) in a.iter_mut().zip(self.filter_fft.iter()) {
                *ai *= fi.conj();
            }
        } else {
            for (ai, fi) in a.iter_mut().zip(self.filter_fft.iter()) {
                *ai *= *fi;
            }
        }
        self.inner
            .process_with_scratch(a, Direction::Inverse, inner_scratch);

        for (x, (ai, c)) in data.iter_mut().zip(a.iter().zip(self.chirp.iter())) {
            let c = if conj_input { c.conj() } else { *c };
            *x = *ai * c;
        }
    }
}

/// Forward DFT of a real-valued signal, returning the full complex spectrum.
///
/// This is the historical full-spectrum entry point: the discretised bandwidth
/// signal is real, so the spectrum is conjugate-symmetric and only bins
/// `0..=N/2` carry independent information. Internally the transform runs
/// through the cached [`crate::rfft::RealFft`] fast path (an `N/2`-point
/// complex FFT for even `N`) and the redundant upper half is mirrored from the
/// lower bins. Callers that only need bins `0..=N/2` should use [`rfft`].
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len();
    let half = crate::rfft::rfft(signal);
    let mut full = Vec::with_capacity(n);
    full.extend_from_slice(&half);
    full.resize(n, Complex::ZERO);
    for k in 1..n.div_ceil(2) {
        full[n - k] = half[k].conj();
    }
    full
}

/// Forward half-spectrum DFT of a real-valued signal: bins `0..=N/2`.
///
/// Re-exported from [`mod@crate::rfft`]; see [`crate::rfft::RealFft`] for the
/// zero-allocation plan API.
pub use crate::rfft::rfft;

/// Forward FFT of a complex buffer (allocating convenience function).
///
/// Uses the thread-local [`crate::plan_cache`], so repeated calls at the same
/// length reuse the plan and its scratch buffers.
pub fn fft(signal: &[Complex]) -> Vec<Complex> {
    let mut buf = signal.to_vec();
    process_cached(&mut buf, Direction::Forward);
    buf
}

/// Inverse FFT of a complex buffer (allocating convenience function).
///
/// Uses the thread-local [`crate::plan_cache`], so repeated calls at the same
/// length reuse the plan and its scratch buffers.
pub fn ifft(spectrum: &[Complex]) -> Vec<Complex> {
    let mut buf = spectrum.to_vec();
    process_cached(&mut buf, Direction::Inverse);
    buf
}

/// Transforms `data` in place through the plan cache with pooled scratch.
pub(crate) fn process_cached(data: &mut [Complex], direction: Direction) {
    let plan = plan_cache::fft_plan(data.len());
    let mut scratch = plan_cache::take_scratch(plan.scratch_len());
    plan.process_with_scratch(data, direction, &mut scratch);
    plan_cache::give_scratch(scratch);
}

/// Naive `O(N^2)` DFT used as a cross-check in tests and for very short inputs.
pub fn dft_naive(signal: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = direction.sign();
    let mut out = vec![Complex::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in signal.iter().enumerate() {
            let angle = sign * 2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / n as f64;
            acc += x * Complex::cis(angle);
        }
        *out_k = acc;
    }
    if direction == Direction::Inverse {
        normalize(&mut out);
    }
    out
}

/// Returns the prime factorisation of `n` in non-decreasing order.
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            factors.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

pub(crate) fn normalize(data: &mut [Complex]) {
    let inv = 1.0 / data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(inv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[0] = Complex::ONE;
        v
    }

    #[test]
    fn factorize_small_numbers() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        for &n in &[4usize, 8, 12, 15, 97, 128] {
            let spec = fft(&impulse(n));
            for x in spec {
                assert!((x.re - 1.0).abs() < 1e-9 && x.im.abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let n = 64;
        let signal = vec![Complex::from_real(2.5); n];
        let spec = fft(&signal);
        assert!((spec[0].re - 2.5 * n as f64).abs() < 1e-9);
        for x in &spec[1..] {
            assert!(x.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_cosine_peaks_at_its_frequency() {
        let n = 128;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        // Energy concentrated at bins k0 and N-k0, each with amplitude N/2.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-6);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-6);
        for (k, x) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(x.abs() < 1e-6, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        let n = 32;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        assert_spectra_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn all_power_of_two_lengths_match_naive_dft() {
        // Exercises the radix-4 kernel with (n = 4^k) and without (n = 2·4^k)
        // the radix-2 fixup stage.
        for &n in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.9).sin(), (i as f64 * 0.45).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn mixed_radix_matches_naive_dft() {
        for &n in &[6usize, 12, 15, 20, 21, 35, 60, 105, 210, 360] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.1).sin(), (i as f64 * 0.2).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft_for_prime_lengths() {
        for &n in &[11usize, 13, 17, 97, 101, 211] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let fast = fft(&signal);
            let slow = dft_naive(&signal, Direction::Forward);
            assert_spectra_close(&fast, &slow, 1e-7);
        }
    }

    #[test]
    fn large_composite_with_big_prime_factor_uses_bluestein() {
        // 2 * 509 has a prime factor > 7 and must go through Bluestein.
        let n = 1018;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i % 10) as f64))
            .collect();
        let fast = fft(&signal);
        let slow = dft_naive(&signal, Direction::Forward);
        assert_spectra_close(&fast, &slow, 1e-6);
    }

    #[test]
    fn inverse_recovers_original_for_all_plan_kinds() {
        for &n in &[8usize, 12, 97, 100, 1018] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 / 3.0).cos()))
                .collect();
            let roundtrip = ifft(&fft(&signal));
            assert_spectra_close(&roundtrip, &signal, 1e-7);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 240;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let spec = fft_real(&signal);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-9);
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 90;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin() + 0.3).collect();
        let spec = fft_real(&signal);
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_and_one_length_transforms_are_identity() {
        assert!(fft(&[]).is_empty());
        let single = vec![Complex::new(3.0, -1.0)];
        assert_eq!(fft(&single), single);
        assert_eq!(ifft(&single), single);
    }

    #[test]
    #[should_panic(expected = "does not match buffer length")]
    fn mismatched_plan_length_panics() {
        let plan = Fft::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.process(&mut buf, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "below the required")]
    fn too_small_scratch_panics() {
        let plan = Fft::new(8);
        let mut buf = vec![Complex::ZERO; 8];
        let mut scratch = vec![Complex::ZERO; 4];
        plan.process_with_scratch(&mut buf, Direction::Forward, &mut scratch);
    }

    #[test]
    fn plan_reuse_gives_identical_results() {
        let n = 100;
        let signal: Vec<Complex> = (0..n).map(|i| Complex::from_real(i as f64)).collect();
        let plan = Fft::new(n);
        let a = plan.forward(&signal);
        let b = plan.forward(&signal);
        assert_spectra_close(&a, &b, 0.0);
    }

    #[test]
    fn scratch_and_allocating_paths_agree() {
        for &n in &[16usize, 60, 97, 1018] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.13).cos(), (i as f64 * 0.29).sin()))
                .collect();
            let plan = Fft::new(n);
            let mut with_scratch = signal.clone();
            let mut scratch = vec![Complex::ZERO; plan.scratch_len()];
            plan.process_with_scratch(&mut with_scratch, Direction::Forward, &mut scratch);
            let allocating = plan.forward(&signal);
            assert_spectra_close(&with_scratch, &allocating, 0.0);
        }
    }

    #[test]
    fn linearity_of_the_transform() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).sin()))
            .collect();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).cos()))
            .collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for k in 0..n {
            let expect = fx[k] + fy[k];
            assert!((fsum[k].re - expect.re).abs() < 1e-9);
            assert!((fsum[k].im - expect.im).abs() < 1e-9);
        }
    }
}
