//! DBSCAN clustering for one-dimensional data.
//!
//! FTIO uses DBSCAN in two places (paper §II-B2 and §II-D):
//!
//! * as an alternative outlier detector on the power spectrum, where `eps` can
//!   be derived from the frequency-bin spacing, and
//! * to merge dominant-frequency predictions from consecutive online
//!   evaluations into frequency intervals with associated probabilities.
//!
//! The implementation is a textbook region-growing DBSCAN specialised to 1-D
//! points, which keeps neighbourhood queries simple and fast (sorting +
//! binary-search windows).

/// Label assigned to each input point by [`dbscan_1d`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Point belongs to the cluster with the given id (0-based).
    Cluster(usize),
    /// Point is noise: not density-reachable from any core point.
    Noise,
}

impl Label {
    /// The cluster id, if the point was clustered.
    pub fn cluster_id(self) -> Option<usize> {
        match self {
            Label::Cluster(id) => Some(id),
            Label::Noise => None,
        }
    }

    /// Whether the point was labelled noise.
    pub fn is_noise(self) -> bool {
        matches!(self, Label::Noise)
    }
}

/// Result of a DBSCAN run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Per-point labels, in input order.
    pub labels: Vec<Label>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl Clustering {
    /// Indices of the members of cluster `id`.
    pub fn members(&self, id: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (l.cluster_id() == Some(id)).then_some(i))
            .collect()
    }

    /// Indices of all noise points.
    pub fn noise(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_noise().then_some(i))
            .collect()
    }
}

/// Runs DBSCAN on 1-D `points` with neighbourhood radius `eps` and core-point
/// threshold `min_pts` (a point counts itself among its neighbours, as in the
/// standard formulation).
///
/// # Panics
///
/// Panics if `eps` is negative or `min_pts` is zero.
pub fn dbscan_1d(points: &[f64], eps: f64, min_pts: usize) -> Clustering {
    assert!(eps >= 0.0, "eps must be non-negative");
    assert!(min_pts >= 1, "min_pts must be at least 1");
    let n = points.len();
    if n == 0 {
        return Clustering {
            labels: Vec::new(),
            num_clusters: 0,
        };
    }

    // Sort indices by value so neighbourhoods are contiguous windows.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .partial_cmp(&points[b])
            .expect("NaN in DBSCAN input")
    });
    let sorted: Vec<f64> = order.iter().map(|&i| points[i]).collect();

    let neighbours = |pos: usize| -> Vec<usize> {
        let v = sorted[pos];
        let lo = sorted.partition_point(|&x| x < v - eps);
        let hi = sorted.partition_point(|&x| x <= v + eps);
        (lo..hi).collect()
    };

    const UNVISITED: isize = -2;
    const NOISE: isize = -1;
    let mut labels = vec![UNVISITED; n]; // indexed by sorted position
    let mut cluster = 0isize;

    for pos in 0..n {
        if labels[pos] != UNVISITED {
            continue;
        }
        let nbrs = neighbours(pos);
        if nbrs.len() < min_pts {
            labels[pos] = NOISE;
            continue;
        }
        labels[pos] = cluster;
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let q = queue[qi];
            qi += 1;
            if labels[q] == NOISE {
                labels[q] = cluster;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster;
            let qn = neighbours(q);
            if qn.len() >= min_pts {
                queue.extend(qn);
            }
        }
        cluster += 1;
    }

    // Map back to the original point order.
    let mut out = vec![Label::Noise; n];
    for (pos, &orig) in order.iter().enumerate() {
        out[orig] = match labels[pos] {
            NOISE => Label::Noise,
            c => Label::Cluster(c as usize),
        };
    }
    Clustering {
        labels: out,
        num_clusters: cluster as usize,
    }
}

/// A cluster of 1-D values summarised as an interval, used when merging online
/// frequency predictions (paper §II-D).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterInterval {
    /// Smallest value in the cluster.
    pub min: f64,
    /// Largest value in the cluster.
    pub max: f64,
    /// Arithmetic mean of the cluster members.
    pub center: f64,
    /// Number of members.
    pub count: usize,
    /// `count` divided by the total number of points given to [`cluster_intervals`].
    pub probability: f64,
}

impl ClusterInterval {
    /// Whether `value` lies inside the closed interval `[min, max]`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.min && value <= self.max
    }
}

/// Clusters `points` with DBSCAN and summarises every cluster as an interval
/// `[min, max]` with a probability equal to its share of all points (noise
/// points count towards the total but form no interval). Intervals are sorted
/// by descending probability.
pub fn cluster_intervals(points: &[f64], eps: f64, min_pts: usize) -> Vec<ClusterInterval> {
    let clustering = dbscan_1d(points, eps, min_pts);
    let total = points.len();
    let mut intervals = Vec::new();
    for id in 0..clustering.num_clusters {
        let members = clustering.members(id);
        if members.is_empty() {
            continue;
        }
        let values: Vec<f64> = members.iter().map(|&i| points[i]).collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Clamp the mean into [min, max]: with nearly identical members the
        // floating-point sum can otherwise land a hair outside the bounds.
        let center = (values.iter().sum::<f64>() / values.len() as f64).clamp(min, max);
        intervals.push(ClusterInterval {
            min,
            max,
            center,
            count: values.len(),
            probability: values.len() as f64 / total as f64,
        });
    }
    intervals.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("NaN probability")
    });
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_well_separated_groups_form_two_clusters() {
        let points = [1.0, 1.1, 0.9, 1.05, 10.0, 10.2, 9.9, 10.1];
        let c = dbscan_1d(&points, 0.5, 2);
        assert_eq!(c.num_clusters, 2);
        let a = c.labels[0].cluster_id().unwrap();
        let b = c.labels[4].cluster_id().unwrap();
        assert_ne!(a, b);
        for i in 0..4 {
            assert_eq!(c.labels[i].cluster_id(), Some(a));
        }
        for i in 4..8 {
            assert_eq!(c.labels[i].cluster_id(), Some(b));
        }
    }

    #[test]
    fn isolated_point_is_noise() {
        let points = [1.0, 1.1, 0.9, 50.0];
        let c = dbscan_1d(&points, 0.5, 2);
        assert_eq!(c.num_clusters, 1);
        assert!(c.labels[3].is_noise());
        assert_eq!(c.noise(), vec![3]);
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let points = [1.0, 5.0, 9.0];
        let c = dbscan_1d(&points, 0.5, 1);
        assert_eq!(c.num_clusters, 3);
        assert!(c.labels.iter().all(|l| !l.is_noise()));
    }

    #[test]
    fn chain_of_points_forms_one_cluster() {
        // Each point is within eps of the next, so density-reachability chains them.
        let points: Vec<f64> = (0..20).map(|i| i as f64 * 0.4).collect();
        let c = dbscan_1d(&points, 0.5, 2);
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.members(0).len(), 20);
    }

    #[test]
    fn empty_input() {
        let c = dbscan_1d(&[], 1.0, 2);
        assert_eq!(c.num_clusters, 0);
        assert!(c.labels.is_empty());
        assert!(cluster_intervals(&[], 1.0, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn zero_min_pts_panics() {
        dbscan_1d(&[1.0], 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn negative_eps_panics() {
        dbscan_1d(&[1.0], -1.0, 1);
    }

    #[test]
    fn intervals_report_bounds_and_probability() {
        // 6 points near 0.12 Hz, 2 points near 0.2 Hz, 2 noise points.
        let points = [0.12, 0.121, 0.119, 0.122, 0.118, 0.12, 0.2, 0.201, 0.5, 0.9];
        let intervals = cluster_intervals(&points, 0.005, 2);
        assert_eq!(intervals.len(), 2);
        assert_eq!(intervals[0].count, 6);
        assert!((intervals[0].probability - 0.6).abs() < 1e-12);
        assert!(intervals[0].contains(0.12));
        assert!(!intervals[0].contains(0.2));
        assert_eq!(intervals[1].count, 2);
        assert!((intervals[1].probability - 0.2).abs() < 1e-12);
        assert!(intervals[0].probability >= intervals[1].probability);
    }

    #[test]
    fn interval_center_is_mean_of_members() {
        let points = [1.0, 2.0, 3.0];
        let intervals = cluster_intervals(&points, 1.5, 2);
        assert_eq!(intervals.len(), 1);
        assert!((intervals[0].center - 2.0).abs() < 1e-12);
        assert_eq!(intervals[0].min, 1.0);
        assert_eq!(intervals[0].max, 3.0);
    }

    #[test]
    fn duplicate_points_cluster_together() {
        let points = [5.0; 10];
        let c = dbscan_1d(&points, 0.0, 3);
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.members(0).len(), 10);
    }
}
