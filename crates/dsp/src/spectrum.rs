//! Spectral representations of a discretised I/O signal.
//!
//! FTIO inspects the *single-sided power spectrum* of the bandwidth signal
//! (paper §II-B1): for a real signal of `N` samples only the bins
//! `k = 0 ..= N/2` carry independent information, the bin `k` corresponds to
//! the frequency `f_k = k * fs / N`, and the power of a bin is
//! `p_k = |X_k|^2 / N`. Normalising by the total power turns the y-axis into
//! the *contribution of the frequency to the total signal power*, the quantity
//! plotted in the paper's spectrum figures.

use crate::complex::Complex;
use crate::rfft::rfft;

/// Single-sided spectrum of a real-valued signal.
///
/// Holds the complex bins `X_0 ..= X_{N/2}`, the sampling frequency, and the
/// original signal length so that amplitudes, powers and frequencies can be
/// derived without keeping the full symmetric spectrum around.
#[derive(Clone, Debug)]
pub struct Spectrum {
    bins: Vec<Complex>,
    sampling_freq: f64,
    signal_len: usize,
}

impl Spectrum {
    /// Computes the single-sided spectrum of `signal` sampled at `sampling_freq` Hz.
    ///
    /// The bins come from the real-input FFT path ([`mod@crate::rfft`]): only the
    /// `N/2 + 1` single-sided bins are stored, computed for even `N` via an
    /// `N/2`-point complex transform (half the work); odd lengths run a
    /// complex transform internally and keep just the half spectrum. The FFT
    /// plan and scratch buffers are cached per thread
    /// ([`crate::plan_cache`]), so repeated spectra of same-length signals
    /// only allocate the bin vector itself.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_freq` is not strictly positive.
    pub fn from_signal(signal: &[f64], sampling_freq: f64) -> Self {
        assert!(
            sampling_freq > 0.0,
            "sampling frequency must be positive, got {sampling_freq}"
        );
        Spectrum {
            bins: rfft(signal),
            sampling_freq,
            signal_len: signal.len(),
        }
    }

    /// Builds a spectrum directly from precomputed full-length DFT bins.
    ///
    /// Only the first `N/2 + 1` bins of `full_bins` are retained.
    pub fn from_full_bins(full_bins: Vec<Complex>, sampling_freq: f64) -> Self {
        assert!(sampling_freq > 0.0, "sampling frequency must be positive");
        let n = full_bins.len();
        let keep = if n == 0 { 0 } else { n / 2 + 1 };
        Spectrum {
            bins: full_bins.into_iter().take(keep).collect(),
            sampling_freq,
            signal_len: n,
        }
    }

    /// Number of single-sided bins (`N/2 + 1` for a length-`N` signal).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Length `N` of the original time-domain signal.
    pub fn signal_len(&self) -> usize {
        self.signal_len
    }

    /// Sampling frequency `fs` in Hz.
    pub fn sampling_freq(&self) -> f64 {
        self.sampling_freq
    }

    /// Frequency resolution `fs / N = 1 / Δt` in Hz (spacing between bins).
    pub fn freq_resolution(&self) -> f64 {
        if self.signal_len == 0 {
            0.0
        } else {
            self.sampling_freq / self.signal_len as f64
        }
    }

    /// The frequency in Hz of bin `k`.
    pub fn frequency(&self, k: usize) -> f64 {
        k as f64 * self.freq_resolution()
    }

    /// All bin frequencies, `f_k = k * fs / N` for `k = 0 ..= N/2`.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.num_bins()).map(|k| self.frequency(k)).collect()
    }

    /// Raw complex bin `X_k`.
    pub fn bin(&self, k: usize) -> Complex {
        self.bins[k]
    }

    /// The complex bins `X_0 ..= X_{N/2}`.
    pub fn bins(&self) -> &[Complex] {
        &self.bins
    }

    /// DC offset `X_0 / N`, i.e. the mean of the signal.
    pub fn dc_offset(&self) -> f64 {
        if self.signal_len == 0 {
            0.0
        } else {
            self.bins[0].re / self.signal_len as f64
        }
    }

    /// Amplitude spectrum `|X_k|` (raw, not scaled for single-sided display).
    pub fn amplitudes(&self) -> Vec<f64> {
        self.bins.iter().map(|x| x.abs()).collect()
    }

    /// Single-sided display amplitudes: `|X_0|/N` for DC and `2|X_k|/N` for
    /// the remaining bins, matching Eq. (1) of the paper.
    pub fn single_sided_amplitudes(&self) -> Vec<f64> {
        if self.signal_len == 0 {
            return Vec::new();
        }
        let n = self.signal_len as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(k, x)| {
                if k == 0 {
                    x.abs() / n
                } else {
                    2.0 * x.abs() / n
                }
            })
            .collect()
    }

    /// Phases `arg(X_k)` in radians.
    pub fn phases(&self) -> Vec<f64> {
        self.bins.iter().map(|x| x.arg()).collect()
    }

    /// Power spectrum `p_k = |X_k|^2 / N` (paper §II-B1).
    pub fn powers(&self) -> Vec<f64> {
        if self.signal_len == 0 {
            return Vec::new();
        }
        let n = self.signal_len as f64;
        self.bins.iter().map(|x| x.norm_sqr() / n).collect()
    }

    /// Total power of the single-sided spectrum, including the DC bin.
    pub fn total_power(&self) -> f64 {
        self.powers().iter().sum()
    }

    /// Normalised power spectrum: each `p_k` divided by the total power, so
    /// values express the contribution of each frequency to the signal power.
    ///
    /// If the total power is zero (all-zero signal) an all-zero vector is returned.
    pub fn normalized_powers(&self) -> Vec<f64> {
        let powers = self.powers();
        let total: f64 = powers.iter().sum();
        if total == 0.0 {
            return powers;
        }
        powers.into_iter().map(|p| p / total).collect()
    }

    /// Powers of the non-DC bins (`k >= 1`), the input to outlier detection.
    pub fn powers_without_dc(&self) -> Vec<f64> {
        let p = self.powers();
        if p.len() <= 1 {
            Vec::new()
        } else {
            p[1..].to_vec()
        }
    }

    /// Maximum representable frequency (Nyquist), `fs / 2`.
    pub fn nyquist(&self) -> f64 {
        self.sampling_freq / 2.0
    }

    /// Index of the non-DC bin with the highest power, if any.
    pub fn argmax_power(&self) -> Option<usize> {
        let powers = self.powers();
        powers
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN power"))
            .map(|(k, _)| k)
    }
}

/// Reconstructs the time-domain signal from the `top_k` highest-power non-DC
/// bins plus the DC offset, using the single-sided cosine form of Eq. (1):
///
/// `x_n = (X_0 + Σ 2|X_k| cos(2πkn/N + arg X_k)) / N`
///
/// This is what the paper's Fig. 13/14 plot (DC offset plus the one to three
/// highest-contributing cosine waves) to compare the detected period against
/// the original signal.
pub fn reconstruct_from_top_bins(spectrum: &Spectrum, top_k: usize) -> Vec<f64> {
    let n = spectrum.signal_len();
    if n == 0 {
        return Vec::new();
    }
    let powers = spectrum.powers();
    // Rank non-DC bins by power.
    let mut order: Vec<usize> = (1..spectrum.num_bins()).collect();
    order.sort_by(|&a, &b| powers[b].partial_cmp(&powers[a]).expect("NaN power"));
    let selected: Vec<usize> = order.into_iter().take(top_k).collect();
    reconstruct_from_bins(spectrum, &selected)
}

/// Reconstructs the time-domain signal from an explicit set of non-DC bins
/// (plus the DC offset, which is always included).
pub fn reconstruct_from_bins(spectrum: &Spectrum, bins: &[usize]) -> Vec<f64> {
    let n = spectrum.signal_len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let x0 = spectrum.bin(0).re;
    let mut out = vec![x0 / nf; n];
    for &k in bins {
        if k == 0 || k >= spectrum.num_bins() {
            continue;
        }
        let amp = 2.0 * spectrum.bin(k).abs() / nf;
        let phase = spectrum.bin(k).arg();
        for (i, sample) in out.iter_mut().enumerate() {
            let angle = 2.0 * std::f64::consts::PI * k as f64 * i as f64 / nf + phase;
            *sample += amp * angle.cos();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine_signal(n: usize, k0: usize, amp: f64, offset: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                offset + amp * (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos()
            })
            .collect()
    }

    #[test]
    fn bin_count_and_frequencies() {
        let s = Spectrum::from_signal(&vec![0.0; 100], 10.0);
        assert_eq!(s.num_bins(), 51);
        assert_eq!(s.signal_len(), 100);
        assert!((s.freq_resolution() - 0.1).abs() < 1e-12);
        assert!((s.frequency(10) - 1.0).abs() < 1e-12);
        assert!((s.nyquist() - 5.0).abs() < 1e-12);
        let freqs = s.frequencies();
        assert_eq!(freqs.len(), 51);
        assert!((freqs[50] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dc_offset_equals_signal_mean() {
        let signal = vec![3.0; 64];
        let s = Spectrum::from_signal(&signal, 1.0);
        assert!((s.dc_offset() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_power_concentrates_in_one_bin() {
        let n = 200;
        let signal = cosine_signal(n, 8, 2.0, 5.0);
        let s = Spectrum::from_signal(&signal, 1.0);
        let normed = s.normalized_powers();
        // DC dominates, then bin 8; all other non-DC bins are ~zero.
        let non_dc_max = (1..s.num_bins())
            .max_by(|&a, &b| normed[a].partial_cmp(&normed[b]).unwrap())
            .unwrap();
        assert_eq!(non_dc_max, 8);
        assert_eq!(s.argmax_power(), Some(8));
        for (k, &power) in normed.iter().enumerate().take(s.num_bins()).skip(1) {
            if k != 8 {
                assert!(power < 1e-12, "unexpected power at bin {k}");
            }
        }
    }

    #[test]
    fn single_sided_amplitudes_recover_cosine_amplitude() {
        let n = 128;
        let signal = cosine_signal(n, 4, 1.5, 2.0);
        let s = Spectrum::from_signal(&signal, 1.0);
        let amps = s.single_sided_amplitudes();
        assert!((amps[0] - 2.0).abs() < 1e-9, "DC amplitude");
        assert!((amps[4] - 1.5).abs() < 1e-9, "cosine amplitude");
    }

    #[test]
    fn normalized_powers_sum_to_one() {
        let signal: Vec<f64> = (0..150).map(|i| (i % 7) as f64).collect();
        let s = Spectrum::from_signal(&signal, 2.0);
        let total: f64 = s.normalized_powers().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_signal_has_zero_power() {
        let s = Spectrum::from_signal(&vec![0.0; 32], 1.0);
        assert_eq!(s.total_power(), 0.0);
        assert!(s.normalized_powers().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn empty_signal_is_handled() {
        let s = Spectrum::from_signal(&[], 1.0);
        assert_eq!(s.num_bins(), 0);
        assert_eq!(s.dc_offset(), 0.0);
        assert!(s.powers().is_empty());
        assert!(s.powers_without_dc().is_empty());
        assert_eq!(s.argmax_power(), None);
    }

    #[test]
    #[should_panic(expected = "sampling frequency must be positive")]
    fn non_positive_sampling_freq_panics() {
        Spectrum::from_signal(&[1.0, 2.0], 0.0);
    }

    #[test]
    fn reconstruction_with_single_bin_matches_pure_cosine() {
        let n = 100;
        let signal = cosine_signal(n, 5, 3.0, 7.0);
        let s = Spectrum::from_signal(&signal, 1.0);
        let rec = reconstruct_from_top_bins(&s, 1);
        for (a, b) in rec.iter().zip(signal.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn reconstruction_with_more_bins_reduces_error() {
        // Square-ish periodic signal: more harmonics => better fit.
        let n = 240;
        let signal: Vec<f64> = (0..n)
            .map(|i| if (i / 20) % 2 == 0 { 10.0 } else { 0.0 })
            .collect();
        let s = Spectrum::from_signal(&signal, 1.0);
        let err = |rec: &[f64]| -> f64 {
            rec.iter()
                .zip(&signal)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
        };
        let e1 = err(&reconstruct_from_top_bins(&s, 1));
        let e5 = err(&reconstruct_from_top_bins(&s, 5));
        let e20 = err(&reconstruct_from_top_bins(&s, 20));
        assert!(e5 < e1);
        assert!(e20 < e5);
    }

    #[test]
    fn reconstruct_from_bins_ignores_invalid_indices() {
        let n = 50;
        let signal = cosine_signal(n, 3, 1.0, 0.5);
        let s = Spectrum::from_signal(&signal, 1.0);
        let rec = reconstruct_from_bins(&s, &[0, 3, 999]);
        for (a, b) in rec.iter().zip(signal.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn powers_without_dc_drops_first_bin() {
        let signal = cosine_signal(64, 2, 1.0, 4.0);
        let s = Spectrum::from_signal(&signal, 1.0);
        let all = s.powers();
        let no_dc = s.powers_without_dc();
        assert_eq!(no_dc.len(), all.len() - 1);
        assert_eq!(no_dc[0], all[1]);
    }
}
