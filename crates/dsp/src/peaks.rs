//! Peak detection modelled on SciPy's `find_peaks`.
//!
//! FTIO uses peak detection twice: on the autocorrelation function to find
//! period candidates (paper §II-C, with a height threshold of 0.15), and as an
//! alternative outlier-detection strategy on the power spectrum.

/// Configuration for [`find_peaks`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PeakConfig {
    /// Minimum absolute height a sample must reach to qualify as a peak.
    pub min_height: Option<f64>,
    /// Minimum vertical distance to the immediate neighbouring samples
    /// (SciPy's `threshold` parameter).
    pub min_threshold: Option<f64>,
    /// Minimum horizontal distance (in samples) between retained peaks.
    /// Smaller peaks are removed first, as in SciPy.
    pub min_distance: Option<usize>,
    /// Minimum prominence: the height of the peak above the higher of the two
    /// bases found by descending to the lowest point before a higher peak (or
    /// the signal edge) on each side.
    pub min_prominence: Option<f64>,
}

impl PeakConfig {
    /// A configuration with only a minimum-height constraint (the common FTIO case).
    pub fn with_height(height: f64) -> Self {
        PeakConfig {
            min_height: Some(height),
            ..Default::default()
        }
    }
}

/// A detected peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Sample index of the local maximum.
    pub index: usize,
    /// Signal value at the peak.
    pub height: f64,
    /// Topographic prominence of the peak.
    pub prominence: f64,
}

/// Finds local maxima of `signal` subject to the constraints in `config`,
/// returned in increasing index order.
///
/// A sample is a local maximum if it is strictly greater than its left
/// neighbour and greater than or equal to its right neighbour; for plateaus
/// the left-most plateau sample whose right edge eventually drops is used
/// (plateau midpoints, as SciPy computes them, are not needed here).
pub fn find_peaks(signal: &[f64], config: &PeakConfig) -> Vec<Peak> {
    let n = signal.len();
    if n < 3 {
        return Vec::new();
    }

    // 1. Local maxima (with plateau handling: take the plateau's midpoint).
    let mut candidates: Vec<usize> = Vec::new();
    let mut i = 1;
    while i < n - 1 {
        if signal[i] > signal[i - 1] {
            // Walk over a potential plateau.
            let mut j = i;
            while j + 1 < n && signal[j + 1] == signal[i] {
                j += 1;
            }
            if j < n - 1 && signal[j + 1] < signal[i] {
                candidates.push((i + j) / 2);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    // 2. Height filter.
    if let Some(h) = config.min_height {
        candidates.retain(|&idx| signal[idx] >= h);
    }

    // 3. Neighbour-threshold filter.
    if let Some(t) = config.min_threshold {
        candidates.retain(|&idx| {
            let left = signal[idx] - signal[idx - 1];
            let right = signal[idx] - signal[idx + 1];
            left >= t && right >= t
        });
    }

    // 4. Prominence filter (prominences always computed for the output).
    let mut peaks: Vec<Peak> = candidates
        .iter()
        .map(|&idx| Peak {
            index: idx,
            height: signal[idx],
            prominence: prominence(signal, idx),
        })
        .collect();
    if let Some(p) = config.min_prominence {
        peaks.retain(|peak| peak.prominence >= p);
    }

    // 5. Distance filter: greedily keep the highest peaks.
    if let Some(d) = config.min_distance {
        if d > 1 {
            let mut order: Vec<usize> = (0..peaks.len()).collect();
            order.sort_by(|&a, &b| {
                peaks[b]
                    .height
                    .partial_cmp(&peaks[a].height)
                    .expect("NaN peak height")
            });
            let mut keep = vec![true; peaks.len()];
            for &oi in &order {
                if !keep[oi] {
                    continue;
                }
                for (oj, keep_j) in keep.iter_mut().enumerate() {
                    if oj != oi
                        && *keep_j
                        && peaks[oj].index.abs_diff(peaks[oi].index) < d
                        && peaks[oj].height <= peaks[oi].height
                    {
                        *keep_j = false;
                    }
                }
            }
            peaks = peaks
                .into_iter()
                .zip(keep)
                .filter_map(|(p, k)| if k { Some(p) } else { None })
                .collect();
        }
    }

    peaks
}

/// Convenience wrapper returning only the peak indices.
pub fn find_peak_indices(signal: &[f64], config: &PeakConfig) -> Vec<usize> {
    find_peaks(signal, config)
        .into_iter()
        .map(|p| p.index)
        .collect()
}

/// Topographic prominence of the local maximum at `idx`.
fn prominence(signal: &[f64], idx: usize) -> f64 {
    let h = signal[idx];
    // Walk left until a sample higher than h (or the boundary); the base is the
    // minimum encountered. Same on the right. Prominence is h minus the higher base.
    let mut left_base = h;
    for i in (0..idx).rev() {
        if signal[i] > h {
            break;
        }
        left_base = left_base.min(signal[i]);
    }
    let mut right_base = h;
    for &v in &signal[idx + 1..] {
        if v > h {
            break;
        }
        right_base = right_base.min(v);
    }
    h - left_base.max(right_base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_peaks() {
        let signal = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::default());
        assert_eq!(peaks, vec![1, 3, 5]);
    }

    #[test]
    fn height_filter_removes_small_peaks() {
        let signal = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::with_height(1.5));
        assert_eq!(peaks, vec![3, 5]);
    }

    #[test]
    fn no_peaks_at_boundaries() {
        let signal = [5.0, 1.0, 0.5, 0.2, 7.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::default());
        assert!(peaks.is_empty());
    }

    #[test]
    fn plateau_returns_midpoint() {
        let signal = [0.0, 1.0, 2.0, 2.0, 2.0, 1.0, 0.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::default());
        assert_eq!(peaks, vec![3]);
    }

    #[test]
    fn threshold_filter_requires_sharp_peaks() {
        // The peak at index 1 rises only 0.1 above its right neighbour.
        let signal = [0.0, 1.0, 0.9, 0.0, 2.0, 0.0];
        let cfg = PeakConfig {
            min_threshold: Some(0.5),
            ..Default::default()
        };
        let peaks = find_peak_indices(&signal, &cfg);
        assert_eq!(peaks, vec![4]);
    }

    #[test]
    fn distance_filter_keeps_highest() {
        let signal = [0.0, 1.0, 0.5, 2.0, 0.5, 1.5, 0.0];
        let cfg = PeakConfig {
            min_distance: Some(3),
            ..Default::default()
        };
        let peaks = find_peak_indices(&signal, &cfg);
        // Peak at 3 (height 2.0) wins over neighbours at 1 and 5.
        assert_eq!(peaks, vec![3]);
    }

    #[test]
    fn prominence_of_isolated_peak_equals_height_above_floor() {
        let signal = [0.0, 0.0, 5.0, 0.0, 0.0];
        let peaks = find_peaks(&signal, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].prominence - 5.0).abs() < 1e-12);
    }

    #[test]
    fn prominence_filter_drops_shoulder_peaks() {
        // Small bump riding on the side of a big peak has low prominence.
        let signal = [0.0, 1.0, 4.0, 3.9, 4.05, 0.5, 0.0];
        let cfg = PeakConfig {
            min_prominence: Some(1.0),
            ..Default::default()
        };
        let peaks = find_peak_indices(&signal, &cfg);
        assert_eq!(peaks, vec![4]);
        let all = find_peaks(&signal, &PeakConfig::default());
        assert_eq!(all.len(), 2);
        assert!(all[0].prominence < 0.2);
    }

    #[test]
    fn short_signals_have_no_peaks() {
        assert!(find_peaks(&[], &PeakConfig::default()).is_empty());
        assert!(find_peaks(&[1.0], &PeakConfig::default()).is_empty());
        assert!(find_peaks(&[1.0, 2.0], &PeakConfig::default()).is_empty());
    }

    #[test]
    fn periodic_signal_peak_spacing_matches_period() {
        let period = 20usize;
        let n = 200;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).cos())
            .collect();
        let peaks = find_peak_indices(&signal, &PeakConfig::with_height(0.5));
        assert!(peaks.len() >= 8);
        for pair in peaks.windows(2) {
            assert_eq!(pair[1] - pair[0], period);
        }
    }
}
