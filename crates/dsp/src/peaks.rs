//! Peak detection modelled on SciPy's `find_peaks`.
//!
//! FTIO uses peak detection twice: on the autocorrelation function to find
//! period candidates (paper §II-C, with a height threshold of 0.15), and as an
//! alternative outlier-detection strategy on the power spectrum.

/// Configuration for [`find_peaks`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PeakConfig {
    /// Minimum absolute height a sample must reach to qualify as a peak.
    pub min_height: Option<f64>,
    /// Minimum vertical distance to the immediate neighbouring samples
    /// (SciPy's `threshold` parameter).
    pub min_threshold: Option<f64>,
    /// Minimum horizontal distance (in samples) between retained peaks.
    /// Smaller peaks are removed first, as in SciPy.
    pub min_distance: Option<usize>,
    /// Minimum prominence: the height of the peak above the higher of the two
    /// bases found by descending to the lowest point before a higher peak (or
    /// the signal edge) on each side.
    pub min_prominence: Option<f64>,
}

impl PeakConfig {
    /// A configuration with only a minimum-height constraint (the common FTIO case).
    pub fn with_height(height: f64) -> Self {
        PeakConfig {
            min_height: Some(height),
            ..Default::default()
        }
    }
}

/// A detected peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Sample index of the local maximum.
    pub index: usize,
    /// Signal value at the peak.
    pub height: f64,
    /// Topographic prominence of the peak.
    pub prominence: f64,
}

/// Finds local maxima of `signal` subject to the constraints in `config`,
/// returned in increasing index order.
///
/// A sample is a local maximum if it rises above its left neighbour and
/// eventually drops on the right. A plateau of equal samples counts as one
/// peak reported at the plateau's *midpoint* — `(first + last) / 2`, which for
/// an even-length plateau is the left-of-centre sample — exactly as SciPy's
/// `find_peaks` computes it.
///
/// Prominences are computed for every reported peak in a single
/// monotonic-stack pass over the signal (`O(n)` for *all* peaks together, not
/// `O(n)` per peak), so peak-dense signals such as high-rate autocorrelation
/// functions stay linear.
pub fn find_peaks(signal: &[f64], config: &PeakConfig) -> Vec<Peak> {
    let n = signal.len();
    if n < 3 {
        return Vec::new();
    }

    // 1. Local maxima (with plateau handling: take the plateau's midpoint).
    let mut candidates: Vec<usize> = Vec::new();
    let mut i = 1;
    while i < n - 1 {
        if signal[i] > signal[i - 1] {
            // Walk over a potential plateau.
            let mut j = i;
            while j + 1 < n && signal[j + 1] == signal[i] {
                j += 1;
            }
            if j < n - 1 && signal[j + 1] < signal[i] {
                candidates.push((i + j) / 2);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    // 2. Height filter.
    if let Some(h) = config.min_height {
        candidates.retain(|&idx| signal[idx] >= h);
    }

    // 3. Neighbour-threshold filter.
    if let Some(t) = config.min_threshold {
        candidates.retain(|&idx| {
            let left = signal[idx] - signal[idx - 1];
            let right = signal[idx] - signal[idx + 1];
            left >= t && right >= t
        });
    }

    // 4. Prominence filter (prominences always computed for the output).
    let mut peaks: Vec<Peak> = if candidates.is_empty() {
        Vec::new()
    } else {
        let left = side_bases(signal, false);
        let right = side_bases(signal, true);
        candidates
            .iter()
            .map(|&idx| Peak {
                index: idx,
                height: signal[idx],
                prominence: signal[idx] - left[idx].max(right[idx]),
            })
            .collect()
    };
    if let Some(p) = config.min_prominence {
        peaks.retain(|peak| peak.prominence >= p);
    }

    // 5. Distance filter: greedily keep the highest peaks.
    if let Some(d) = config.min_distance {
        if d > 1 {
            let mut order: Vec<usize> = (0..peaks.len()).collect();
            order.sort_by(|&a, &b| {
                peaks[b]
                    .height
                    .partial_cmp(&peaks[a].height)
                    .expect("NaN peak height")
            });
            let mut keep = vec![true; peaks.len()];
            for &oi in &order {
                if !keep[oi] {
                    continue;
                }
                for (oj, keep_j) in keep.iter_mut().enumerate() {
                    if oj != oi
                        && *keep_j
                        && peaks[oj].index.abs_diff(peaks[oi].index) < d
                        && peaks[oj].height <= peaks[oi].height
                    {
                        *keep_j = false;
                    }
                }
            }
            peaks = peaks
                .into_iter()
                .zip(keep)
                .filter_map(|(p, k)| if k { Some(p) } else { None })
                .collect();
        }
    }

    peaks
}

/// Convenience wrapper returning only the peak indices.
pub fn find_peak_indices(signal: &[f64], config: &PeakConfig) -> Vec<usize> {
    find_peaks(signal, config)
        .into_iter()
        .map(|p| p.index)
        .collect()
}

/// One-sided peak bases for *every* index in a single monotonic-stack pass.
///
/// `bases[i]` is the minimum sample value strictly between `i` and the nearest
/// strictly-higher sample towards the scanned-from side (the signal edge when
/// no higher sample exists), clamped to `signal[i]` — exactly the quantity the
/// per-peak walk in [`prominence_naive`] computes, but `O(n)` for all indices
/// together instead of `O(n)` per index.
///
/// The stack holds `(height, absorbed)` pairs with heights strictly decreasing
/// from bottom to top; `absorbed` is the minimum of the samples strictly
/// between that entry and its own nearest strictly-higher sample (everything
/// the entry swallowed when it was pushed). When a new sample `x` arrives,
/// every entry with `height <= x` is folded — height and absorbed minimum —
/// into a running minimum (`carry`); the remaining top is the nearest
/// strictly-higher sample and `carry` is exactly the minimum over the base
/// window, which `x` then records as its own `absorbed` value.
fn side_bases(signal: &[f64], from_right: bool) -> Vec<f64> {
    let n = signal.len();
    let mut bases = vec![0.0; n];
    let mut stack: Vec<(f64, f64)> = Vec::new();
    for t in 0..n {
        let i = if from_right { n - 1 - t } else { t };
        let x = signal[i];
        let mut carry = f64::INFINITY;
        while let Some(&(h, absorbed)) = stack.last() {
            if h <= x {
                carry = carry.min(h).min(absorbed);
                stack.pop();
            } else {
                break;
            }
        }
        bases[i] = carry.min(x);
        stack.push((x, carry));
    }
    bases
}

/// Topographic prominence of the local maximum at `idx`, computed by the
/// textbook per-peak walk: descend on each side to the lowest point before a
/// strictly higher sample (or the signal edge); prominence is the height above
/// the higher of the two bases.
///
/// This is `O(n)` *per peak* and exists as the independent reference the
/// randomized tests (and the benchmark baseline) compare the single-pass
/// monotonic-stack implementation in [`find_peaks`] against.
#[doc(hidden)]
pub fn prominence_naive(signal: &[f64], idx: usize) -> f64 {
    let h = signal[idx];
    let mut left_base = h;
    for i in (0..idx).rev() {
        if signal[i] > h {
            break;
        }
        left_base = left_base.min(signal[i]);
    }
    let mut right_base = h;
    for &v in &signal[idx + 1..] {
        if v > h {
            break;
        }
        right_base = right_base.min(v);
    }
    h - left_base.max(right_base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_peaks() {
        let signal = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::default());
        assert_eq!(peaks, vec![1, 3, 5]);
    }

    #[test]
    fn height_filter_removes_small_peaks() {
        let signal = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::with_height(1.5));
        assert_eq!(peaks, vec![3, 5]);
    }

    #[test]
    fn no_peaks_at_boundaries() {
        let signal = [5.0, 1.0, 0.5, 0.2, 7.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::default());
        assert!(peaks.is_empty());
    }

    #[test]
    fn plateau_returns_midpoint() {
        let signal = [0.0, 1.0, 2.0, 2.0, 2.0, 1.0, 0.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::default());
        assert_eq!(peaks, vec![3]);
    }

    /// Pins the documented plateau contract: a plateau counts as one peak at
    /// `(first + last) / 2`, which for even-length plateaus is the
    /// left-of-centre sample.
    #[test]
    fn even_plateau_returns_left_of_centre() {
        // Plateau over indices 2..=5 (length 4): midpoint (2 + 5) / 2 = 3.
        let signal = [0.0, 1.0, 2.0, 2.0, 2.0, 2.0, 1.0, 0.0];
        let peaks = find_peak_indices(&signal, &PeakConfig::default());
        assert_eq!(peaks, vec![3]);
        // A plateau that runs into the signal edge never drops: not a peak.
        let edge = [0.0, 1.0, 2.0, 2.0];
        assert!(find_peak_indices(&edge, &PeakConfig::default()).is_empty());
    }

    #[test]
    fn threshold_filter_requires_sharp_peaks() {
        // The peak at index 1 rises only 0.1 above its right neighbour.
        let signal = [0.0, 1.0, 0.9, 0.0, 2.0, 0.0];
        let cfg = PeakConfig {
            min_threshold: Some(0.5),
            ..Default::default()
        };
        let peaks = find_peak_indices(&signal, &cfg);
        assert_eq!(peaks, vec![4]);
    }

    #[test]
    fn distance_filter_keeps_highest() {
        let signal = [0.0, 1.0, 0.5, 2.0, 0.5, 1.5, 0.0];
        let cfg = PeakConfig {
            min_distance: Some(3),
            ..Default::default()
        };
        let peaks = find_peak_indices(&signal, &cfg);
        // Peak at 3 (height 2.0) wins over neighbours at 1 and 5.
        assert_eq!(peaks, vec![3]);
    }

    #[test]
    fn prominence_of_isolated_peak_equals_height_above_floor() {
        let signal = [0.0, 0.0, 5.0, 0.0, 0.0];
        let peaks = find_peaks(&signal, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].prominence - 5.0).abs() < 1e-12);
    }

    #[test]
    fn prominence_filter_drops_shoulder_peaks() {
        // Small bump riding on the side of a big peak has low prominence.
        let signal = [0.0, 1.0, 4.0, 3.9, 4.05, 0.5, 0.0];
        let cfg = PeakConfig {
            min_prominence: Some(1.0),
            ..Default::default()
        };
        let peaks = find_peak_indices(&signal, &cfg);
        assert_eq!(peaks, vec![4]);
        let all = find_peaks(&signal, &PeakConfig::default());
        assert_eq!(all.len(), 2);
        assert!(all[0].prominence < 0.2);
    }

    #[test]
    fn short_signals_have_no_peaks() {
        assert!(find_peaks(&[], &PeakConfig::default()).is_empty());
        assert!(find_peaks(&[1.0], &PeakConfig::default()).is_empty());
        assert!(find_peaks(&[1.0, 2.0], &PeakConfig::default()).is_empty());
    }

    /// Randomized property test: the single-pass monotonic-stack prominence
    /// must agree with the retained naive per-peak walk on arbitrary signals,
    /// including plateaus (quantised values) and monotone runs.
    #[test]
    fn stack_prominence_matches_naive_reference_on_random_signals() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x9ea6_5000);
        for case in 0..200 {
            let n = rng.gen_range(3usize..300);
            // Half the cases quantise to few levels so plateaus and exact ties
            // are common; the rest use continuous values.
            let quantised = case % 2 == 0;
            let signal: Vec<f64> = (0..n)
                .map(|_| {
                    let v = rng.gen_range(-10.0f64..10.0);
                    if quantised {
                        (v / 2.5).round() * 2.5
                    } else {
                        v
                    }
                })
                .collect();
            let peaks = find_peaks(&signal, &PeakConfig::default());
            for peak in &peaks {
                let expected = prominence_naive(&signal, peak.index);
                assert!(
                    (peak.prominence - expected).abs() < 1e-12,
                    "case {case} n={n} idx={}: stack {} vs naive {expected}",
                    peak.index,
                    peak.prominence
                );
            }
        }
    }

    /// The stack prominence also agrees at *every* candidate position of a
    /// dense sawtooth, where all samples participate in some peak's base.
    #[test]
    fn stack_prominence_matches_naive_on_dense_sawtooth() {
        let signal: Vec<f64> = (0..240)
            .map(|i| ((i % 7) as f64) + ((i % 3) as f64) * 0.25)
            .collect();
        let peaks = find_peaks(&signal, &PeakConfig::default());
        assert!(!peaks.is_empty());
        for peak in &peaks {
            let expected = prominence_naive(&signal, peak.index);
            assert!((peak.prominence - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_signal_peak_spacing_matches_period() {
        let period = 20usize;
        let n = 200;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).cos())
            .collect();
        let peaks = find_peak_indices(&signal, &PeakConfig::with_height(0.5));
        assert!(peaks.len() >= 8);
        for pair in peaks.windows(2) {
            assert_eq!(pair[1] - pair[0], period);
        }
    }
}
