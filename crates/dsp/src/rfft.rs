//! Real-input FFT: the forward r2c transform and its c2r inverse.
//!
//! FTIO only ever transforms *real* bandwidth signals, whose spectra are
//! conjugate-symmetric: bins `k` and `N-k` are redundant. [`RealFft`] exploits
//! this by packing the `N` real samples into `N/2` complex values
//! (`z_k = x_{2k} + i·x_{2k+1}`), running an `N/2`-point complex FFT, and
//! recombining with an `O(N)` split post-pass:
//!
//! ```text
//! X_k = (Z_k + conj(Z_{H-k}))/2  −  (i/2)·W_N^k·(Z_k − conj(Z_{H-k})),   H = N/2
//! ```
//!
//! This halves both the arithmetic and the memory traffic compared to running
//! the full `N`-point complex transform, and only bins `0..=N/2` — the ones
//! the single-sided spectrum keeps — are produced. Odd lengths fall back to a
//! complex transform internally but still return only the half spectrum.
//!
//! The inverse direction ([`RealFft::inverse`], even lengths) undoes the split
//! and runs the `N/2`-point complex FFT backwards; the autocorrelation
//! (Wiener–Khinchin) pipeline uses it so the power spectrum never has to be
//! mirrored back to full length.
//!
//! Plans precompute all tables; processing with caller-provided buffers does
//! not allocate once the buffers have grown to size. The free function
//! [`rfft`] is the cached convenience entry point.

use crate::complex::{Complex, SplitComplex};
use crate::fft::{Direction, Fft};
use crate::plan_cache;

/// A reusable real-input FFT plan for a fixed transform length.
///
/// # Examples
///
/// ```
/// use ftio_dsp::rfft::RealFft;
///
/// let plan = RealFft::new(8);
/// let signal: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin()).collect();
/// let mut half = Vec::new();
/// plan.process(&signal, &mut half);
/// assert_eq!(half.len(), 5); // bins 0 ..= N/2
///
/// let mut roundtrip = Vec::new();
/// plan.inverse(&half, &mut roundtrip);
/// for (a, b) in roundtrip.iter().zip(signal.iter()) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct RealFft {
    len: usize,
    /// Complex plan of length `len/2` (even `len`) or `len` (odd fallback).
    inner: Fft,
    /// Split twiddles `W_N^k = exp(-2πik/N)` for `k in 0..H` (even `len` only).
    twiddles: Vec<Complex>,
}

impl RealFft {
    /// Creates a plan for real transforms of length `len`.
    ///
    /// Prefer [`crate::plan_cache::rfft_plan`] on hot paths: it memoises plans
    /// per thread.
    pub fn new(len: usize) -> Self {
        if len <= 1 {
            return RealFft {
                len,
                inner: Fft::new(len),
                twiddles: Vec::new(),
            };
        }
        if len % 2 == 0 {
            let half = len / 2;
            let twiddles = (0..half)
                .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / len as f64))
                .collect();
            RealFft {
                len,
                inner: Fft::new(half),
                twiddles,
            }
        } else {
            RealFft {
                len,
                inner: Fft::new(len),
                twiddles: Vec::new(),
            }
        }
    }

    /// The real signal length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of half-spectrum bins produced: `N/2 + 1` (0 for an empty plan).
    #[inline]
    pub fn output_len(&self) -> usize {
        if self.len == 0 {
            0
        } else {
            self.len / 2 + 1
        }
    }

    /// Forward transform: writes the half spectrum (bins `0..=N/2`) of the
    /// real `signal` into `out`.
    ///
    /// `out` is resized as needed and reused across calls; work buffers come
    /// from the thread-local pool, so steady-state invocations do not
    /// allocate.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the plan length.
    pub fn process(&self, signal: &[f64], out: &mut Vec<Complex>) {
        assert_eq!(
            signal.len(),
            self.len,
            "real FFT plan length {} does not match signal length {}",
            self.len,
            signal.len()
        );
        self.process_padded(signal, out);
    }

    /// Forward transform of `signal` zero-padded (virtually) to the plan
    /// length: `signal.len()` may be at most `len`; missing samples read as 0.
    ///
    /// This is the entry point for padded convolution-style uses such as the
    /// FFT autocorrelation, which would otherwise have to materialise the
    /// padded buffer.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` exceeds the plan length.
    pub fn process_padded(&self, signal: &[f64], out: &mut Vec<Complex>) {
        let mut half = plan_cache::take_split(self.output_len());
        self.process_padded_split(signal, &mut half);
        out.clear();
        out.extend(
            half.re
                .iter()
                .zip(&half.im)
                .map(|(&r, &i)| Complex::new(r, i)),
        );
        plan_cache::give_split(half);
    }

    /// Forward transform with deinterleaved output: writes the half spectrum
    /// (bins `0..=N/2`) of the zero-padded real `signal` into the planes of
    /// `out`.
    ///
    /// This is the native form of the transform — the split recombination and
    /// any downstream elementwise pass (the autocorrelation's `|X|²` fold, a
    /// power-spectrum computation) run on contiguous `f64` planes and
    /// autovectorise. `out` is resized to [`RealFft::output_len`].
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` exceeds the plan length.
    pub fn process_padded_split(&self, signal: &[f64], out: &mut SplitComplex) {
        assert!(
            signal.len() <= self.len,
            "signal length {} exceeds real FFT plan length {}",
            signal.len(),
            self.len
        );
        let n = self.len;
        if n == 0 {
            out.resize(0);
            return;
        }
        if n == 1 {
            out.resize(1);
            out.re[0] = signal.first().copied().unwrap_or(0.0);
            out.im[0] = 0.0;
            return;
        }
        if n % 2 == 0 {
            let h = n / 2;
            let mut z = plan_cache::take_split(h);
            // Pack pairs of real samples into complex values, zero-padding
            // past the end of `signal`.
            let at = |i: usize| signal.get(i).copied().unwrap_or(0.0);
            for k in 0..h {
                z.re[k] = at(2 * k);
                z.im[k] = at(2 * k + 1);
            }
            self.inner
                .process_split(&mut z.re, &mut z.im, Direction::Forward);

            out.resize(h + 1);
            // DC and Nyquist come straight from Z_0.
            out.re[0] = z.re[0] + z.im[0];
            out.im[0] = 0.0;
            out.re[h] = z.re[0] - z.im[0];
            out.im[h] = 0.0;
            for k in 1..h {
                let ar = z.re[k];
                let ai = z.im[k];
                let br = z.re[h - k];
                let bi = -z.im[h - k];
                let er = 0.5 * (ar + br);
                let ei = 0.5 * (ai + bi);
                let odd_r = 0.5 * (ar - br);
                let odd_i = 0.5 * (ai - bi);
                let w = self.twiddles[k];
                // odd = ((a − conj(b))/2 · W_N^k) · (−i)
                let pr = odd_r * w.re - odd_i * w.im;
                let pi = odd_r * w.im + odd_i * w.re;
                out.re[k] = er + pi;
                out.im[k] = ei - pr;
            }
            plan_cache::give_split(z);
        } else {
            let mut buf = plan_cache::take_split(n);
            for i in 0..n {
                buf.re[i] = signal.get(i).copied().unwrap_or(0.0);
                buf.im[i] = 0.0;
            }
            self.inner
                .process_split(&mut buf.re, &mut buf.im, Direction::Forward);
            out.resize(n / 2 + 1);
            out.re.copy_from_slice(&buf.re[..n / 2 + 1]);
            out.im.copy_from_slice(&buf.im[..n / 2 + 1]);
            plan_cache::give_split(buf);
        }
    }

    /// Inverse transform: recovers the real signal from its half spectrum
    /// (bins `0..=N/2`), including the `1/N` normalisation, so
    /// `inverse(process(x)) == x`.
    ///
    /// `out` is resized as needed and reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `half.len()` differs from [`RealFft::output_len`].
    pub fn inverse(&self, half: &[Complex], out: &mut Vec<f64>) {
        let mut split = plan_cache::take_split(half.len());
        split.copy_from_interleaved(half);
        self.inverse_split(&split, out);
        plan_cache::give_split(split);
    }

    /// Inverse transform from a deinterleaved half spectrum — the native form
    /// ([`RealFft::process_padded_split`] is the forward counterpart).
    ///
    /// # Panics
    ///
    /// Panics if `half.len()` differs from [`RealFft::output_len`].
    pub fn inverse_split(&self, half: &SplitComplex, out: &mut Vec<f64>) {
        assert_eq!(
            half.len(),
            self.output_len(),
            "half spectrum length {} does not match the {} bins of an N={} plan",
            half.len(),
            self.output_len(),
            self.len
        );
        let n = self.len;
        out.clear();
        if n == 0 {
            return;
        }
        if n == 1 {
            out.push(half.re[0]);
            return;
        }
        if n % 2 == 0 {
            let h = n / 2;
            let mut z = plan_cache::take_split(h);
            // Undo the split: rebuild the H-point spectrum of the packed
            // signal, then one inverse complex FFT de-interleaves the samples.
            z.re[0] = 0.5 * (half.re[0] + half.re[h]);
            z.im[0] = 0.5 * (half.re[0] - half.re[h]);
            for k in 1..h {
                let ar = half.re[k];
                let ai = half.im[k];
                let br = half.re[h - k];
                let bi = -half.im[h - k];
                let er = 0.5 * (ar + br);
                let ei = 0.5 * (ai + bi);
                let odd_r = 0.5 * (ar - br);
                let odd_i = 0.5 * (ai - bi);
                let w = self.twiddles[k];
                // odd = ((a − conj(b))/2 · conj(W_N^k)) · (+i)
                let pr = odd_r * w.re + odd_i * w.im;
                let pi = -odd_r * w.im + odd_i * w.re;
                z.re[k] = er - pi;
                z.im[k] = ei + pr;
            }
            self.inner
                .process_split(&mut z.re, &mut z.im, Direction::Inverse);
            out.resize(n, 0.0);
            for k in 0..h {
                out[2 * k] = z.re[k];
                out[2 * k + 1] = z.im[k];
            }
            plan_cache::give_split(z);
        } else {
            // Odd lengths: mirror the half spectrum and run the complex plan.
            let mut buf = plan_cache::take_split(n);
            buf.re[..half.len()].copy_from_slice(&half.re);
            buf.im[..half.len()].copy_from_slice(&half.im);
            for k in 1..n.div_ceil(2) {
                buf.re[n - k] = half.re[k];
                buf.im[n - k] = -half.im[k];
            }
            self.inner
                .process_split(&mut buf.re, &mut buf.im, Direction::Inverse);
            out.extend(buf.re[..n].iter().copied());
            plan_cache::give_split(buf);
        }
    }
}

/// Forward half-spectrum FFT of a real signal: returns bins `0..=N/2`
/// (`N/2 + 1` values, empty for an empty signal).
///
/// Plans and scratch buffers come from the thread-local
/// [`crate::plan_cache`], so repeated calls at the same length perform no
/// plan construction and no scratch allocation — only the returned vector is
/// fresh. For a fully allocation-free pipeline hold a [`RealFft`] (or use
/// [`crate::plan_cache::rfft_plan`]) and reuse the output buffer.
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    let plan = plan_cache::rfft_plan(signal.len());
    let mut half = plan_cache::take_split(plan.output_len());
    plan.process_padded_split(signal, &mut half);
    let out = half.to_interleaved();
    plan_cache::give_split(half);
    out
}

/// Inverse of [`rfft`]: recovers the length-`len` real signal from its half
/// spectrum, including the `1/N` normalisation.
///
/// # Panics
///
/// Panics if `half.len() != len / 2 + 1` (for `len > 0`).
pub fn irfft(half: &[Complex], len: usize) -> Vec<f64> {
    let plan = plan_cache::rfft_plan(len);
    let mut split = plan_cache::take_split(half.len());
    split.copy_from_interleaved(half);
    let mut out = Vec::with_capacity(len);
    plan.inverse_split(&split, &mut out);
    plan_cache::give_split(split);
    out
}

/// The canonical half-spectrum length for a real signal of `len` samples.
#[inline]
pub fn half_spectrum_len(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        len / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{dft_naive, fft_real};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-50.0f64..50.0)).collect()
    }

    /// Independent reference: the plain N-point complex transform, built
    /// directly (NOT `fft_real`, which is itself implemented on top of
    /// `rfft` and would make the comparison circular).
    fn full_complex_reference(signal: &[f64]) -> Vec<Complex> {
        let buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        Fft::new(buf.len()).forward(&buf)
    }

    fn assert_half_matches_full(signal: &[f64], tol: f64) {
        let n = signal.len();
        let half = rfft(signal);
        let full = full_complex_reference(signal);
        assert_eq!(half.len(), half_spectrum_len(n));
        for (k, (a, b)) in half.iter().zip(full.iter()).enumerate() {
            let scale = b.abs().max(1.0);
            assert!(
                (a.re - b.re).abs() <= tol * scale && (a.im - b.im).abs() <= tol * scale,
                "n={n} bin {k}: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn fft_real_mirror_matches_the_complex_transform() {
        // `fft_real` reconstructs the upper half from conjugate symmetry;
        // check the full spectrum against the independent complex path for
        // both parities.
        let mut rng = StdRng::seed_from_u64(0x0d59_1007);
        for &n in &[8usize, 9, 90, 97, 128, 1018] {
            let signal = random_signal(&mut rng, n);
            let mirrored = fft_real(&signal);
            let reference = full_complex_reference(&signal);
            assert_eq!(mirrored.len(), reference.len());
            for (k, (a, b)) in mirrored.iter().zip(reference.iter()).enumerate() {
                let scale = b.abs().max(1.0);
                assert!(
                    (a.re - b.re).abs() <= 1e-8 * scale && (a.im - b.im).abs() <= 1e-8 * scale,
                    "n={n} bin {k}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn rfft_matches_complex_fft_across_plan_kinds() {
        let mut rng = StdRng::seed_from_u64(0x0d59_1001);
        // Power-of-two, even-composite, odd-smooth, and prime lengths —
        // including the 7817/7919 prime lengths from the benchmark set.
        for &n in &[
            2usize, 4, 8, 64, 256, 8192, 6, 12, 20, 60, 360, 15, 105, 97, 211, 7817, 7919,
        ] {
            let signal = random_signal(&mut rng, n);
            assert_half_matches_full(&signal, 1e-8);
        }
    }

    #[test]
    fn rfft_matches_naive_dft_for_small_lengths() {
        let mut rng = StdRng::seed_from_u64(0x0d59_1002);
        for &n in &[2usize, 3, 5, 8, 12, 31, 64, 97, 128] {
            let signal = random_signal(&mut rng, n);
            let complex: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
            let slow = dft_naive(&complex, Direction::Forward);
            let half = rfft(&signal);
            for (k, a) in half.iter().enumerate() {
                let b = slow[k];
                let scale = b.abs().max(1.0);
                assert!(
                    (a.re - b.re).abs() <= 1e-8 * scale && (a.im - b.im).abs() <= 1e-8 * scale,
                    "n={n} bin {k}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn randomized_lengths_match_the_full_path() {
        let mut rng = StdRng::seed_from_u64(0x0d59_1003);
        for _case in 0..48 {
            let n = rng.gen_range(1usize..400);
            let signal = random_signal(&mut rng, n);
            assert_half_matches_full(&signal, 1e-8);
        }
    }

    #[test]
    fn energy_is_preserved_in_the_half_spectrum() {
        let mut rng = StdRng::seed_from_u64(0x0d59_1004);
        for &n in &[16usize, 60, 97, 240, 7817] {
            let signal = random_signal(&mut rng, n);
            let half = rfft(&signal);
            let time_energy: f64 = signal.iter().map(|x| x * x).sum();
            // Parseval over the half spectrum: interior bins count twice.
            let mut freq_energy = half[0].norm_sqr();
            for (k, x) in half.iter().enumerate().skip(1) {
                let double = !(n % 2 == 0 && k == n / 2);
                freq_energy += if double {
                    2.0 * x.norm_sqr()
                } else {
                    x.norm_sqr()
                };
            }
            freq_energy /= n as f64;
            assert!(
                (time_energy - freq_energy).abs() <= 1e-8 * time_energy.max(1.0),
                "n={n}: {time_energy} vs {freq_energy}"
            );
        }
    }

    #[test]
    fn inverse_roundtrips_for_even_and_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(0x0d59_1005);
        for &n in &[2usize, 4, 10, 64, 100, 9, 15, 97, 1018] {
            let signal = random_signal(&mut rng, n);
            let half = rfft(&signal);
            let roundtrip = irfft(&half, n);
            assert_eq!(roundtrip.len(), n);
            for (i, (a, b)) in roundtrip.iter().zip(signal.iter()).enumerate() {
                assert!((a - b).abs() < 1e-8, "n={n} sample {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn padded_processing_equals_explicit_zero_padding() {
        let mut rng = StdRng::seed_from_u64(0x0d59_1006);
        let signal = random_signal(&mut rng, 300);
        let padded_len = 1024usize;
        let mut padded = signal.clone();
        padded.resize(padded_len, 0.0);

        let plan = RealFft::new(padded_len);
        let mut out = Vec::new();
        plan.process_padded(&signal, &mut out);
        let expect = rfft(&padded);
        assert_eq!(out.len(), expect.len());
        for (a, b) in out.iter().zip(expect.iter()) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        assert!(rfft(&[]).is_empty());
        assert_eq!(half_spectrum_len(0), 0);
        assert!(irfft(&[], 0).is_empty());

        let single = rfft(&[4.25]);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0], Complex::from_real(4.25));
        let back = irfft(&single, 1);
        assert_eq!(back, vec![4.25]);
    }

    #[test]
    #[should_panic(expected = "does not match signal length")]
    fn mismatched_signal_length_panics() {
        let plan = RealFft::new(8);
        let mut out = Vec::new();
        plan.process(&[1.0; 4], &mut out);
    }

    #[test]
    #[should_panic(expected = "does not match the")]
    fn mismatched_half_spectrum_panics() {
        let plan = RealFft::new(8);
        let mut out = Vec::new();
        plan.inverse(&[Complex::ZERO; 3], &mut out);
    }
}
