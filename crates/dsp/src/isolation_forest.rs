//! Isolation forest for one-dimensional data.
//!
//! An isolation forest flags outliers as points that are easy to isolate with
//! random axis-aligned splits: anomalous values end up in shallow leaves. FTIO
//! lists it among the alternative outlier detectors that can be applied to the
//! power spectrum instead of (or merged with) the Z-score. The implementation
//! follows Liu et al.'s original formulation, specialised to scalar samples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`IsolationForest`].
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Number of isolation trees.
    pub num_trees: usize,
    /// Sub-sample size used to build each tree (256 in the original paper,
    /// clamped to the data size).
    pub sample_size: usize,
    /// RNG seed for reproducible forests.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 100,
            sample_size: 256,
            seed: 0xF710,
        }
    }
}

enum Node {
    Internal {
        split: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        size: usize,
    },
}

/// A trained isolation forest over scalar samples.
pub struct IsolationForest {
    trees: Vec<Node>,
    sample_size: usize,
}

impl IsolationForest {
    /// Fits a forest on `data`. An empty input produces a forest that scores
    /// everything as 0.5 (neither inlier nor outlier).
    pub fn fit(data: &[f64], config: &ForestConfig) -> Self {
        if data.is_empty() {
            return IsolationForest {
                trees: Vec::new(),
                sample_size: 0,
            };
        }
        let sample_size = config.sample_size.min(data.len()).max(1);
        let height_limit = (sample_size as f64).log2().ceil().max(1.0) as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.num_trees);
        for _ in 0..config.num_trees {
            let sample: Vec<f64> = (0..sample_size)
                .map(|_| data[rng.gen_range(0..data.len())])
                .collect();
            trees.push(build_tree(&sample, 0, height_limit, &mut rng));
        }
        IsolationForest { trees, sample_size }
    }

    /// Anomaly score of `value` in `[0, 1]`; scores near 1 indicate outliers,
    /// scores well below 0.5 indicate inliers.
    pub fn score(&self, value: f64) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        let avg_path: f64 = self
            .trees
            .iter()
            .map(|t| path_length(t, value, 0))
            .sum::<f64>()
            / self.trees.len() as f64;
        let c = average_path_length(self.sample_size);
        if c == 0.0 {
            return 0.5;
        }
        2f64.powf(-avg_path / c)
    }

    /// Scores every element of `data`.
    pub fn scores(&self, data: &[f64]) -> Vec<f64> {
        data.iter().map(|&x| self.score(x)).collect()
    }

    /// Indices of `data` whose anomaly score is at least `threshold`
    /// (0.6–0.7 are common cut-offs).
    pub fn outliers(&self, data: &[f64], threshold: f64) -> Vec<usize> {
        data.iter()
            .enumerate()
            .filter_map(|(i, &x)| {
                if self.score(x) >= threshold {
                    Some(i)
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Convenience function: fit a forest with default parameters and return the
/// indices whose anomaly score reaches `threshold`.
pub fn isolation_forest_outliers(data: &[f64], threshold: f64, seed: u64) -> Vec<usize> {
    if data.is_empty() {
        return Vec::new();
    }
    let config = ForestConfig {
        seed,
        ..Default::default()
    };
    IsolationForest::fit(data, &config).outliers(data, threshold)
}

fn build_tree(sample: &[f64], depth: usize, limit: usize, rng: &mut StdRng) -> Node {
    let min = sample.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if sample.len() <= 1 || depth >= limit || min == max {
        return Node::Leaf { size: sample.len() };
    }
    let split = rng.gen_range(min..max);
    let left: Vec<f64> = sample.iter().copied().filter(|&x| x < split).collect();
    let right: Vec<f64> = sample.iter().copied().filter(|&x| x >= split).collect();
    Node::Internal {
        split,
        left: Box::new(build_tree(&left, depth + 1, limit, rng)),
        right: Box::new(build_tree(&right, depth + 1, limit, rng)),
    }
}

fn path_length(node: &Node, value: f64, depth: usize) -> f64 {
    match node {
        Node::Leaf { size } => depth as f64 + average_path_length(*size),
        Node::Internal { split, left, right } => {
            if value < *split {
                path_length(left, value, depth + 1)
            } else {
                path_length(right, value, depth + 1)
            }
        }
    }
}

/// Expected path length of an unsuccessful BST search over `n` items,
/// the normalisation constant `c(n)` from the isolation-forest paper.
fn average_path_length(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    let harmonic = (nf - 1.0).ln() + 0.577_215_664_901_532_9;
    2.0 * harmonic - 2.0 * (nf - 1.0) / nf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obvious_outlier_scores_higher_than_cluster() {
        let mut data: Vec<f64> = (0..200).map(|i| 10.0 + (i % 10) as f64 * 0.01).collect();
        data.push(1000.0);
        let forest = IsolationForest::fit(&data, &ForestConfig::default());
        let outlier_score = forest.score(1000.0);
        let inlier_score = forest.score(10.05);
        assert!(
            outlier_score > inlier_score + 0.1,
            "outlier {outlier_score} vs inlier {inlier_score}"
        );
        assert!(outlier_score > 0.6);
    }

    #[test]
    fn outliers_helper_flags_the_spike() {
        let mut data = vec![1.0; 100];
        data[37] = 500.0;
        let idx = isolation_forest_outliers(&data, 0.6, 42);
        assert_eq!(idx, vec![37]);
    }

    #[test]
    fn constant_data_has_no_outliers() {
        let data = vec![3.0; 64];
        let idx = isolation_forest_outliers(&data, 0.6, 7);
        assert!(idx.is_empty());
    }

    #[test]
    fn empty_data_is_fine() {
        assert!(isolation_forest_outliers(&[], 0.6, 1).is_empty());
    }

    #[test]
    fn scores_are_probability_like() {
        let data: Vec<f64> = (0..500).map(|i| (i % 25) as f64).collect();
        let forest = IsolationForest::fit(&data, &ForestConfig::default());
        for &x in &[0.0, 5.0, 12.0, 24.0] {
            let s = forest.score(x);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut data = vec![2.0; 50];
        data[10] = 80.0;
        let cfg = ForestConfig {
            seed: 99,
            ..Default::default()
        };
        let a = IsolationForest::fit(&data, &cfg).scores(&data);
        let b = IsolationForest::fit(&data, &cfg).scores(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn average_path_length_is_monotone() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        let mut prev = 0.0;
        for n in [2usize, 4, 16, 256, 4096] {
            let c = average_path_length(n);
            assert!(c > prev);
            prev = c;
        }
    }
}
