//! Thread-local FFT plan cache and scratch-buffer pool.
//!
//! Building an [`Fft`]/[`RealFft`] plan is far more expensive than executing
//! it: twiddle tables, the digit-reversal permutation, and (for Bluestein
//! lengths) the chirp/filter tables plus a forward FFT of the filter are all
//! computed up front. The FTIO hot paths — `Spectrum::from_signal`,
//! `autocorrelation_fft`, and the online prediction tick — transform signals
//! of the *same* length over and over, so this module memoises plans in a
//! small per-thread LRU keyed by transform length (plans serve both
//! directions, so direction is not part of the key) and pools the scratch
//! buffers the transforms work in.
//!
//! In steady state (plans cached, buffers grown) a spectral pipeline tick
//! performs **zero plan constructions and zero scratch allocations**. The
//! [`stats`] counters make that property testable: `ftio-core` pins it with a
//! steady-state online-prediction test, and any regression shows up as a
//! non-zero delta in `plans_built()` / `scratch_grows`.
//!
//! Everything here is thread-local: no locks on the hot path, and benchmark
//! or engine threads each warm their own cache.

use std::cell::RefCell;
use std::rc::Rc;

use crate::complex::SplitComplex;
use crate::fft::Fft;
use crate::rfft::RealFft;

/// Maximum number of complex-FFT and real-FFT plans kept per thread.
const PLAN_CAPACITY: usize = 16;
/// Maximum number of pooled split work buffers kept per thread. Sized for
/// the four-step FFT, whose caller holds one group buffer per parallel task
/// (up to two per pool thread and stage) plus the shared input copy.
const SCRATCH_POOL_CAPACITY: usize = 32;

/// Debug counters of the thread-local plan cache.
///
/// Snapshot with [`stats`] before and after a code region to prove it does
/// not build plans or grow scratch buffers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Complex FFT plans constructed on this thread.
    pub fft_plans_built: u64,
    /// Real-input FFT plans constructed on this thread.
    pub rfft_plans_built: u64,
    /// Cache hits (plan served without construction).
    pub plan_hits: u64,
    /// Times a scratch buffer had to allocate (grow past its capacity).
    pub scratch_grows: u64,
}

impl PlanCacheStats {
    /// Total number of plans constructed (complex + real).
    pub fn plans_built(&self) -> u64 {
        self.fft_plans_built + self.rfft_plans_built
    }
}

#[derive(Default)]
struct CacheInner {
    /// Most-recently-used first.
    fft: Vec<(usize, Rc<Fft>)>,
    rfft: Vec<(usize, Rc<RealFft>)>,
    split: Vec<SplitComplex>,
    stats: PlanCacheStats,
}

thread_local! {
    static CACHE: RefCell<CacheInner> = RefCell::new(CacheInner::default());
}

/// Returns the cached complex FFT plan for `len`, building it on first use.
pub fn fft_plan(len: usize) -> Rc<Fft> {
    let hit = CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) = cache.fft.iter().position(|(l, _)| *l == len) {
            let entry = cache.fft.remove(pos);
            let plan = entry.1.clone();
            cache.fft.insert(0, entry);
            cache.stats.plan_hits += 1;
            Some(plan)
        } else {
            None
        }
    });
    if let Some(plan) = hit {
        return plan;
    }
    // Build outside the borrow: plan construction may be slow and must never
    // re-enter the cache cell.
    let plan = Rc::new(Fft::new(len));
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.stats.fft_plans_built += 1;
        cache.fft.insert(0, (len, plan.clone()));
        cache.fft.truncate(PLAN_CAPACITY);
    });
    plan
}

/// Returns the cached real-input FFT plan for `len`, building it on first use.
pub fn rfft_plan(len: usize) -> Rc<RealFft> {
    let hit = CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) = cache.rfft.iter().position(|(l, _)| *l == len) {
            let entry = cache.rfft.remove(pos);
            let plan = entry.1.clone();
            cache.rfft.insert(0, entry);
            cache.stats.plan_hits += 1;
            Some(plan)
        } else {
            None
        }
    });
    if let Some(plan) = hit {
        return plan;
    }
    let plan = Rc::new(RealFft::new(len));
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.stats.rfft_plans_built += 1;
        cache.rfft.insert(0, (len, plan.clone()));
        cache.rfft.truncate(PLAN_CAPACITY);
    });
    plan
}

/// Snapshot of this thread's cache counters.
pub fn stats() -> PlanCacheStats {
    CACHE.with(|cache| cache.borrow().stats)
}

/// Resets this thread's cache counters to zero (the cached plans and pooled
/// buffers stay warm).
pub fn reset_stats() {
    CACHE.with(|cache| cache.borrow_mut().stats = PlanCacheStats::default());
}

/// Drops every cached plan and pooled scratch buffer on this thread,
/// releasing their memory (the counters are kept).
///
/// The cache is bounded by *entry count*, not bytes, and the scratch pool
/// keeps its largest buffers — a long-lived thread that once analysed a very
/// long signal (a 262,144-point autocorrelation plan holds megabytes of
/// Bluestein tables) retains that memory until the thread exits. Call this
/// after a burst of unusually large transforms to return to a cold cache.
pub fn clear() {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.fft.clear();
        cache.rfft.clear();
        cache.split.clear();
    });
}

/// Takes a pooled deinterleaved (structure-of-arrays) complex buffer, resized
/// to exactly `len` elements (the FFT kernels rely on the plane length
/// matching the transform length).
///
/// A real allocation — plane capacity growth — counts into
/// [`PlanCacheStats::scratch_grows`], so the steady-state zero-allocation
/// contract covers the split buffers too. Return the buffer with
/// [`give_split`]; the take/give pair is re-entrancy-safe (the Bluestein plan
/// takes nested buffers for its convolution while an outer transform holds
/// one).
pub fn take_split(len: usize) -> SplitComplex {
    // Best fit: the smallest pooled buffer that already holds `len` elements,
    // or — when none is big enough — the largest one (the cheapest to grow).
    // A plain LIFO pop would be pathological for callers that cycle through
    // mixed sizes (the four-step FFT holds many small group buffers plus one
    // full-size input): popping a small buffer for a full-size request would
    // reallocate on every call.
    let mut buf = CACHE
        .with(|cache| {
            let pool = &mut cache.borrow_mut().split;
            let fitting = pool
                .iter()
                .enumerate()
                .filter(|(_, b)| b.re.capacity() >= len)
                .min_by_key(|(_, b)| b.re.capacity())
                .map(|(i, _)| i);
            let pick = fitting.or_else(|| {
                pool.iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.re.capacity())
                    .map(|(i, _)| i)
            });
            pick.map(|i| pool.swap_remove(i))
        })
        .unwrap_or_default();
    if buf.re.capacity() < len {
        CACHE.with(|cache| cache.borrow_mut().stats.scratch_grows += 1);
    }
    buf.resize(len);
    buf
}

/// Returns a split buffer to the pool.
pub fn give_split(buf: SplitComplex) {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.split.len() < SCRATCH_POOL_CAPACITY {
            cache.split.push(buf);
        } else if let Some(smallest) = cache
            .split
            .iter_mut()
            .min_by_key(|existing| existing.re.capacity())
        {
            if smallest.re.capacity() < buf.re.capacity() {
                *smallest = buf;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::fft::{fft, fft_real, ifft};
    use crate::rfft::rfft;

    #[test]
    fn repeated_transforms_build_one_plan() {
        reset_stats();
        let signal: Vec<f64> = (0..240).map(|i| (i as f64 * 0.2).sin()).collect();
        for _ in 0..5 {
            let _ = fft_real(&signal);
        }
        let stats = stats();
        // fft_real goes through the rfft plan (inner complex plan is private
        // to it), so exactly one real plan is built, then hits.
        assert_eq!(stats.rfft_plans_built, 1, "{stats:?}");
        assert!(stats.plan_hits >= 4, "{stats:?}");
    }

    #[test]
    fn steady_state_has_no_plan_builds_or_scratch_grows() {
        let signal: Vec<f64> = (0..360).map(|i| ((i % 30) as f64) - 14.0).collect();
        let complex: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        // Warm-up: build plans, grow pooled buffers.
        for _ in 0..3 {
            let _ = rfft(&signal);
            let _ = ifft(&fft(&complex));
        }
        let before = stats();
        for _ in 0..10 {
            let _ = rfft(&signal);
            let _ = ifft(&fft(&complex));
        }
        let after = stats();
        assert_eq!(after.plans_built(), before.plans_built());
        assert_eq!(after.scratch_grows, before.scratch_grows);
        assert!(after.plan_hits > before.plan_hits);
    }

    #[test]
    fn lru_evicts_least_recently_used_plans() {
        // Fill the cache beyond capacity with distinct lengths.
        for len in 0..(PLAN_CAPACITY + 4) {
            let _ = fft_plan(len + 2);
        }
        reset_stats();
        // The most recent length must still be cached...
        let _ = fft_plan(PLAN_CAPACITY + 5);
        assert_eq!(stats().fft_plans_built, 0);
        // ...while the oldest was evicted and rebuilds.
        let _ = fft_plan(2);
        assert_eq!(stats().fft_plans_built, 1);
    }

    #[test]
    fn clear_releases_plans_and_buffers() {
        let _ = fft_plan(64);
        give_split(take_split(4096));
        clear();
        reset_stats();
        // The plan was dropped, so the next request rebuilds it...
        let _ = fft_plan(64);
        assert_eq!(stats().fft_plans_built, 1);
        // ...and the pool is empty, so fresh buffers have to grow again.
        let buf = take_split(4096);
        assert_eq!(stats().scratch_grows, 1);
        give_split(buf);
    }

    #[test]
    fn pooled_split_buffers_are_reused_and_sized_exactly() {
        let a = take_split(1024);
        assert_eq!(a.len(), 1024);
        let cap = a.re.capacity();
        give_split(a);
        reset_stats();
        let b = take_split(512);
        // Resized down to the requested length, no allocation.
        assert_eq!(b.len(), 512);
        assert!(b.re.capacity() >= cap.min(1024));
        assert_eq!(stats().scratch_grows, 0);
        give_split(b);
    }
}
