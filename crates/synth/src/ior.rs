//! IOR-like I/O phase generation.
//!
//! The paper builds its semi-synthetic traces out of *real IOR phases*: "we
//! traced IOR runs that represent a single I/O phase. [...] IOR was executed
//! 100 times on the PlaFRIM cluster using 32 processes on four nodes. Each of
//! them writes a 3.5 GB file in 1 MB contiguous requests", giving phases of
//! 10.22–13.34 s (≈ 10 GB/s aggregate). Since the actual PlaFRIM traces are
//! not available, this module generates statistically equivalent phases: the
//! same per-process volume, the same duration range, and per-request timing
//! jitter so that the aggregate bandwidth is not perfectly flat.
//!
//! The module also models a full IOR *benchmark run* (iterations × segments ×
//! block/transfer size) as used in the paper's §II-C scalability example.

use ftio_trace::{AppTrace, IoRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::uniform;

/// One I/O phase: a set of per-process requests with times relative to the
/// phase start.
#[derive(Clone, Debug, Default)]
pub struct IoPhase {
    /// Requests with start/end relative to the phase start (seconds).
    pub requests: Vec<IoRequest>,
    /// Number of processes participating in the phase.
    pub num_processes: usize,
    /// Phase duration: the latest request end, in seconds.
    pub duration: f64,
}

impl IoPhase {
    /// Total volume of the phase in bytes.
    pub fn volume(&self) -> u64 {
        self.requests.iter().map(|r| r.bytes).sum()
    }

    /// Aggregate bandwidth of the phase in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.duration > 0.0 {
            self.volume() as f64 / self.duration
        } else {
            0.0
        }
    }

    /// Instantiates the phase at absolute time `start`, applying an extra
    /// per-process delay (`delays[k]` seconds for process `k`, missing entries
    /// meaning no delay), and appends the requests to `trace`.
    ///
    /// Returns the end time of the instantiated phase.
    pub fn emit(&self, trace: &mut AppTrace, start: f64, delays: &[f64]) -> f64 {
        let mut end = start;
        for r in &self.requests {
            let delay = delays.get(r.rank).copied().unwrap_or(0.0);
            let shifted = r.shifted(start + delay);
            end = end.max(shifted.end);
            trace.push(shifted);
        }
        end
    }
}

/// Configuration of a single generated IOR-like phase.
#[derive(Clone, Copy, Debug)]
pub struct IorPhaseConfig {
    /// Number of writer processes (32 in the paper's phase library).
    pub num_processes: usize,
    /// Bytes written per process (3.5 GB in the paper).
    pub bytes_per_process: u64,
    /// Number of requests each process issues. The paper's runs issue 3,500
    /// one-megabyte requests; for analysis at 1–10 Hz a few tens of requests
    /// per process produce an indistinguishable bandwidth signal at a fraction
    /// of the memory cost, so this is configurable.
    pub requests_per_process: usize,
    /// Minimum phase duration in seconds (10.22 s in the paper's library).
    pub min_duration: f64,
    /// Maximum phase duration in seconds (13.34 s in the paper's library).
    pub max_duration: f64,
    /// Relative per-request timing jitter (0.0 = perfectly even spacing).
    pub jitter: f64,
}

impl Default for IorPhaseConfig {
    fn default() -> Self {
        IorPhaseConfig {
            num_processes: 32,
            bytes_per_process: 3_500_000_000,
            requests_per_process: 35,
            min_duration: 10.22,
            max_duration: 13.34,
            jitter: 0.05,
        }
    }
}

/// Generates one IOR-like I/O phase.
pub fn generate_phase(config: &IorPhaseConfig, rng: &mut StdRng) -> IoPhase {
    let duration = uniform(rng, config.min_duration, config.max_duration);
    generate_phase_with_duration(config, duration, rng)
}

/// Generates one IOR-like phase with an explicit duration (used by tests and
/// by workloads that need exact phase lengths).
pub fn generate_phase_with_duration(
    config: &IorPhaseConfig,
    duration: f64,
    rng: &mut StdRng,
) -> IoPhase {
    let reqs_per_proc = config.requests_per_process.max(1);
    let bytes_per_request = (config.bytes_per_process / reqs_per_proc as u64).max(1);
    let slot = duration / reqs_per_proc as f64;
    let mut requests = Vec::with_capacity(config.num_processes * reqs_per_proc);
    let mut max_end: f64 = 0.0;
    for rank in 0..config.num_processes {
        for i in 0..reqs_per_proc {
            let jitter = if config.jitter > 0.0 {
                slot * config.jitter * (rng.gen::<f64>() - 0.5)
            } else {
                0.0
            };
            let start = (i as f64 * slot + jitter).max(0.0);
            let end = (start + slot * (1.0 - config.jitter * rng.gen::<f64>() * 0.5)).min(duration);
            let end = end.max(start);
            requests.push(IoRequest::write(rank, start, end, bytes_per_request));
            max_end = max_end.max(end);
        }
    }
    IoPhase {
        requests,
        num_processes: config.num_processes,
        duration: max_end,
    }
}

/// A library of pre-generated phases, standing in for the paper's 99 traced
/// IOR phases. Phases are drawn from it at random during semi-synthetic trace
/// generation.
#[derive(Clone, Debug)]
pub struct PhaseLibrary {
    phases: Vec<IoPhase>,
}

impl PhaseLibrary {
    /// Generates a library of `count` phases.
    pub fn generate(config: &IorPhaseConfig, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let phases = (0..count)
            .map(|_| generate_phase(config, &mut rng))
            .collect();
        PhaseLibrary { phases }
    }

    /// Library matching the paper's description: 99 phases, 32 processes,
    /// 3.5 GB per process, durations in [10.22, 13.34] s.
    pub fn paper_default(seed: u64) -> Self {
        Self::generate(&IorPhaseConfig::default(), 99, seed)
    }

    /// Number of phases in the library.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// All phases.
    pub fn phases(&self) -> &[IoPhase] {
        &self.phases
    }

    /// Picks a phase uniformly at random.
    pub fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a IoPhase {
        &self.phases[rng.gen_range(0..self.phases.len())]
    }

    /// Mean phase duration across the library.
    pub fn mean_duration(&self) -> f64 {
        if self.phases.is_empty() {
            return 0.0;
        }
        self.phases.iter().map(|p| p.duration).sum::<f64>() / self.phases.len() as f64
    }
}

/// Configuration of a full IOR benchmark run (the §II-C example): every rank
/// performs `iterations × segments` write phases of `block_size` bytes in
/// `transfer_size` chunks, separated by compute/barrier gaps.
#[derive(Clone, Copy, Debug)]
pub struct IorBenchmarkConfig {
    /// Number of MPI ranks (9216 in the paper's example).
    pub num_ranks: usize,
    /// IOR iterations (8 in the paper's example).
    pub iterations: usize,
    /// Segments per iteration (2 in the paper's example).
    pub segments: usize,
    /// Block size per rank and segment in bytes (10 MB in the paper).
    pub block_size: u64,
    /// Transfer size per request in bytes (2 MB in the paper).
    pub transfer_size: u64,
    /// Aggregate file-system bandwidth available to the run, bytes/second.
    pub aggregate_bandwidth: f64,
    /// Gap between consecutive phases (compute / barrier time), seconds.
    pub gap_between_phases: f64,
    /// Time of the first phase start, seconds.
    pub start_offset: f64,
}

impl Default for IorBenchmarkConfig {
    fn default() -> Self {
        // Defaults shaped after the §II-C example: 9216 ranks, 8 iterations,
        // 2 segments, 10 MB blocks in 2 MB transfers, ~111.67 s period over a
        // 781 s window starting at ~65 s.
        IorBenchmarkConfig {
            num_ranks: 9216,
            iterations: 8,
            segments: 2,
            block_size: 10 * 1024 * 1024,
            transfer_size: 2 * 1024 * 1024,
            aggregate_bandwidth: 20.0e9,
            gap_between_phases: 107.0,
            start_offset: 64.97,
        }
    }
}

/// Generates the trace of a full IOR benchmark run.
///
/// Each of the `iterations` iterations writes `segments` segments back to
/// back; every rank contributes `block_size / transfer_size` requests per
/// segment. The phase duration follows from the aggregate volume divided by
/// `aggregate_bandwidth`, with a small per-phase variation.
pub fn generate_benchmark(config: &IorBenchmarkConfig, seed: u64) -> AppTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = AppTrace::named("IOR", config.num_ranks);
    let requests_per_rank_per_segment = (config.block_size / config.transfer_size).max(1) as usize;
    let phase_volume = config.block_size as f64 * config.num_ranks as f64 * config.segments as f64;
    let nominal_phase_duration = phase_volume / config.aggregate_bandwidth;

    let mut t = config.start_offset;
    for _ in 0..config.iterations {
        let phase_duration = nominal_phase_duration * uniform(&mut rng, 0.9, 1.15);
        let request_slot =
            phase_duration / (config.segments * requests_per_rank_per_segment) as f64;
        for rank in 0..config.num_ranks {
            for s in 0..config.segments {
                for i in 0..requests_per_rank_per_segment {
                    let idx = s * requests_per_rank_per_segment + i;
                    let start = t + idx as f64 * request_slot;
                    let end = start + request_slot;
                    trace.push(IoRequest::write(rank, start, end, config.transfer_size));
                }
            }
        }
        t += phase_duration + config.gap_between_phases * uniform(&mut rng, 0.95, 1.05);
    }
    trace
}

/// A reduced-rank variant of [`generate_benchmark`] that keeps the aggregate
/// bandwidth signal identical but represents all ranks by `represented_ranks`
/// writer processes, so experiments that only consume the application-level
/// signal do not need millions of request records.
pub fn generate_benchmark_downsampled(
    config: &IorBenchmarkConfig,
    represented_ranks: usize,
    seed: u64,
) -> AppTrace {
    let scale = (config.num_ranks as f64 / represented_ranks as f64).max(1.0);
    let reduced = IorBenchmarkConfig {
        num_ranks: represented_ranks,
        block_size: (config.block_size as f64 * scale) as u64,
        transfer_size: (config.transfer_size as f64 * scale) as u64,
        ..*config
    };
    let mut trace = generate_benchmark(&reduced, seed);
    trace.metadata_mut().num_ranks = config.num_ranks;
    trace.metadata_mut().notes = format!(
        "downsampled from {} ranks to {} writer processes",
        config.num_ranks, represented_ranks
    );
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::BandwidthTimeline;

    #[test]
    fn phase_volume_and_duration_match_config() {
        let config = IorPhaseConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let phase = generate_phase(&config, &mut rng);
        assert_eq!(phase.num_processes, 32);
        let expected_volume = 32u64 * (3_500_000_000 / 35) * 35;
        assert_eq!(phase.volume(), expected_volume);
        assert!(phase.duration >= 9.0 && phase.duration <= 13.34 + 1e-9);
        // Aggregate bandwidth is in the right ballpark (~10 GB/s).
        assert!(phase.bandwidth() > 7.0e9 && phase.bandwidth() < 12.0e9);
    }

    #[test]
    fn phase_requests_are_within_duration() {
        let mut rng = StdRng::seed_from_u64(2);
        let phase = generate_phase(&IorPhaseConfig::default(), &mut rng);
        for r in &phase.requests {
            assert!(r.start >= 0.0);
            assert!(r.end <= phase.duration + 1e-9);
            assert!(r.is_valid());
        }
    }

    #[test]
    fn library_has_requested_size_and_duration_spread() {
        let lib = PhaseLibrary::paper_default(7);
        assert_eq!(lib.len(), 99);
        assert!(!lib.is_empty());
        let mean = lib.mean_duration();
        assert!(mean > 10.0 && mean < 13.5, "mean duration {mean}");
        let min = lib
            .phases()
            .iter()
            .map(|p| p.duration)
            .fold(f64::INFINITY, f64::min);
        let max = lib.phases().iter().map(|p| p.duration).fold(0.0, f64::max);
        assert!(min >= 10.0);
        assert!(max <= 13.34 + 1e-9);
        assert!(max - min > 0.5, "durations should vary across the library");
    }

    #[test]
    fn emit_applies_offset_and_delays() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = IorPhaseConfig {
            num_processes: 2,
            bytes_per_process: 100,
            requests_per_process: 2,
            min_duration: 1.0,
            max_duration: 1.0,
            jitter: 0.0,
        };
        let phase = generate_phase(&config, &mut rng);
        let mut trace = AppTrace::named("x", 2);
        let end = phase.emit(&mut trace, 100.0, &[0.0, 5.0]);
        assert_eq!(trace.len(), 4);
        assert!(trace.requests().iter().all(|r| r.start >= 100.0));
        let rank1_start = trace
            .requests()
            .iter()
            .filter(|r| r.rank == 1)
            .map(|r| r.start)
            .fold(f64::INFINITY, f64::min);
        assert!(rank1_start >= 105.0);
        assert!(end >= 106.0 - 1e-9);
    }

    #[test]
    fn benchmark_phase_count_and_periodicity() {
        let config = IorBenchmarkConfig {
            num_ranks: 64,
            aggregate_bandwidth: 2.0e9,
            gap_between_phases: 20.0,
            start_offset: 0.0,
            ..Default::default()
        };
        let trace = generate_benchmark(&config, 11);
        // 8 iterations × 2 segments × (10 MB / 2 MB) requests × 64 ranks
        assert_eq!(trace.len(), 8 * 2 * 5 * 64);
        // The bandwidth signal should show 8 distinct bursts.
        let tl = BandwidthTimeline::from_trace(&trace);
        let samples = tl.sample(0.0, trace.end_time().ceil(), 1.0);
        let mean_bw = samples.iter().sum::<f64>() / samples.len() as f64;
        let bursts = count_bursts(&samples, mean_bw);
        assert_eq!(bursts, 8, "expected 8 I/O bursts");
    }

    #[test]
    fn downsampled_benchmark_preserves_volume_and_rank_metadata() {
        let config = IorBenchmarkConfig {
            num_ranks: 1024,
            aggregate_bandwidth: 10.0e9,
            start_offset: 0.0,
            ..Default::default()
        };
        let full = generate_benchmark(&config, 5);
        let small = generate_benchmark_downsampled(&config, 32, 5);
        assert_eq!(small.metadata().num_ranks, 1024);
        assert!(small.len() < full.len());
        let rel_diff = (full.total_volume() as f64 - small.total_volume() as f64).abs()
            / full.total_volume() as f64;
        assert!(rel_diff < 0.01, "volume mismatch {rel_diff}");
    }

    fn count_bursts(samples: &[f64], threshold: f64) -> usize {
        let mut bursts = 0;
        let mut in_burst = false;
        for &s in samples {
            if s > threshold && !in_burst {
                bursts += 1;
                in_burst = true;
            } else if s <= threshold {
                in_burst = false;
            }
        }
        bursts
    }
}
