//! Adversarial evaluation scenarios: the workloads where the paper's
//! frequency-domain method is *expected to struggle*, each with machine-
//! readable ground truth.
//!
//! The detection corpus (IOR/HACC/LAMMPS-shaped generators, the semi-
//! synthetic sweeps) is dominated by steady-period applications — exactly the
//! regime the paper validates on. A production facility monitor sees the
//! opposite: checkpoint intervals that grow as AMR refines the mesh, abrupt
//! phase changes at solver switches, bursty non-harmonic interference from
//! competing jobs, heavy-tailed request sizes, and several tenants sharing
//! one file system. This module defines the scenario framework — a
//! [`Scenario`] is a named flush schedule plus one [`ScenarioTruth`] per
//! application — and the period-evolution generators ([`steady`],
//! [`phase_change`], [`drift`]); the contention-flavoured generators
//! ([`crate::scenarios::bursty_interference`],
//! [`crate::scenarios::heavy_tailed`], [`crate::scenarios::multi_tenant`])
//! live next to the other trace-shape generators in [`crate::scenarios`].
//!
//! Every generator is fully deterministic for a fixed seed, and every
//! scenario doubles as a deterministic
//! [`TraceSource`](ftio_trace::source::TraceSource) (one batch per flush) so
//! the same data drives the synchronous [`OnlinePredictor`]
//! (`ftio_core::online`) and `ClusterEngine::replay`.
//!
//! [`OnlinePredictor`]: https://docs.rs/ftio-core

use ftio_trace::source::{MemorySource, TraceBatch};
use ftio_trace::{AppId, AppTrace, IoRequest, ScenarioTruth, TruthSegment};

use crate::scenarios::{
    bursty_interference, heavy_tailed, multi_tenant, InterferenceConfig, MultiTenantConfig,
    TailConfig,
};

/// The scenario families of the adversarial evaluation harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Constant-period baseline — the regime the paper validates on.
    Steady,
    /// Abrupt mid-run period change (solver/phase switch).
    PhaseChange,
    /// Gradual period growth (checkpoint interval growing with AMR
    /// refinement).
    Drift,
    /// Periodic writer plus bursty, non-harmonic interference sharing the
    /// measured bandwidth.
    BurstyInterference,
    /// Periodic writer with heavy-tailed (Pareto) request sizes.
    HeavyTailed,
    /// Several applications sharing one modeled file system, with contention
    /// stretching overlapping bursts.
    MultiTenant,
}

impl ScenarioFamily {
    /// All families, in canonical evaluation order.
    pub fn all() -> [ScenarioFamily; 6] {
        [
            ScenarioFamily::Steady,
            ScenarioFamily::PhaseChange,
            ScenarioFamily::Drift,
            ScenarioFamily::BurstyInterference,
            ScenarioFamily::HeavyTailed,
            ScenarioFamily::MultiTenant,
        ]
    }

    /// The canonical kebab-case name (`steady`, `phase-change`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioFamily::Steady => "steady",
            ScenarioFamily::PhaseChange => "phase-change",
            ScenarioFamily::Drift => "drift",
            ScenarioFamily::BurstyInterference => "bursty-interference",
            ScenarioFamily::HeavyTailed => "heavy-tailed",
            ScenarioFamily::MultiTenant => "multi-tenant",
        }
    }

    /// Parses a family name (accepts `-` or `_` separators, any case).
    pub fn parse(s: &str) -> Option<Self> {
        let normalized = s.to_ascii_lowercase().replace('_', "-");
        ScenarioFamily::all()
            .into_iter()
            .find(|f| f.as_str() == normalized)
    }
}

/// One flush of a scenario: the requests an application appends to its trace
/// plus the time at which it asks for a prediction (one submission to the
/// online predictor or cluster engine).
#[derive(Clone, Debug)]
pub struct ScenarioFlush {
    /// The application appending the data.
    pub app: AppId,
    /// The freshly appended requests.
    pub requests: Vec<IoRequest>,
    /// Flush/prediction time — the latest request end in the flush, so a
    /// replayed [`TraceBatch`] submits at exactly this time.
    pub now: f64,
}

/// A generated adversarial scenario: a global flush schedule (time-ordered,
/// possibly interleaving several applications) plus the ground truth of every
/// participating application.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (the family name for the registry defaults).
    pub name: String,
    /// The family this scenario belongs to.
    pub family: ScenarioFamily,
    /// The time-ordered flush schedule.
    pub flushes: Vec<ScenarioFlush>,
    /// Ground truth per application, in first-flush order.
    pub truths: Vec<(AppId, ScenarioTruth)>,
}

impl Scenario {
    /// The participating applications, in truth order.
    pub fn apps(&self) -> Vec<AppId> {
        self.truths.iter().map(|(app, _)| *app).collect()
    }

    /// The ground truth of one application.
    pub fn truth(&self, app: AppId) -> Option<&ScenarioTruth> {
        self.truths.iter().find(|(a, _)| *a == app).map(|(_, t)| t)
    }

    /// Total requests across all flushes.
    pub fn total_requests(&self) -> usize {
        self.flushes.iter().map(|f| f.requests.len()).sum()
    }

    /// Wraps the flush schedule as a deterministic streaming source: one
    /// request batch per flush, attributed to the flushing application, in
    /// schedule order. Replaying this source through `ClusterEngine::replay`
    /// submits every flush at [`ScenarioFlush::now`] (the batch end time).
    pub fn to_source(&self) -> MemorySource {
        let batches: Vec<TraceBatch> = self
            .flushes
            .iter()
            .map(|f| TraceBatch::requests(f.app, f.requests.clone()))
            .collect();
        let app = self.apps().first().copied().unwrap_or(AppId::new(0));
        MemorySource::from_batches(app, batches)
    }

    /// All requests of all applications merged into one trace, sorted by
    /// start time — the offline-detection view of the scenario (and the form
    /// the fixture corpus serialises).
    pub fn merged_trace(&self) -> AppTrace {
        let mut trace = AppTrace::named(&self.name, 0);
        for flush in &self.flushes {
            trace.extend(flush.requests.iter().copied());
        }
        trace.sort_by_start();
        trace
    }
}

/// Splits a burst across `ranks` ranks.
pub(crate) fn burst_requests(
    ranks: usize,
    start: f64,
    duration: f64,
    bytes: u64,
) -> Vec<IoRequest> {
    let ranks = ranks.max(1);
    let per_rank = (bytes / ranks as u64).max(1);
    (0..ranks)
        .map(|rank| IoRequest::write(rank, start, start + duration, per_rank))
        .collect()
}

/// Turns a list of per-burst `(start, duration, requests)` triples into the
/// single-application flush schedule (one flush per burst, at burst end).
pub(crate) fn flushes_from_bursts(
    app: AppId,
    bursts: Vec<(f64, Vec<IoRequest>)>,
) -> Vec<ScenarioFlush> {
    bursts
        .into_iter()
        .map(|(_, requests)| {
            let now = requests.iter().map(|r| r.end).fold(0.0f64, f64::max);
            ScenarioFlush { app, requests, now }
        })
        .collect()
}

/// Configuration of the [`steady`] baseline scenario.
#[derive(Clone, Copy, Debug)]
pub struct SteadyConfig {
    /// Constant period between burst starts, seconds.
    pub period: f64,
    /// Number of bursts.
    pub bursts: usize,
    /// Ranks writing each burst.
    pub ranks: usize,
    /// Burst duration, seconds.
    pub burst_duration: f64,
    /// Aggregate bytes per burst.
    pub bytes_per_burst: u64,
}

impl Default for SteadyConfig {
    fn default() -> Self {
        SteadyConfig {
            period: 10.0,
            bursts: 30,
            ranks: 4,
            burst_duration: 2.0,
            bytes_per_burst: 2_000_000_000,
        }
    }
}

/// The constant-period baseline: what every other family is compared against.
pub fn steady(config: &SteadyConfig) -> Scenario {
    let app = AppId::from_name("steady");
    let bursts: Vec<(f64, Vec<IoRequest>)> = (0..config.bursts)
        .map(|i| {
            let start = i as f64 * config.period;
            (
                start,
                burst_requests(
                    config.ranks,
                    start,
                    config.burst_duration,
                    config.bytes_per_burst,
                ),
            )
        })
        .collect();
    let end = (config.bursts.max(1) - 1) as f64 * config.period + config.burst_duration;
    let truth = ScenarioTruth::constant(0.0, end.max(config.period), config.period);
    Scenario {
        name: ScenarioFamily::Steady.as_str().to_string(),
        family: ScenarioFamily::Steady,
        flushes: flushes_from_bursts(app, bursts),
        truths: vec![(app, truth)],
    }
}

/// Configuration of the [`phase_change`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct PhaseChangeConfig {
    /// Period before the change, seconds.
    pub period_before: f64,
    /// Period after the change, seconds.
    pub period_after: f64,
    /// Bursts written at the old period.
    pub bursts_before: usize,
    /// Bursts written at the new period.
    pub bursts_after: usize,
    /// Ranks writing each burst.
    pub ranks: usize,
    /// Burst duration, seconds.
    pub burst_duration: f64,
    /// Aggregate bytes per burst.
    pub bytes_per_burst: u64,
}

impl Default for PhaseChangeConfig {
    fn default() -> Self {
        PhaseChangeConfig {
            period_before: 8.0,
            period_after: 18.0,
            bursts_before: 18,
            bursts_after: 18,
            ranks: 4,
            burst_duration: 2.0,
            bytes_per_burst: 2_000_000_000,
        }
    }
}

/// An abrupt mid-run period change: `bursts_before` bursts at
/// `period_before`, then `bursts_after` bursts at `period_after`. The truth
/// carries one change point at the start of the first new-period burst.
pub fn phase_change(config: &PhaseChangeConfig) -> Scenario {
    let app = AppId::from_name("phase-change");
    let mut bursts = Vec::new();
    let mut t = 0.0;
    for _ in 0..config.bursts_before {
        bursts.push((
            t,
            burst_requests(
                config.ranks,
                t,
                config.burst_duration,
                config.bytes_per_burst,
            ),
        ));
        t += config.period_before;
    }
    let change_point = t;
    for _ in 0..config.bursts_after {
        bursts.push((
            t,
            burst_requests(
                config.ranks,
                t,
                config.burst_duration,
                config.bytes_per_burst,
            ),
        ));
        t += config.period_after;
    }
    let end = t - config.period_after + config.burst_duration;
    let truth = ScenarioTruth::new(
        vec![
            TruthSegment::constant(0.0, change_point, config.period_before),
            TruthSegment::constant(
                change_point,
                end.max(change_point + 1.0),
                config.period_after,
            ),
        ],
        vec![change_point],
    );
    Scenario {
        name: ScenarioFamily::PhaseChange.as_str().to_string(),
        family: ScenarioFamily::PhaseChange,
        flushes: flushes_from_bursts(app, bursts),
        truths: vec![(app, truth)],
    }
}

/// Configuration of the [`drift`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// Period before the drift starts, seconds.
    pub initial_period: f64,
    /// Multiplicative growth of the inter-burst gap per burst (1.02 ≈ the
    /// checkpoint interval growing 2% per checkpoint as AMR refines).
    pub growth: f64,
    /// Number of bursts.
    pub bursts: usize,
    /// Ranks writing each burst.
    pub ranks: usize,
    /// Burst duration, seconds.
    pub burst_duration: f64,
    /// Aggregate bytes per burst.
    pub bytes_per_burst: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            initial_period: 8.0,
            growth: 1.02,
            bursts: 40,
            ranks: 4,
            burst_duration: 1.5,
            bytes_per_burst: 2_000_000_000,
        }
    }
}

/// Gradual period drift: the gap after burst `i` is
/// `initial_period · growth^i`, as when a checkpoint interval grows with AMR
/// refinement. The truth is piecewise constant — one segment per inter-burst
/// gap — with *no* change points (there is no abrupt instant to re-lock
/// after; the evaluation instead tracks how well the predictor follows the
/// moving target).
pub fn drift(config: &DriftConfig) -> Scenario {
    let app = AppId::from_name("drift");
    let mut bursts = Vec::new();
    let mut segments = Vec::new();
    let mut t = 0.0;
    let mut gap = config.initial_period;
    for i in 0..config.bursts {
        bursts.push((
            t,
            burst_requests(
                config.ranks,
                t,
                config.burst_duration,
                config.bytes_per_burst,
            ),
        ));
        let next = t + gap;
        // The true period over [t, next) is the current inter-burst gap; the
        // final burst extends its segment to the burst end so the last flush
        // still scores.
        let segment_end = if i + 1 == config.bursts {
            t + config.burst_duration.max(gap.min(1.0))
        } else {
            next
        };
        segments.push(TruthSegment::constant(t, segment_end, gap));
        t = next;
        gap *= config.growth;
    }
    let truth = ScenarioTruth::new(segments, Vec::new());
    Scenario {
        name: ScenarioFamily::Drift.as_str().to_string(),
        family: ScenarioFamily::Drift,
        flushes: flushes_from_bursts(app, bursts),
        truths: vec![(app, truth)],
    }
}

/// The registry: one scenario per family, generated with default
/// configurations and the given seed (seedless families ignore it). This is
/// the table the evaluation suite, the `ftio eval` command and the fixture
/// generator all iterate.
pub fn all_scenarios(seed: u64) -> Vec<Scenario> {
    ScenarioFamily::all()
        .into_iter()
        .map(|family| scenario_for(family, seed))
        .collect()
}

/// The default scenario of one family.
pub fn scenario_for(family: ScenarioFamily, seed: u64) -> Scenario {
    match family {
        ScenarioFamily::Steady => steady(&SteadyConfig::default()),
        ScenarioFamily::PhaseChange => phase_change(&PhaseChangeConfig::default()),
        ScenarioFamily::Drift => drift(&DriftConfig::default()),
        ScenarioFamily::BurstyInterference => {
            bursty_interference(&InterferenceConfig::default(), seed)
        }
        ScenarioFamily::HeavyTailed => heavy_tailed(&TailConfig::default(), seed),
        ScenarioFamily::MultiTenant => multi_tenant(&MultiTenantConfig::default(), seed),
    }
}

/// Looks a scenario up by family name (`steady`, `drift`, `multi-tenant`, ...).
pub fn scenario_by_name(name: &str, seed: u64) -> Option<Scenario> {
    ScenarioFamily::parse(name).map(|family| scenario_for(family, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::TraceSource;

    #[test]
    fn steady_truth_is_constant_over_the_whole_run() {
        let scenario = steady(&SteadyConfig::default());
        assert_eq!(scenario.flushes.len(), 30);
        let app = scenario.apps()[0];
        let truth = scenario.truth(app).unwrap();
        assert!(truth.change_points().is_empty());
        for flush in &scenario.flushes {
            assert_eq!(truth.period_at(flush.now), Some(10.0));
        }
    }

    #[test]
    fn phase_change_truth_has_one_change_point() {
        let config = PhaseChangeConfig::default();
        let scenario = phase_change(&config);
        let truth = &scenario.truths[0].1;
        assert_eq!(truth.change_points().len(), 1);
        let cp = truth.change_points()[0];
        assert_eq!(cp, config.bursts_before as f64 * config.period_before);
        assert_eq!(truth.period_at(cp - 0.1), Some(config.period_before));
        assert_eq!(truth.period_at(cp + 0.1), Some(config.period_after));
        assert_eq!(
            scenario.flushes.len(),
            config.bursts_before + config.bursts_after
        );
    }

    #[test]
    fn drift_gaps_match_the_piecewise_truth() {
        let config = DriftConfig {
            bursts: 10,
            ..Default::default()
        };
        let scenario = drift(&config);
        let truth = &scenario.truths[0].1;
        assert_eq!(truth.segments().len(), 10);
        // Every flush scores against the gap that follows its burst.
        let starts: Vec<f64> = scenario
            .flushes
            .iter()
            .map(|f| f.requests[0].start)
            .collect();
        for (i, pair) in starts.windows(2).enumerate() {
            let gap = pair[1] - pair[0];
            let expected = config.initial_period * config.growth.powi(i as i32);
            assert!((gap - expected).abs() < 1e-9, "burst {i}: gap {gap}");
            let told = truth.period_at(pair[0] + 0.1).unwrap();
            assert!((told - expected).abs() < 1e-9, "burst {i}: truth {told}");
        }
        assert!(truth.change_points().is_empty());
    }

    #[test]
    fn flush_now_is_the_latest_request_end() {
        for scenario in all_scenarios(0xAD7E_0001) {
            for (i, flush) in scenario.flushes.iter().enumerate() {
                assert!(
                    !flush.requests.is_empty(),
                    "{}: empty flush {i}",
                    scenario.name
                );
                let max_end = flush.requests.iter().map(|r| r.end).fold(0.0f64, f64::max);
                assert_eq!(
                    flush.now, max_end,
                    "{}: flush {i} now mismatch",
                    scenario.name
                );
            }
        }
    }

    #[test]
    fn registry_covers_every_family_and_is_deterministic() {
        let a = all_scenarios(42);
        let b = all_scenarios(42);
        assert_eq!(a.len(), ScenarioFamily::all().len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.family, y.family);
            assert_eq!(x.flushes.len(), y.flushes.len());
            assert_eq!(x.total_requests(), y.total_requests());
            for (fx, fy) in x.flushes.iter().zip(&y.flushes) {
                assert_eq!(fx.app, fy.app);
                assert_eq!(fx.now.to_bits(), fy.now.to_bits());
                assert_eq!(fx.requests, fy.requests);
            }
            // Every scenario has a truth for every flushing app.
            for flush in &x.flushes {
                assert!(x.truth(flush.app).is_some(), "{}: orphan flush", x.name);
            }
        }
    }

    #[test]
    fn source_batches_mirror_the_flush_schedule() {
        let scenario = scenario_for(ScenarioFamily::PhaseChange, 1);
        let mut source = scenario.to_source();
        let mut seen = 0usize;
        while let Some(batch) = source.next_batch().unwrap() {
            let flush = &scenario.flushes[seen];
            assert_eq!(batch.app, flush.app);
            assert_eq!(batch.end_time(), Some(flush.now));
            assert_eq!(batch.into_requests(), flush.requests);
            seen += 1;
        }
        assert_eq!(seen, scenario.flushes.len());
    }

    #[test]
    fn names_round_trip_through_the_parser() {
        for family in ScenarioFamily::all() {
            assert_eq!(ScenarioFamily::parse(family.as_str()), Some(family));
            assert_eq!(
                ScenarioFamily::parse(&family.as_str().replace('-', "_")),
                Some(family)
            );
        }
        assert_eq!(ScenarioFamily::parse("nope"), None);
        assert!(scenario_by_name("drift", 7).is_some());
        assert!(scenario_by_name("warp", 7).is_none());
    }

    #[test]
    fn merged_trace_is_sorted_and_complete() {
        let scenario = scenario_for(ScenarioFamily::MultiTenant, 9);
        let trace = scenario.merged_trace();
        assert_eq!(trace.len(), scenario.total_requests());
        for pair in trace.requests().windows(2) {
            assert!(pair[1].start >= pair[0].start);
        }
    }
}
