//! HACC-IO-shaped workload (paper §III-B, case study c).
//!
//! HACC-IO mimics one I/O phase of HACC; the paper wraps it in a loop so the
//! four steps (compute, write, read, verify) repeat periodically, flushing the
//! collected trace data after every iteration. Key properties reproduced here:
//!
//! * ten I/O phases starting on average every 8.7 s,
//! * the **first phase is significantly delayed and prolonged** (it lasts from
//!   4.1 s to 15.3 s in the paper), which drops the average period from 8.7 s
//!   to 7.7 s when it is excluded and splits the dominant frequency into two
//!   close candidates (0.1206 Hz and 0.1326 Hz),
//! * high I/O bandwidth phases that are short relative to the period,
//! * a flush point at the end of every loop iteration, which is what the
//!   online prediction mode hooks into (Fig. 15).

use ftio_trace::{AppTrace, IoRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distributions::uniform;

/// Configuration of the HACC-IO-shaped workload.
#[derive(Clone, Copy, Debug)]
pub struct HaccConfig {
    /// Number of MPI ranks (3072 in the paper).
    pub num_ranks: usize,
    /// Writer processes representing the rank population in the generated trace.
    pub writers: usize,
    /// Number of loop iterations, i.e. I/O phases (10 in the paper).
    pub iterations: usize,
    /// Nominal gap between I/O phase starts in seconds (≈ 8 s; with the
    /// prolonged first phase the observed average start distance is ≈ 8.7 s).
    pub nominal_period: f64,
    /// Duration of a regular I/O phase in seconds.
    pub io_duration: f64,
    /// Extra delay and stretching applied to the first phase in seconds.
    pub first_phase_delay: f64,
    /// Bytes transferred per phase across all writers (write + read + verify).
    pub bytes_per_phase: u64,
}

impl Default for HaccConfig {
    fn default() -> Self {
        HaccConfig {
            num_ranks: 3072,
            writers: 64,
            iterations: 10,
            nominal_period: 7.8,
            io_duration: 2.6,
            first_phase_delay: 4.0,
            bytes_per_phase: 60_000_000_000, // high-bandwidth phases (~20 GB/s)
        }
    }
}

/// The generated workload plus ground truth and flush points.
#[derive(Clone, Debug)]
pub struct HaccWorkload {
    /// The request trace.
    pub trace: AppTrace,
    /// Ground-truth start time of every I/O phase.
    pub phase_starts: Vec<f64>,
    /// Ground-truth end time of every I/O phase.
    pub phase_ends: Vec<f64>,
    /// Times at which the application flushes its trace data (end of each loop
    /// iteration) — the online prediction points of Fig. 15.
    pub flush_points: Vec<f64>,
}

impl HaccWorkload {
    /// Average distance between consecutive phase starts (the paper's 8.7 s).
    pub fn mean_period(&self) -> f64 {
        if self.phase_starts.len() < 2 {
            return 0.0;
        }
        let diffs: Vec<f64> = self.phase_starts.windows(2).map(|w| w[1] - w[0]).collect();
        diffs.iter().sum::<f64>() / diffs.len() as f64
    }

    /// The workload as a streaming
    /// [`TraceSource`](ftio_trace::source::TraceSource), batched at the
    /// recorded flush points: batch `i` carries the requests the application
    /// would have appended by `flush_points[i]`, so replaying the source
    /// reproduces the online mode's submission pattern.
    pub fn to_source(&self) -> ftio_trace::source::MemorySource {
        use ftio_trace::source::{MemorySource, TraceBatch};
        let app = ftio_trace::AppId::from_name(&self.trace.metadata().application);
        let mut requests = self.trace.requests().to_vec();
        requests.sort_by(|a, b| a.end.partial_cmp(&b.end).expect("finite request times"));
        let mut batches = Vec::with_capacity(self.flush_points.len() + 1);
        let mut index = 0usize;
        for &flush in &self.flush_points {
            let from = index;
            while index < requests.len() && requests[index].end <= flush + 1e-9 {
                index += 1;
            }
            if index > from {
                batches.push(TraceBatch::requests(app, requests[from..index].to_vec()));
            }
        }
        if index < requests.len() {
            batches.push(TraceBatch::requests(app, requests[index..].to_vec()));
        }
        MemorySource::from_batches(app, batches)
    }

    /// Average period when the first (delayed) phase is excluded
    /// (the paper's 7.7 s).
    pub fn mean_period_without_first(&self) -> f64 {
        if self.phase_starts.len() < 3 {
            return 0.0;
        }
        let diffs: Vec<f64> = self.phase_starts[1..]
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect();
        diffs.iter().sum::<f64>() / diffs.len() as f64
    }
}

/// Generates the HACC-IO-shaped trace.
pub fn generate(config: &HaccConfig, seed: u64) -> HaccWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = AppTrace::named("HACC-IO", config.num_ranks);
    let mut phase_starts = Vec::with_capacity(config.iterations);
    let mut phase_ends = Vec::with_capacity(config.iterations);
    let mut flush_points = Vec::with_capacity(config.iterations);

    let bytes_per_writer = (config.bytes_per_phase / config.writers.max(1) as u64).max(1);
    let mut t = 0.0;
    for i in 0..config.iterations {
        // Compute step before the I/O of this iteration.
        let compute =
            (config.nominal_period - config.io_duration).max(0.5) * uniform(&mut rng, 0.95, 1.05);
        t += compute;

        // The first phase is delayed by initialization overheads and prolonged.
        let (start, duration) = if i == 0 {
            (
                t + config.first_phase_delay * 0.0,
                config.io_duration + config.first_phase_delay,
            )
        } else {
            (t, config.io_duration * uniform(&mut rng, 0.9, 1.1))
        };

        // Write / read / verify sub-steps share the phase duration 60/25/15;
        // HACC-IO's checkpoint write dominates the transferred volume.
        let sub = [(0.60, true), (0.25, false), (0.15, false)];
        let mut sub_t = start;
        for (frac, is_write) in sub {
            let sub_dur = duration * frac;
            let slice = sub_dur; // all writers active concurrently
            for w in 0..config.writers {
                let bytes = (bytes_per_writer as f64 * frac) as u64;
                let req = if is_write {
                    IoRequest::write(w, sub_t, sub_t + slice, bytes)
                } else {
                    IoRequest::read(w, sub_t, sub_t + slice, bytes)
                };
                trace.push(req);
            }
            sub_t += sub_dur;
        }

        phase_starts.push(start);
        phase_ends.push(start + duration);
        t = start + duration;
        flush_points.push(t);
    }

    HaccWorkload {
        trace,
        phase_starts,
        phase_ends,
        flush_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::IoKind;

    #[test]
    fn workload_matches_paper_shape() {
        let w = generate(&HaccConfig::default(), 1);
        assert_eq!(w.phase_starts.len(), 10);
        assert_eq!(w.flush_points.len(), 10);
        // First phase is much longer than the others.
        let first_len = w.phase_ends[0] - w.phase_starts[0];
        let second_len = w.phase_ends[1] - w.phase_starts[1];
        assert!(first_len > 2.0 * second_len);
        // Mean period with the prolonged first phase exceeds the one without it.
        let with_first = w.mean_period();
        let without = w.mean_period_without_first();
        assert!(with_first > without, "{with_first} vs {without}");
        assert!(with_first > 8.0 && with_first < 10.0, "{with_first}");
        assert!(without > 7.0 && without < 8.6, "{without}");
    }

    #[test]
    fn phases_interleave_reads_and_writes() {
        let w = generate(&HaccConfig::default(), 2);
        let writes = w.trace.volume_of_kind(IoKind::Write);
        let reads = w.trace.volume_of_kind(IoKind::Read);
        assert!(writes > 0);
        assert!(reads > 0);
        assert!(writes > reads, "write volume should dominate");
    }

    #[test]
    fn to_source_batches_follow_the_flush_schedule() {
        use ftio_trace::source::TraceSource;
        let w = generate(&HaccConfig::default(), 0x5eed);
        let mut source = w.to_source();
        let mut total = 0usize;
        let mut previous_end = f64::NEG_INFINITY;
        let mut flush_index = 0usize;
        while let Some(batch) = source.next_batch().unwrap() {
            let end = batch.end_time().expect("non-empty batch");
            assert!(end >= previous_end, "batches must be time-ordered");
            previous_end = end;
            // Every batch ends by its flush point.
            while flush_index < w.flush_points.len() && w.flush_points[flush_index] + 1e-9 < end {
                flush_index += 1;
            }
            assert!(flush_index <= w.flush_points.len());
            total += batch.len();
        }
        assert_eq!(total, w.trace.len(), "no request may be lost");
    }

    #[test]
    fn flush_points_follow_phase_ends() {
        let w = generate(&HaccConfig::default(), 3);
        for (flush, end) in w.flush_points.iter().zip(w.phase_ends.iter()) {
            assert!((flush - end).abs() < 1e-9);
        }
        for pair in w.flush_points.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn phase_starts_are_increasing_and_roughly_periodic() {
        let w = generate(&HaccConfig::default(), 4);
        let gaps: Vec<f64> = w.phase_starts.windows(2).map(|g| g[1] - g[0]).collect();
        for w2 in w.phase_starts.windows(2) {
            assert!(w2[1] > w2[0]);
        }
        // After the first (prolonged) gap the remaining gaps are close to the
        // nominal period.
        for &g in &gaps[1..] {
            assert!(g > 6.0 && g < 10.0, "gap {g}");
        }
        assert!(gaps[0] > gaps[1], "first gap includes the prolonged phase");
    }

    #[test]
    fn high_bandwidth_phases() {
        let config = HaccConfig::default();
        let w = generate(&config, 5);
        // The second phase transfers bytes_per_phase over io_duration => >10 GB/s.
        let tl = ftio_trace::BandwidthTimeline::from_trace(&w.trace);
        let start = w.phase_starts[1];
        let end = w.phase_ends[1];
        let bw = tl.volume_in(start, end) / (end - start);
        assert!(bw > 10.0e9, "bandwidth {bw}");
    }
}
