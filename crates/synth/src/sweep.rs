//! Parameter sweeps for the accuracy study (paper Fig. 8 and Fig. 9).
//!
//! The paper evaluates FTIO's detection error over three sweeps, each with 100
//! semi-synthetic traces per parameter combination:
//!
//! * **Fig. 8a** — the ratio between compute time and I/O-phase length, with
//!   and without background noise (`δ_k = 0`, `σ = 0`);
//! * **Fig. 8b** — the average per-process delay `ϕ` (desynchronisation and
//!   I/O variability), with `t_cpu = 11 s`;
//! * **Fig. 8c** — the variability of the compute time, `σ/µ` with
//!   `µ = 11 s` (Fig. 9 reports σ_vol and σ_time for the same sweep).
//!
//! This module produces the list of configurations for each sweep so the
//! benchmark harness and the tests iterate over exactly the same grids.

use crate::noise::NoiseLevel;
use crate::semi::SemiSyntheticConfig;

/// One point of a sweep: a label for reporting plus the generator configuration.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Human-readable parameter description (used as the x-axis label).
    pub label: String,
    /// Numeric value of the swept parameter.
    pub value: f64,
    /// Noise level of this point.
    pub noise: NoiseLevel,
    /// Generator configuration.
    pub config: SemiSyntheticConfig,
}

/// Base configuration shared by all sweeps (J = 20 iterations, P = 32
/// processes, fs = 1 Hz on the analysis side).
pub fn base_config() -> SemiSyntheticConfig {
    SemiSyntheticConfig {
        iterations: 20,
        processes: 32,
        tcpu_mean: 11.0,
        tcpu_std: 0.0,
        desync_avg: 0.0,
        noise: NoiseLevel::None,
    }
}

/// Fig. 8a sweep: `t_cpu` as a multiple of the mean I/O-phase duration
/// (≈ 11 s), crossed with the three noise levels.
///
/// `ratios` in the paper are 1/4, 1/2, 1, 2 and 4.
pub fn cpu_ratio_sweep(mean_io_duration: f64) -> Vec<SweepPoint> {
    let ratios = [0.25, 0.5, 1.0, 2.0, 4.0];
    let noises = [NoiseLevel::None, NoiseLevel::Low, NoiseLevel::High];
    let mut points = Vec::new();
    for &ratio in &ratios {
        for &noise in &noises {
            let tcpu = ratio * mean_io_duration;
            points.push(SweepPoint {
                label: format!("tcpu={ratio}x io, noise={noise:?}"),
                value: ratio,
                noise,
                config: SemiSyntheticConfig {
                    tcpu_mean: tcpu,
                    noise,
                    ..base_config()
                },
            });
        }
    }
    points
}

/// Fig. 8b sweep: the average desynchronisation delay `ϕ` with `t_cpu = 11 s`.
pub fn desync_sweep() -> Vec<SweepPoint> {
    let phis = [0.0, 2.75, 5.5, 11.0, 16.5, 22.0, 33.0];
    phis.iter()
        .map(|&phi| SweepPoint {
            label: format!("phi={phi}s"),
            value: phi,
            noise: NoiseLevel::None,
            config: SemiSyntheticConfig {
                desync_avg: phi,
                ..base_config()
            },
        })
        .collect()
}

/// Fig. 8c / Fig. 9 sweep: the compute-time variability `σ` with `µ = 11 s`,
/// expressed through the ratio `σ/µ`.
pub fn variability_sweep() -> Vec<SweepPoint> {
    let sigma_over_mu = [0.0, 0.25, 0.5, 0.55, 1.0, 1.5, 2.0];
    sigma_over_mu
        .iter()
        .map(|&r| SweepPoint {
            label: format!("sigma/mu={r}"),
            value: r,
            noise: NoiseLevel::None,
            config: SemiSyntheticConfig {
                tcpu_std: r * 11.0,
                ..base_config()
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_matches_paper_parameters() {
        let c = base_config();
        assert_eq!(c.iterations, 20);
        assert_eq!(c.processes, 32);
        assert_eq!(c.tcpu_mean, 11.0);
        assert_eq!(c.tcpu_std, 0.0);
        assert_eq!(c.desync_avg, 0.0);
    }

    #[test]
    fn cpu_ratio_sweep_crosses_ratios_and_noise() {
        let points = cpu_ratio_sweep(11.0);
        assert_eq!(points.len(), 15);
        assert!(points
            .iter()
            .any(|p| p.value == 0.25 && p.noise == NoiseLevel::High));
        assert!(points
            .iter()
            .any(|p| p.value == 4.0 && p.noise == NoiseLevel::None));
        // t_cpu scales with the ratio.
        let quarter = points.iter().find(|p| p.value == 0.25).unwrap();
        assert!((quarter.config.tcpu_mean - 2.75).abs() < 1e-12);
        let four = points.iter().find(|p| p.value == 4.0).unwrap();
        assert!((four.config.tcpu_mean - 44.0).abs() < 1e-12);
    }

    #[test]
    fn desync_sweep_keeps_tcpu_fixed() {
        let points = desync_sweep();
        assert_eq!(points.len(), 7);
        assert!(points.iter().all(|p| p.config.tcpu_mean == 11.0));
        assert!(points.iter().all(|p| p.config.tcpu_std == 0.0));
        assert_eq!(points[0].config.desync_avg, 0.0);
        assert_eq!(points.last().unwrap().config.desync_avg, 33.0);
    }

    #[test]
    fn variability_sweep_spans_sigma_over_mu_up_to_two() {
        let points = variability_sweep();
        assert_eq!(points.len(), 7);
        assert_eq!(points[0].config.tcpu_std, 0.0);
        let last = points.last().unwrap();
        assert_eq!(last.value, 2.0);
        assert!((last.config.tcpu_std - 22.0).abs() < 1e-12);
        assert!(points.iter().all(|p| p.config.desync_avg == 0.0));
        assert!(points.iter().all(|p| p.noise == NoiseLevel::None));
    }
}
