//! Semi-synthetic application traces (paper §III-A).
//!
//! The accuracy/limitations study of the paper evaluates FTIO on traces built
//! from real IOR phases stitched together with synthetic compute gaps:
//!
//! > "An application is considered to be a sequence of J non-overlapping
//! > iterations. Each iteration j ≤ J has a compute phase of length t_cpu^(j)
//! > followed by an I/O phase (of length t_io^(j)) where each of the P
//! > processes writes an amount of data v to the file system."
//!
//! Per iteration the generator:
//! 1. draws `t_cpu` from a truncated normal `N(µ, σ)`,
//! 2. picks a random phase from the [`PhaseLibrary`],
//! 3. adds an exponential per-process delay `δ_k` (with `δ_0 = 0`) to model
//!    desynchronisation and I/O variability,
//!
//! and finally optionally overlays background noise. The generator also keeps
//! the ground truth (`phase start times`, mean period `T̄`) that the detection
//! error `|T_d − T̄| / T̄` of Figure 8 is computed against.

use ftio_trace::AppTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distributions::{exponential, truncated_normal_non_negative};
use crate::ior::PhaseLibrary;
use crate::noise::{add_noise, NoiseLevel};

/// Parameters of one semi-synthetic application trace.
#[derive(Clone, Copy, Debug)]
pub struct SemiSyntheticConfig {
    /// Number of iterations `J` (20 in the paper's experiments).
    pub iterations: usize,
    /// Number of processes `P` (32, matching the IOR phase library).
    pub processes: usize,
    /// Mean `µ` of the compute-phase length in seconds.
    pub tcpu_mean: f64,
    /// Standard deviation `σ` of the compute-phase length in seconds.
    pub tcpu_std: f64,
    /// Average `ϕ` of the exponential per-process delay in seconds
    /// (0 disables desynchronisation).
    pub desync_avg: f64,
    /// Background noise level.
    pub noise: NoiseLevel,
}

impl Default for SemiSyntheticConfig {
    fn default() -> Self {
        SemiSyntheticConfig {
            iterations: 20,
            processes: 32,
            tcpu_mean: 11.0,
            tcpu_std: 0.0,
            desync_avg: 0.0,
            noise: NoiseLevel::None,
        }
    }
}

/// A generated semi-synthetic trace together with its ground truth.
#[derive(Clone, Debug)]
pub struct SemiSyntheticTrace {
    /// The request trace handed to FTIO.
    pub trace: AppTrace,
    /// Start time of every I/O phase (ground truth, not available to FTIO).
    pub phase_starts: Vec<f64>,
    /// Effective duration of every I/O phase (including desynchronisation).
    pub phase_durations: Vec<f64>,
    /// Compute-phase length drawn for every iteration.
    pub tcpu: Vec<f64>,
    /// The configuration the trace was generated from.
    pub config: SemiSyntheticConfig,
}

impl SemiSyntheticTrace {
    /// The ground-truth mean period `T̄`: the average distance between the
    /// start times of consecutive I/O phases.
    pub fn mean_period(&self) -> f64 {
        if self.phase_starts.len() < 2 {
            return 0.0;
        }
        let diffs: Vec<f64> = self.phase_starts.windows(2).map(|w| w[1] - w[0]).collect();
        diffs.iter().sum::<f64>() / diffs.len() as f64
    }

    /// The detection error of a period estimate `detected` against the ground
    /// truth: `|T_d − T̄| / T̄` (paper §III-A). Returns `f64::INFINITY` when the
    /// ground truth is degenerate.
    pub fn detection_error(&self, detected_period: f64) -> f64 {
        let truth = self.mean_period();
        if truth <= 0.0 {
            return f64::INFINITY;
        }
        (detected_period - truth).abs() / truth
    }

    /// The trace as a streaming
    /// [`TraceSource`](ftio_trace::source::TraceSource) (chunked request
    /// batches).
    pub fn to_source(&self) -> ftio_trace::source::MemorySource {
        crate::trace_source(&self.trace)
    }

    /// Ground-truth ratio of time spent on I/O (mean of phase duration over period).
    pub fn io_time_ratio(&self) -> f64 {
        let period = self.mean_period();
        if period <= 0.0 || self.phase_durations.is_empty() {
            return 0.0;
        }
        let mean_io: f64 =
            self.phase_durations.iter().sum::<f64>() / self.phase_durations.len() as f64;
        (mean_io / period).min(1.0)
    }
}

/// Generates one semi-synthetic trace.
pub fn generate(
    config: &SemiSyntheticConfig,
    library: &PhaseLibrary,
    seed: u64,
) -> SemiSyntheticTrace {
    assert!(config.iterations > 0, "at least one iteration is required");
    assert!(!library.is_empty(), "phase library must not be empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = AppTrace::named("semi-synthetic", config.processes);
    let mut phase_starts = Vec::with_capacity(config.iterations);
    let mut phase_durations = Vec::with_capacity(config.iterations);
    let mut tcpu_all = Vec::with_capacity(config.iterations);

    let mut t = 0.0;
    for _ in 0..config.iterations {
        // 1. Compute phase.
        let tcpu = truncated_normal_non_negative(&mut rng, config.tcpu_mean, config.tcpu_std);
        tcpu_all.push(tcpu);
        t += tcpu;

        // 2. Random I/O phase from the library.
        let phase = library.pick(&mut rng);

        // 3. Per-process delays δ_k (δ_0 = 0 keeps the phase's left boundary).
        let delays: Vec<f64> = (0..config.processes)
            .map(|k| {
                if k == 0 {
                    0.0
                } else {
                    exponential(&mut rng, config.desync_avg)
                }
            })
            .collect();

        let phase_start = t;
        let phase_end = phase.emit(&mut trace, phase_start, &delays);
        phase_starts.push(phase_start);
        phase_durations.push(phase_end - phase_start);
        t = phase_end;
    }

    add_noise(&mut trace, config.noise, seed);

    SemiSyntheticTrace {
        trace,
        phase_starts,
        phase_durations,
        tcpu: tcpu_all,
        config: *config,
    }
}

/// Generates `count` traces with consecutive seeds, the "100 traces per
/// parameter combination" batch of the paper's accuracy study.
pub fn generate_batch(
    config: &SemiSyntheticConfig,
    library: &PhaseLibrary,
    count: usize,
    base_seed: u64,
) -> Vec<SemiSyntheticTrace> {
    (0..count)
        .map(|i| generate(config, library, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ior::IorPhaseConfig;
    use ftio_trace::BandwidthTimeline;

    fn small_library(seed: u64) -> PhaseLibrary {
        PhaseLibrary::generate(
            &IorPhaseConfig {
                num_processes: 8,
                bytes_per_process: 800_000_000,
                requests_per_process: 10,
                ..Default::default()
            },
            20,
            seed,
        )
    }

    #[test]
    fn trace_has_expected_phase_count_and_monotone_starts() {
        let library = small_library(1);
        let config = SemiSyntheticConfig {
            iterations: 10,
            processes: 8,
            ..Default::default()
        };
        let result = generate(&config, &library, 42);
        assert_eq!(result.phase_starts.len(), 10);
        assert_eq!(result.phase_durations.len(), 10);
        assert_eq!(result.tcpu.len(), 10);
        for w in result.phase_starts.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn mean_period_matches_construction_for_fixed_tcpu() {
        let library = small_library(2);
        let config = SemiSyntheticConfig {
            iterations: 20,
            processes: 8,
            tcpu_mean: 15.0,
            tcpu_std: 0.0,
            ..Default::default()
        };
        let result = generate(&config, &library, 7);
        // With σ = 0 and no desync, each period is 15 s + phase duration
        // (10.22–13.34 s), so the mean period lies in [25, 29].
        let mean = result.mean_period();
        assert!(mean > 25.0 && mean < 29.0, "mean period {mean}");
        // Ground-truth error of the true value is 0.
        assert!(result.detection_error(mean) < 1e-12);
        // An estimate off by 10% reports a 10% error.
        assert!((result.detection_error(mean * 1.1) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn desynchronisation_extends_phase_durations() {
        let library = small_library(3);
        let base = SemiSyntheticConfig {
            iterations: 10,
            processes: 8,
            tcpu_mean: 11.0,
            ..Default::default()
        };
        let no_desync = generate(&base, &library, 9);
        let desync = generate(
            &SemiSyntheticConfig {
                desync_avg: 22.0,
                ..base
            },
            &library,
            9,
        );
        let mean_len = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean_len(&desync.phase_durations) > mean_len(&no_desync.phase_durations) + 5.0,
            "desynchronised phases should be much longer"
        );
    }

    #[test]
    fn sigma_increases_period_variability() {
        let library = small_library(4);
        let spread = |sigma: f64| {
            let config = SemiSyntheticConfig {
                iterations: 20,
                processes: 8,
                tcpu_mean: 11.0,
                tcpu_std: sigma,
                ..Default::default()
            };
            let result = generate(&config, &library, 13);
            let periods: Vec<f64> = result
                .phase_starts
                .windows(2)
                .map(|w| w[1] - w[0])
                .collect();
            let mean = periods.iter().sum::<f64>() / periods.len() as f64;
            let var =
                periods.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / periods.len() as f64;
            var.sqrt()
        };
        assert!(spread(22.0) > spread(0.0) + 3.0);
    }

    #[test]
    fn noise_adds_low_bandwidth_background_activity() {
        let library = small_library(5);
        let config = SemiSyntheticConfig {
            iterations: 5,
            processes: 8,
            noise: NoiseLevel::Low,
            ..Default::default()
        };
        let with_noise = generate(&config, &library, 21);
        let without = generate(
            &SemiSyntheticConfig {
                noise: NoiseLevel::None,
                ..config
            },
            &library,
            21,
        );
        assert!(with_noise.trace.len() > without.trace.len());
        // The noise keeps some volume flowing during the compute phase that
        // precedes the second I/O burst (where the clean trace has none).
        let tl_noise = BandwidthTimeline::from_trace(&with_noise.trace);
        let tl_clean = BandwidthTimeline::from_trace(&without.trace);
        let gap_start = with_noise.phase_starts[0] + with_noise.phase_durations[0] + 0.5;
        let gap_end = with_noise.phase_starts[1] - 0.5;
        assert!(gap_end > gap_start);
        assert!(tl_noise.volume_in(gap_start, gap_end) > 0.0);
        assert_eq!(tl_clean.volume_in(gap_start, gap_end), 0.0);
    }

    #[test]
    fn io_time_ratio_is_a_fraction() {
        let library = small_library(6);
        let result = generate(
            &SemiSyntheticConfig {
                iterations: 10,
                processes: 8,
                tcpu_mean: 11.0,
                ..Default::default()
            },
            &library,
            3,
        );
        let ratio = result.io_time_ratio();
        assert!(ratio > 0.3 && ratio <= 1.0, "ratio {ratio}");
    }

    #[test]
    fn batch_generation_varies_across_seeds() {
        let library = small_library(7);
        let batch = generate_batch(&SemiSyntheticConfig::default(), &library, 5, 100);
        assert_eq!(batch.len(), 5);
        let first = batch[0].mean_period();
        assert!(batch
            .iter()
            .skip(1)
            .any(|t| (t.mean_period() - first).abs() > 1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let library = small_library(8);
        generate(
            &SemiSyntheticConfig {
                iterations: 0,
                ..Default::default()
            },
            &library,
            1,
        );
    }
}
