//! # ftio-synth
//!
//! Synthetic and semi-synthetic HPC I/O workload generation for FTIO-rs.
//!
//! The paper evaluates FTIO on real cluster runs (IOR, LAMMPS, HACC-IO,
//! miniIO, a Nek5000 Darshan profile) and on "semi-synthetic" traces built
//! from traced IOR phases. Those runs and traces are not redistributable, so
//! this crate generates statistically equivalent workloads, shaped after the
//! descriptions and numbers the paper reports (see DESIGN.md for the
//! substitution table):
//!
//! * [`ior`] — single IOR-like I/O phases, a phase library, and full IOR
//!   benchmark runs (iterations × segments × block/transfer sizes);
//! * [`semi`] — the semi-synthetic application generator of §III-A
//!   (compute phases from a truncated normal, per-process exponential delays,
//!   optional noise) including the ground truth needed to compute detection
//!   errors;
//! * [`noise`] — the low/high background-noise streams;
//! * [`sweep`] — the exact parameter grids of Fig. 8a/8b/8c;
//! * [`lammps`], [`hacc`], [`nek5000`], [`miniio`] — case-study-shaped
//!   workloads (§III-B and Fig. 6);
//! * [`scenarios`] — the Fig. 1 / Fig. 4 phase-boundary illustration, plus
//!   the contention-flavoured adversarial generators (bursty interference,
//!   heavy-tailed request sizes, multi-tenant contention);
//! * [`drift`] — the adversarial scenario framework: [`Scenario`]s with
//!   machine-readable ground truth, and the period-evolution generators
//!   (steady, phase change, AMR-style drift);
//! * [`multi_app`] — seeded application *fleets* (many concurrent periodic
//!   writers with ground truth) driving the cluster engine and its benches;
//! * [`client_stream`] — fleets sliced into per-application encoded chunks,
//!   the client-side payloads `ftio serve` sessions and benches send;
//! * [`distributions`] — the truncated-normal and exponential samplers.
//!
//! # Quick example
//!
//! ```
//! use ftio_synth::ior::PhaseLibrary;
//! use ftio_synth::semi::{generate, SemiSyntheticConfig};
//!
//! let library = PhaseLibrary::paper_default(42);
//! let config = SemiSyntheticConfig { iterations: 5, ..Default::default() };
//! let result = generate(&config, &library, 7);
//! assert_eq!(result.phase_starts.len(), 5);
//! assert!(result.mean_period() > 15.0);
//! ```

pub mod client_stream;
pub mod distributions;
pub mod drift;
pub mod hacc;
pub mod ior;
pub mod lammps;
pub mod miniio;
pub mod multi_app;
pub mod nek5000;
pub mod noise;
pub mod scenarios;
pub mod semi;
pub mod sweep;

use ftio_trace::source::{MemorySource, DEFAULT_BATCH_SIZE};
use ftio_trace::{AppId, AppTrace, Heatmap};

/// Wraps any generated trace as a streaming
/// [`TraceSource`](ftio_trace::source::TraceSource), attributed to the
/// trace's application name — every generator doubles as a source this way,
/// so the same consumers (detection, replay, benches) run on synthetic and
/// recorded data alike.
pub fn trace_source(trace: &AppTrace) -> MemorySource {
    MemorySource::from_trace(
        AppId::from_name(&trace.metadata().application),
        trace,
        DEFAULT_BATCH_SIZE,
    )
}

/// Wraps a generated heatmap (e.g. [`nek5000::generate`]) as a streaming
/// bins source.
pub fn heatmap_source(name: &str, heatmap: &Heatmap) -> MemorySource {
    MemorySource::from_heatmap(AppId::from_name(name), heatmap, DEFAULT_BATCH_SIZE)
}

pub use client_stream::{ChunkEncoding, FleetStream, StreamChunk};
pub use drift::{
    all_scenarios, scenario_by_name, scenario_for, DriftConfig, PhaseChangeConfig, Scenario,
    ScenarioFamily, ScenarioFlush, SteadyConfig,
};
pub use ior::{IoPhase, IorBenchmarkConfig, IorPhaseConfig, PhaseLibrary};
pub use multi_app::{AppStream, FlushEvent, MultiAppConfig, MultiAppWorkload};
pub use noise::NoiseLevel;
pub use scenarios::{
    long_history_burst, long_history_requests, InterferenceConfig, LongHistoryConfig,
    MultiTenantConfig, TailConfig,
};
pub use semi::{generate as generate_semi_synthetic, SemiSyntheticConfig, SemiSyntheticTrace};
pub use sweep::SweepPoint;

// Seeded randomized invariant tests (a property-test stand-in: the build
// environment has no crates.io access, so `proptest` is unavailable).
#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::ior::IorPhaseConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_library() -> PhaseLibrary {
        PhaseLibrary::generate(
            &IorPhaseConfig {
                num_processes: 4,
                bytes_per_process: 100_000_000,
                requests_per_process: 5,
                ..Default::default()
            },
            10,
            0xBEEF,
        )
    }

    /// Semi-synthetic traces always have monotonically increasing phase
    /// starts, a positive mean period, and phase durations that at least
    /// cover the raw phase length.
    #[test]
    fn semi_synthetic_ground_truth_is_consistent() {
        let mut rng = StdRng::seed_from_u64(0x5f17_0001);
        let library = small_library();
        for case in 0..24 {
            let iterations = rng.gen_range(2usize..12);
            let config = SemiSyntheticConfig {
                iterations,
                processes: 4,
                tcpu_mean: rng.gen_range(1.0f64..40.0),
                tcpu_std: rng.gen_range(0.0f64..20.0),
                desync_avg: rng.gen_range(0.0f64..20.0),
                noise: NoiseLevel::None,
            };
            let result = semi::generate(&config, &library, rng.gen_range(0u64..1000));
            assert_eq!(result.phase_starts.len(), iterations, "case {case}");
            assert_eq!(result.phase_durations.len(), iterations, "case {case}");
            for w in result.phase_starts.windows(2) {
                assert!(w[1] > w[0], "case {case}: starts not increasing");
            }
            assert!(result.mean_period() > 0.0, "case {case}");
            for &d in &result.phase_durations {
                assert!(
                    d >= 9.0,
                    "case {case}: phase duration {d} below the library minimum"
                );
            }
            // The trace spans at least the last phase start.
            assert!(result.trace.end_time() >= *result.phase_starts.last().unwrap());
        }
    }

    /// The detection error is zero exactly at the ground truth and scales
    /// linearly with the deviation.
    #[test]
    fn detection_error_scales_linearly() {
        let mut rng = StdRng::seed_from_u64(0x5f17_0002);
        let library = small_library();
        for case in 0..24 {
            let seed = rng.gen_range(0u64..200);
            let factor = rng.gen_range(0.1f64..3.0);
            let result = semi::generate(
                &SemiSyntheticConfig {
                    iterations: 5,
                    processes: 4,
                    ..Default::default()
                },
                &library,
                seed,
            );
            let truth = result.mean_period();
            assert!(result.detection_error(truth) < 1e-12, "case {case}");
            let err = result.detection_error(truth * factor);
            assert!(
                (err - (factor - 1.0).abs()).abs() < 1e-9,
                "case {case}: error {err}"
            );
        }
    }

    /// IOR phases always respect their configured volume exactly.
    #[test]
    fn ior_phase_volume_is_exact() {
        let mut rng = StdRng::seed_from_u64(0x5f17_0003);
        for case in 0..24 {
            let processes = rng.gen_range(1usize..16);
            let requests = rng.gen_range(1usize..20);
            let bytes = rng.gen_range(1_000u64..1_000_000);
            let config = IorPhaseConfig {
                num_processes: processes,
                bytes_per_process: bytes,
                requests_per_process: requests,
                ..Default::default()
            };
            let mut phase_rng = StdRng::seed_from_u64(rng.gen_range(0u64..500));
            let phase = ior::generate_phase(&config, &mut phase_rng);
            let expected = (bytes / requests as u64).max(1) * requests as u64 * processes as u64;
            assert_eq!(phase.volume(), expected, "case {case}");
            assert!(phase.duration > 0.0, "case {case}");
            assert!(phase.requests.iter().all(|r| r.is_valid()), "case {case}");
        }
    }

    /// The LAMMPS and HACC workloads report ground truths consistent with
    /// their configured structure for any seed.
    #[test]
    fn case_study_ground_truth_is_consistent() {
        let mut rng = StdRng::seed_from_u64(0x5f17_0004);
        for case in 0..24 {
            let seed = rng.gen_range(0u64..300);
            let l = lammps::generate(&lammps::LammpsConfig::default(), seed);
            assert_eq!(l.dump_starts.len(), 15, "case {case}");
            assert!(
                l.mean_period > 20.0 && l.mean_period < 36.0,
                "case {case}: {}",
                l.mean_period
            );

            let h = hacc::generate(&hacc::HaccConfig::default(), seed);
            assert_eq!(h.phase_starts.len(), 10, "case {case}");
            assert!(
                h.mean_period() > h.mean_period_without_first(),
                "case {case}"
            );
        }
    }
}
