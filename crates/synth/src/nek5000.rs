//! Nek5000-shaped Darshan heatmap (paper §III-B, case study b).
//!
//! The paper demonstrates FTIO's compatibility with other data sources on a
//! Darshan profile of Nek5000 (2048 ranks, Mogon II cluster) downloaded from
//! the I/O Trace Initiative. FTIO reads the profile's *heatmap* — volume per
//! time bin — and sets the sampling frequency to the bin width (fs ≈ 0.006 Hz,
//! i.e. bins of ≈ 167 s). The relevant structure, reproduced here from the
//! paper's description of Fig. 11:
//!
//! * total trace window Δt ≈ 86,000 s;
//! * periodic checkpoint-style phases writing ≈ 7 GB each, spaced ≈ 4642 s
//!   apart but *not exactly* evenly;
//! * irregular phases at ≈ 0 s (13 GB), ≈ 45,000 s (75 GB), ≈ 57,000 s
//!   (30 GB) and ≈ 85,000 s (30 GB);
//! * over the full window the signal is not periodic, but restricted to
//!   Δt = 56,000 s FTIO finds the 4642 s period with high confidence.

use ftio_trace::Heatmap;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distributions::uniform;

/// Configuration of the Nek5000-shaped heatmap.
#[derive(Clone, Copy, Debug)]
pub struct NekConfig {
    /// Total covered time in seconds (86,000 s in the paper).
    pub total_duration: f64,
    /// Heatmap bin width in seconds (1 / 0.006 Hz ≈ 167 s).
    pub bin_width: f64,
    /// Period of the regular checkpoint phases in seconds (≈ 4642 s).
    pub checkpoint_period: f64,
    /// Relative jitter applied to each checkpoint's position (the bins that
    /// write 7 GB "are not equally spaced").
    pub checkpoint_jitter: f64,
    /// Volume of a regular checkpoint in bytes (≈ 7 GB).
    pub checkpoint_volume: f64,
}

impl Default for NekConfig {
    fn default() -> Self {
        NekConfig {
            total_duration: 86_000.0,
            bin_width: 1.0 / 0.006,
            checkpoint_period: 4642.0,
            checkpoint_jitter: 0.10,
            checkpoint_volume: 7.0e9,
        }
    }
}

/// An irregular large write outside the periodic pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IrregularPhase {
    /// Time of the phase in seconds.
    pub time: f64,
    /// Volume of the phase in bytes.
    pub volume: f64,
}

/// The irregular phases the paper describes for this trace.
///
/// The 13 GB and 75 GB phases sit on the checkpoint grid (the paper places the
/// latter at "roughly 45,000 s"; here it is the 9th checkpoint step at
/// ≈ 41,800 s, i.e. an oversized checkpoint), while the two 30 GB phases at
/// 57,000 s and 85,000 s fall between checkpoints — they are what makes the
/// full-window signal non-periodic, exactly as in the paper's Fig. 11.
pub fn paper_irregular_phases() -> Vec<IrregularPhase> {
    vec![
        IrregularPhase {
            time: 0.0,
            volume: 13.0e9,
        },
        IrregularPhase {
            time: 9.0 * 4642.0,
            volume: 75.0e9,
        },
        IrregularPhase {
            time: 57_000.0,
            volume: 30.0e9,
        },
        IrregularPhase {
            time: 85_000.0,
            volume: 30.0e9,
        },
    ]
}

/// Generates the Nek5000-shaped heatmap with the paper's irregular phases.
pub fn generate(config: &NekConfig, seed: u64) -> Heatmap {
    generate_with_irregular(config, &paper_irregular_phases(), seed)
}

/// Generates the heatmap with an explicit list of irregular phases.
pub fn generate_with_irregular(
    config: &NekConfig,
    irregular: &[IrregularPhase],
    seed: u64,
) -> Heatmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_bins = (config.total_duration / config.bin_width).ceil() as usize;
    let mut bins = vec![0.0; num_bins];

    // Deposit a phase's volume by linear interpolation between the two bins
    // its position falls between; real checkpoints are short but not perfect
    // impulses, and this keeps the harmonic content of the synthetic signal
    // from being artificially flat.
    let deposit = |time: f64, volume: f64, bins: &mut Vec<f64>| {
        if time < 0.0 {
            return;
        }
        let position = time / config.bin_width;
        let idx = position.floor() as usize;
        let frac = position - idx as f64;
        if idx < bins.len() {
            bins[idx] += volume * (1.0 - frac);
        }
        if idx + 1 < bins.len() {
            bins[idx + 1] += volume * frac;
        } else if idx < bins.len() {
            bins[idx] += volume * frac;
        }
    };

    // Regular checkpoints, skipping positions that collide with an irregular
    // phase. The tail of the run (after ~56,000 s) becomes markedly more
    // irregular — in the original trace the late checkpoints are no longer
    // equally spaced, which is why the full-window analysis fails while the
    // reduced window succeeds (paper Fig. 11).
    let mut t = config.checkpoint_period;
    while t < config.total_duration {
        let jitter_scale = if t > 56_000.0 {
            0.45
        } else {
            config.checkpoint_jitter
        };
        let jitter = config.checkpoint_period * jitter_scale * (uniform(&mut rng, 0.0, 2.0) - 1.0);
        let pos = (t + jitter).clamp(0.0, config.total_duration - 1.0);
        let collides = irregular
            .iter()
            .any(|p| (p.time - pos).abs() < config.checkpoint_period * 0.4);
        if !collides {
            deposit(
                pos,
                config.checkpoint_volume * uniform(&mut rng, 0.9, 1.1),
                &mut bins,
            );
        }
        t += config.checkpoint_period;
    }

    // Irregular phases.
    for p in irregular {
        deposit(p.time, p.volume, &mut bins);
    }

    Heatmap::new(0.0, config.bin_width, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_covers_the_paper_window() {
        let h = generate(&NekConfig::default(), 1);
        assert!((h.duration() - 86_000.0).abs() < 200.0);
        assert!((h.sampling_freq() - 0.006).abs() < 1e-4);
    }

    #[test]
    fn irregular_phases_dominate_the_volume_ranking() {
        let config = NekConfig::default();
        let h = generate(&config, 2);
        // Each irregular phase is split across at most two adjacent bins, so
        // sum pairs of neighbouring bins around the phase positions.
        let volume_around = |time: f64| -> f64 {
            let idx = (time / config.bin_width).floor() as usize;
            h.bins[idx] + h.bins.get(idx + 1).copied().unwrap_or(0.0)
        };
        for phase in paper_irregular_phases() {
            assert!(
                volume_around(phase.time) >= phase.volume * 0.99,
                "phase at {} s is missing volume",
                phase.time
            );
        }
        // The largest single bin still belongs to the 75 GB phase, far above
        // any ~7 GB checkpoint.
        let max_bin = h.bins.iter().cloned().fold(0.0, f64::max);
        assert!(max_bin > 30.0e9, "max bin {max_bin}");
    }

    #[test]
    fn checkpoints_appear_roughly_every_period() {
        let config = NekConfig::default();
        let h = generate(&config, 3);
        // Count groups of adjacent non-empty bins in the first 40,000 s
        // (a checkpoint may be split across two neighbouring bins).
        let mut groups = 0;
        let mut in_group = false;
        for (i, &v) in h.bins.iter().enumerate() {
            if (i as f64 * config.bin_width) >= 40_000.0 {
                break;
            }
            if v > 1.0e9 {
                if !in_group {
                    groups += 1;
                }
                in_group = true;
            } else {
                in_group = false;
            }
        }
        // Expect roughly 40,000 / 4642 ≈ 8 checkpoints plus the 13 GB
        // irregular phase at t = 0.
        assert!(
            (7..=10).contains(&groups),
            "found {groups} checkpoint groups"
        );
    }

    #[test]
    fn windowed_heatmap_excludes_late_irregular_phases() {
        let h = generate(&NekConfig::default(), 4);
        let w = h.window(0.0, 56_000.0);
        assert!(w.duration() < 57_000.0);
        // The 75 GB phase (at the 9th checkpoint step) is still present, the
        // 30 GB ones at 57,000 s and 85,000 s are not.
        let max_bin = w.bins.iter().cloned().fold(0.0, f64::max);
        assert!(max_bin > 30.0e9, "max bin in the reduced window {max_bin}");
        assert!(w.total_volume() > 75.0e9);
        let late = h.window(56_000.0, 86_000.0);
        assert!(late.bins.iter().cloned().fold(0.0, f64::max) > 15.0e9);
        assert!(late.total_volume() < 61.0e9 + 15.0 * 8.0e9);
    }

    #[test]
    fn custom_irregular_phases_are_respected() {
        let config = NekConfig::default();
        let h = generate_with_irregular(
            &config,
            &[IrregularPhase {
                time: 10_000.0,
                volume: 99.0e9,
            }],
            5,
        );
        let idx = (10_000.0 / config.bin_width) as usize;
        assert!(h.bins[idx] > 98.0e9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&NekConfig::default(), 7);
        let b = generate(&NekConfig::default(), 7);
        assert_eq!(a, b);
    }
}
