//! Random distributions used by the trace generators.
//!
//! The semi-synthetic methodology of the paper (§III-A) needs two specific
//! distributions that `rand`'s core API does not provide directly:
//!
//! * a **truncated normal** for the compute-phase lengths (`t_cpu` is drawn
//!   from `N(µ, σ)` "truncated to only select positive values"), and
//! * an **exponential** for the per-process desynchronisation delays `δ_k`
//!   ("drawn from an exponential distribution of average ϕ").
//!
//! Both are implemented here from uniform samples so the crate needs only the
//! `rand` core traits.

use rand::Rng;

/// Draws from the standard normal distribution using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would make ln(0) = -inf.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from `N(mean, std_dev)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws from `N(mean, std_dev)` truncated to non-negative values by rejection
/// sampling (the paper's `t_cpu` distribution). Falls back to clamping at zero
/// when the acceptance probability is tiny (mean strongly negative), so the
/// function always terminates.
pub fn truncated_normal_non_negative<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return mean.max(0.0);
    }
    for _ in 0..256 {
        let x = normal(rng, mean, std_dev);
        if x >= 0.0 {
            return x;
        }
    }
    0.0
}

/// Draws from an exponential distribution with the given mean (`ϕ` in the
/// paper). A non-positive mean always yields 0, which encodes "no
/// desynchronisation".
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    -mean * u.ln()
}

/// Draws a uniform value in `[lo, hi)` (degenerate ranges return `lo`).
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 11.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 11.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.25);
    }

    #[test]
    fn truncated_normal_is_never_negative() {
        let mut r = rng();
        for _ in 0..5000 {
            assert!(truncated_normal_non_negative(&mut r, 1.0, 5.0) >= 0.0);
        }
        // Degenerate σ returns the clamped mean.
        assert_eq!(truncated_normal_non_negative(&mut r, 7.0, 0.0), 7.0);
        assert_eq!(truncated_normal_non_negative(&mut r, -3.0, 0.0), 0.0);
    }

    #[test]
    fn truncated_normal_with_extreme_negative_mean_terminates() {
        let mut r = rng();
        let x = truncated_normal_non_negative(&mut r, -1e9, 1.0);
        assert_eq!(x, 0.0);
    }

    #[test]
    fn exponential_mean_matches_parameter() {
        let mut r = rng();
        let mean_param = 22.0;
        let samples: Vec<f64> = (0..50_000)
            .map(|_| exponential(&mut r, mean_param))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - mean_param).abs() / mean_param < 0.03, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exponential_with_zero_mean_is_always_zero() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(exponential(&mut r, 0.0), 0.0);
            assert_eq!(exponential(&mut r, -1.0), 0.0);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = uniform(&mut r, 2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(uniform(&mut r, 5.0, 5.0), 5.0);
        assert_eq!(uniform(&mut r, 5.0, 4.0), 5.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
