//! LAMMPS-shaped workload (paper §III-B, case study a).
//!
//! The paper analyses a LAMMPS 2-d LJ flow run with 3072 ranks, 300 simulation
//! runs dumping all atoms every 20 runs — i.e. 15 dump phases. The dumps use a
//! slow writing method, so the I/O bandwidth is low and the phases are long
//! relative to the amount of data; the real mean period was 27.38 s, FTIO
//! detected 25.73 s with 55 % confidence (84.9 % after the ACF refinement).
//!
//! The generator reproduces the structure of that signal: a moderate number of
//! low-bandwidth dump phases, a slightly irregular spacing (one dump drifts,
//! as the paper notes for the phase at 143 s), and a per-dump duration that is
//! a sizeable fraction of the period.

use ftio_trace::{AppTrace, IoRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distributions::{normal, uniform};

/// Configuration of the LAMMPS-shaped workload.
#[derive(Clone, Copy, Debug)]
pub struct LammpsConfig {
    /// Number of MPI ranks (3072 in the paper; only a subset actually writes).
    pub num_ranks: usize,
    /// Number of writer processes contributing to each dump.
    pub writers: usize,
    /// Number of dump phases (15 in the paper: 300 runs / every 20 runs).
    pub dumps: usize,
    /// Mean period between dump starts in seconds (27.38 s in the paper).
    pub mean_period: f64,
    /// Standard deviation of the period in seconds (captures the drifting dump).
    pub period_jitter: f64,
    /// Duration of one dump phase in seconds (low-bandwidth writing).
    pub dump_duration: f64,
    /// Bytes written per dump across all writers.
    pub bytes_per_dump: u64,
    /// Time before the first dump starts, seconds.
    pub start_offset: f64,
}

impl Default for LammpsConfig {
    fn default() -> Self {
        LammpsConfig {
            num_ranks: 3072,
            writers: 48,
            dumps: 15,
            mean_period: 27.38,
            period_jitter: 2.2,
            dump_duration: 9.0,
            bytes_per_dump: 1_200_000_000, // ~1.2 GB per dump at low bandwidth
            start_offset: 12.0,
        }
    }
}

/// The generated workload plus its ground truth.
#[derive(Clone, Debug)]
pub struct LammpsWorkload {
    /// The request trace.
    pub trace: AppTrace,
    /// Ground-truth dump start times.
    pub dump_starts: Vec<f64>,
    /// Ground-truth mean period between dump starts.
    pub mean_period: f64,
}

impl LammpsWorkload {
    /// The workload as a streaming
    /// [`TraceSource`](ftio_trace::source::TraceSource) (chunked request
    /// batches).
    pub fn to_source(&self) -> ftio_trace::source::MemorySource {
        crate::trace_source(&self.trace)
    }
}

/// Generates the LAMMPS-shaped trace.
pub fn generate(config: &LammpsConfig, seed: u64) -> LammpsWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = AppTrace::named("LAMMPS", config.num_ranks);
    let mut dump_starts = Vec::with_capacity(config.dumps);

    let bytes_per_writer = (config.bytes_per_dump / config.writers.max(1) as u64).max(1);
    let mut t = config.start_offset;
    for d in 0..config.dumps {
        let start = t;
        dump_starts.push(start);
        // The dump is serialised over the writers: low aggregate bandwidth,
        // each writer active for a slice of the dump (this is the "slow
        // writing method" visible in the paper's Fig. 10).
        let slice = config.dump_duration / config.writers.max(1) as f64;
        for w in 0..config.writers {
            let ws = start + w as f64 * slice;
            let we = ws + slice * uniform(&mut rng, 0.85, 1.0);
            trace.push(IoRequest::write(w, ws, we, bytes_per_writer));
        }
        // One dump drifts noticeably more than the others (the paper calls out
        // the phase at 143 s not fitting the detected period well).
        let jitter = if d == config.dumps / 3 {
            config.period_jitter * 2.5
        } else {
            config.period_jitter
        };
        let period = normal(&mut rng, config.mean_period, jitter).max(config.dump_duration + 1.0);
        t += period;
    }

    let mean_period = if dump_starts.len() > 1 {
        let diffs: Vec<f64> = dump_starts.windows(2).map(|w| w[1] - w[0]).collect();
        diffs.iter().sum::<f64>() / diffs.len() as f64
    } else {
        0.0
    };

    LammpsWorkload {
        trace,
        dump_starts,
        mean_period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::BandwidthTimeline;

    #[test]
    fn workload_has_expected_dump_count_and_period() {
        let w = generate(&LammpsConfig::default(), 1);
        assert_eq!(w.dump_starts.len(), 15);
        assert!(
            w.mean_period > 22.0 && w.mean_period < 33.0,
            "{}",
            w.mean_period
        );
        assert_eq!(w.trace.metadata().application, "LAMMPS");
        assert_eq!(w.trace.metadata().num_ranks, 3072);
    }

    #[test]
    fn dumps_are_low_bandwidth() {
        let config = LammpsConfig::default();
        let w = generate(&config, 2);
        let tl = BandwidthTimeline::from_trace(&w.trace);
        // Aggregate bandwidth during a dump is volume / duration, well below 1 GB/s.
        let first = w.dump_starts[0];
        let bw = tl.volume_in(first, first + config.dump_duration) / config.dump_duration;
        assert!(bw < 500.0e6, "dump bandwidth {bw}");
        assert!(bw > 10.0e6);
    }

    #[test]
    fn total_volume_matches_dumps() {
        let config = LammpsConfig::default();
        let w = generate(&config, 3);
        let per_dump = (config.bytes_per_dump / config.writers as u64) * config.writers as u64;
        assert_eq!(w.trace.total_volume(), per_dump * config.dumps as u64);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let a = generate(&LammpsConfig::default(), 10);
        let b = generate(&LammpsConfig::default(), 10);
        let c = generate(&LammpsConfig::default(), 11);
        assert_eq!(a.dump_starts, b.dump_starts);
        assert_ne!(a.dump_starts, c.dump_starts);
    }

    #[test]
    fn single_dump_has_zero_mean_period() {
        let w = generate(
            &LammpsConfig {
                dumps: 1,
                ..Default::default()
            },
            4,
        );
        assert_eq!(w.mean_period, 0.0);
        assert_eq!(w.dump_starts.len(), 1);
    }
}
