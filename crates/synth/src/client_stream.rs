//! Client-side stream chunking for `ftio serve`.
//!
//! [`MultiAppWorkload`] produces the *server-side*
//! view of a fleet: a globally time-ordered flush schedule. A socket client
//! sees the opposite cut — one application's flushes, each encoded as a
//! self-contained chunk of bytes it can put in a `Data` frame. This module
//! slices a fleet into such per-application chunk sequences, so the serve
//! benches and the CI smoke lane can drive real sockets with synthetic
//! workloads instead of checked-in fixtures.

use ftio_trace::{jsonl, msgpack, AppId};

use crate::multi_app::{AppStream, MultiAppWorkload};

/// Wire encoding of a [`StreamChunk`]'s payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkEncoding {
    /// One JSON object per line (`ftio_trace::jsonl`).
    Jsonl,
    /// The binary MessagePack framing (`ftio_trace::msgpack`).
    Msgpack,
}

/// One flush of one application, encoded and ready to send.
#[derive(Clone, Debug)]
pub struct StreamChunk {
    /// The flushing application.
    pub app: AppId,
    /// When the application flushed (seconds since its run started) — drives
    /// paced replays.
    pub now: f64,
    /// The encoded requests; self-contained, sniffable, one `Data` frame.
    pub payload: Vec<u8>,
}

/// A fleet sliced into per-application chunk sequences.
///
/// ```
/// use ftio_synth::{ChunkEncoding, FleetStream, MultiAppConfig, MultiAppWorkload};
///
/// let workload = MultiAppWorkload::generate(
///     &MultiAppConfig { apps: 2, flushes_per_app: 3, ..Default::default() },
///     7,
/// );
/// let stream = FleetStream::new(&workload, ChunkEncoding::Jsonl);
/// assert_eq!(stream.clients().len(), 2);
/// let (app, chunks) = &stream.clients()[0];
/// assert_eq!(chunks.len(), 3);
/// assert!(chunks[0].payload.ends_with(b"\n"));
/// assert_eq!(*app, chunks[0].app);
/// ```
#[derive(Clone, Debug)]
pub struct FleetStream {
    clients: Vec<(AppId, Vec<StreamChunk>)>,
}

impl FleetStream {
    /// Slices `workload` into one chunk sequence per application, each
    /// sequence ordered by flush time.
    pub fn new(workload: &MultiAppWorkload, encoding: ChunkEncoding) -> Self {
        let clients = workload
            .apps
            .iter()
            .map(|stream| {
                (
                    stream.app,
                    chunk_app(stream, workload.flushes_per_app(), encoding),
                )
            })
            .collect();
        FleetStream { clients }
    }

    /// The per-application chunk sequences, one entry per fleet member.
    pub fn clients(&self) -> &[(AppId, Vec<StreamChunk>)] {
        &self.clients
    }

    /// The chunk sequence of one application, if it is part of the fleet.
    pub fn client(&self, app: AppId) -> Option<&[StreamChunk]> {
        self.clients
            .iter()
            .find(|(id, _)| *id == app)
            .map(|(_, chunks)| chunks.as_slice())
    }

    /// Total payload bytes across every client — the denominator of a
    /// socket-ingest throughput measurement.
    pub fn total_bytes(&self) -> usize {
        self.clients
            .iter()
            .flat_map(|(_, chunks)| chunks)
            .map(|chunk| chunk.payload.len())
            .sum()
    }
}

fn chunk_app(stream: &AppStream, flushes: usize, encoding: ChunkEncoding) -> Vec<StreamChunk> {
    (0..flushes)
        .map(|index| {
            let (requests, now) = stream.flush(index);
            let payload = match encoding {
                ChunkEncoding::Jsonl => jsonl::encode_requests(&requests).into_bytes(),
                ChunkEncoding::Msgpack => msgpack::encode_requests(&requests),
            };
            StreamChunk {
                app: stream.app,
                now,
                payload,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_app::MultiAppConfig;
    use ftio_trace::source::SourceFormat;

    fn fleet() -> MultiAppWorkload {
        MultiAppWorkload::generate(
            &MultiAppConfig {
                apps: 3,
                flushes_per_app: 4,
                ranks_per_app: 2,
                ..Default::default()
            },
            0xC11E,
        )
    }

    #[test]
    fn every_chunk_is_self_contained_and_sniffable() {
        let workload = fleet();
        for encoding in [ChunkEncoding::Jsonl, ChunkEncoding::Msgpack] {
            let stream = FleetStream::new(&workload, encoding);
            assert_eq!(stream.clients().len(), 3);
            for (app, chunks) in stream.clients() {
                assert_eq!(chunks.len(), 4);
                for chunk in chunks {
                    assert_eq!(chunk.app, *app);
                    let sniffed = SourceFormat::sniff(&chunk.payload).expect("sniffable");
                    let expected = match encoding {
                        ChunkEncoding::Jsonl => SourceFormat::Jsonl,
                        ChunkEncoding::Msgpack => SourceFormat::Msgpack,
                    };
                    assert_eq!(sniffed, expected);
                }
                // Flush times advance by the app's period.
                for pair in chunks.windows(2) {
                    assert!(pair[1].now > pair[0].now);
                }
            }
        }
    }

    #[test]
    fn chunks_decode_back_to_the_flush_requests() {
        let workload = fleet();
        let stream = FleetStream::new(&workload, ChunkEncoding::Jsonl);
        let app_stream = &workload.apps[1];
        let chunks = stream.client(app_stream.app).expect("fleet member");
        for (index, chunk) in chunks.iter().enumerate() {
            let (expected, now) = app_stream.flush(index);
            let text = std::str::from_utf8(&chunk.payload).unwrap();
            assert_eq!(jsonl::decode_requests(text).unwrap(), expected);
            assert_eq!(chunk.now, now);
        }
        assert!(stream.client(AppId::new(999)).is_none());
        assert!(stream.total_bytes() > 0);
    }
}
