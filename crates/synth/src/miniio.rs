//! miniIO-shaped workload (paper §II-E, Fig. 6 — the aliasing example).
//!
//! The paper uses the `unstruct` mini-app of miniIO (144 ranks, 1000 points
//! per task) to illustrate what happens when the sampling frequency is too
//! low: the I/O consists of *very short bursts*, so even fs = 100 Hz produces
//! a discrete signal that "does not match the original one at all" and the
//! abstraction error (volume difference between the continuous and the
//! discretised signal on a point-sampling basis) becomes large.
//!
//! The generator reproduces that structure: many extremely short, dense
//! bursts with long quiet gaps, so point sampling misses most of the volume
//! unless the sampling frequency is far above the burst rate.

use ftio_trace::{AppTrace, IoRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distributions::uniform;

/// Configuration of the miniIO-shaped workload.
#[derive(Clone, Copy, Debug)]
pub struct MiniIoConfig {
    /// Number of ranks (144 in the paper).
    pub num_ranks: usize,
    /// Number of writer processes represented in the trace.
    pub writers: usize,
    /// Number of output steps (each step produces one burst train).
    pub steps: usize,
    /// Gap between output steps in seconds.
    pub step_gap: f64,
    /// Number of micro-bursts per step.
    pub bursts_per_step: usize,
    /// Duration of one micro-burst in seconds (well below 10 ms).
    pub burst_duration: f64,
    /// Gap between micro-bursts within a step in seconds.
    pub burst_gap: f64,
    /// Bytes per micro-burst across all writers.
    pub bytes_per_burst: u64,
}

impl Default for MiniIoConfig {
    fn default() -> Self {
        MiniIoConfig {
            num_ranks: 144,
            writers: 16,
            steps: 6,
            step_gap: 4.0,
            bursts_per_step: 40,
            burst_duration: 0.002,
            burst_gap: 0.03,
            bytes_per_burst: 20_000_000,
        }
    }
}

/// Generates the miniIO-shaped trace.
pub fn generate(config: &MiniIoConfig, seed: u64) -> AppTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = AppTrace::named("miniIO", config.num_ranks);
    let bytes_per_writer = (config.bytes_per_burst / config.writers.max(1) as u64).max(1);
    let mut t = 1.0;
    for _ in 0..config.steps {
        for _ in 0..config.bursts_per_step {
            let duration = config.burst_duration * uniform(&mut rng, 0.5, 1.5);
            for w in 0..config.writers {
                trace.push(IoRequest::write(w, t, t + duration, bytes_per_writer));
            }
            t += duration + config.burst_gap * uniform(&mut rng, 0.8, 1.2);
        }
        t += config.step_gap * uniform(&mut rng, 0.9, 1.1);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::BandwidthTimeline;

    #[test]
    fn bursts_are_sub_10ms() {
        let trace = generate(&MiniIoConfig::default(), 1);
        for r in trace.requests() {
            assert!(r.duration() < 0.01, "burst too long: {}", r.duration());
        }
        assert_eq!(trace.len(), 6 * 40 * 16);
    }

    #[test]
    fn point_sampling_at_low_fs_loses_most_volume() {
        let trace = generate(&MiniIoConfig::default(), 2);
        let tl = BandwidthTimeline::from_trace(&trace);
        let t0 = tl.start();
        let t1 = tl.end() + 1.0;
        let total = tl.total_volume();

        // Point sampling at 10 Hz: each sample holds the instantaneous
        // bandwidth; integrating it badly misrepresents the volume.
        let fs = 10.0;
        let instant = tl.sample_instantaneous(t0, t1, fs);
        let instant_volume: f64 = instant.iter().map(|bw| bw / fs).sum();
        let rel_err = (instant_volume - total).abs() / total;
        assert!(
            rel_err > 0.1,
            "expected a large abstraction error, got {rel_err}"
        );

        // Volume-preserving (averaging) sampling keeps the volume even at 10 Hz.
        let averaged = tl.sample(t0, t1, fs);
        let averaged_volume: f64 = averaged.iter().map(|bw| bw / fs).sum();
        assert!((averaged_volume - total).abs() / total < 0.05);
    }

    #[test]
    fn step_structure_is_visible_at_coarse_granularity() {
        let config = MiniIoConfig::default();
        let trace = generate(&config, 3);
        let tl = BandwidthTimeline::from_trace(&trace);
        let samples = tl.sample(0.0, trace.end_time().ceil() + 1.0, 1.0);
        // Steps of ~1.3 s activity separated by ~4 s of silence: count active runs.
        let mut runs = 0;
        let mut active = false;
        for &s in &samples {
            if s > 0.0 && !active {
                runs += 1;
                active = true;
            } else if s == 0.0 {
                active = false;
            }
        }
        assert_eq!(runs, config.steps);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&MiniIoConfig::default(), 9);
        let b = generate(&MiniIoConfig::default(), 9);
        assert_eq!(a.requests(), b.requests());
    }
}
