//! Background-noise I/O generation.
//!
//! For the robustness experiments the paper adds noise to the application
//! traces: "we generated 200 traces from IOR on a single process in two
//! configurations: low noise of nearly 500 MB/s and high noise of nearly
//! 1 GB/s. The noise traces have 10 periods of approximately 2.2 s each.
//! Noise is emulated by randomly selecting a sequence of noise traces and
//! adding them to the application trace." (§III-A)
//!
//! A noise trace is therefore itself periodic but with a small amplitude and a
//! short period compared to the application's I/O phases, which is exactly the
//! kind of high-frequency content the power-spectrum analysis must not mistake
//! for the dominant frequency.

use ftio_trace::{AppTrace, IoRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::uniform;

/// Intensity of the injected background noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NoiseLevel {
    /// No noise is added.
    #[default]
    None,
    /// ~500 MB/s single-process noise.
    Low,
    /// ~1 GB/s single-process noise.
    High,
}

impl NoiseLevel {
    /// Nominal bandwidth of the noise stream in bytes/second.
    pub fn bandwidth(self) -> f64 {
        match self {
            NoiseLevel::None => 0.0,
            NoiseLevel::Low => 500.0e6,
            NoiseLevel::High => 1.0e9,
        }
    }
}

/// Configuration of one noise trace (mirroring the paper's noise IOR runs).
#[derive(Clone, Copy, Debug)]
pub struct NoiseConfig {
    /// Noise intensity.
    pub level: NoiseLevel,
    /// Number of noise periods per noise trace (10 in the paper).
    pub periods: usize,
    /// Approximate period length in seconds (≈ 2.2 s in the paper).
    pub period_length: f64,
    /// Fraction of each period during which the noise process performs I/O.
    pub duty_cycle: f64,
    /// Rank id used for the noise requests (a single extra process).
    pub rank: usize,
}

impl NoiseConfig {
    /// The paper's noise configuration at the given level.
    pub fn paper_default(level: NoiseLevel) -> Self {
        NoiseConfig {
            level,
            periods: 10,
            period_length: 2.2,
            duty_cycle: 0.8,
            rank: usize::MAX - 1,
        }
    }

    /// Duration of one noise trace in seconds.
    pub fn trace_duration(&self) -> f64 {
        self.periods as f64 * self.period_length
    }
}

/// Generates a single noise trace starting at time 0 (requests only).
pub fn generate_noise_trace(config: &NoiseConfig, rng: &mut StdRng) -> Vec<IoRequest> {
    if config.level == NoiseLevel::None || config.periods == 0 {
        return Vec::new();
    }
    let mut requests = Vec::with_capacity(config.periods);
    let mut t = 0.0;
    for _ in 0..config.periods {
        let period = config.period_length * uniform(rng, 0.9, 1.1);
        let busy = period * config.duty_cycle.clamp(0.05, 1.0);
        let bandwidth = config.level.bandwidth() * uniform(rng, 0.85, 1.15);
        let bytes = (bandwidth * busy) as u64;
        requests.push(IoRequest::write(config.rank, t, t + busy, bytes));
        t += period;
    }
    requests
}

/// Adds background noise to `trace`, covering its whole duration by chaining
/// randomly generated noise traces back to back (the paper's "randomly
/// selecting a sequence of noise traces").
pub fn add_noise(trace: &mut AppTrace, level: NoiseLevel, seed: u64) {
    if level == NoiseLevel::None || trace.is_empty() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA015E);
    let config = NoiseConfig::paper_default(level);
    let start = trace.start_time();
    let end = trace.end_time();
    let mut t = start;
    while t < end {
        let noise = generate_noise_trace(&config, &mut rng);
        let chunk_end = t + config.trace_duration();
        for r in noise {
            let shifted = r.shifted(t);
            if shifted.start < end {
                trace.push(shifted);
            }
        }
        t = chunk_end;
        // Occasionally skip a little so noise chunks do not align perfectly.
        if rng.gen::<f64>() < 0.2 {
            t += uniform(&mut rng, 0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_levels_have_expected_bandwidth() {
        assert_eq!(NoiseLevel::None.bandwidth(), 0.0);
        assert_eq!(NoiseLevel::Low.bandwidth(), 500.0e6);
        assert_eq!(NoiseLevel::High.bandwidth(), 1.0e9);
    }

    #[test]
    fn noise_trace_has_requested_periods() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = NoiseConfig::paper_default(NoiseLevel::Low);
        let reqs = generate_noise_trace(&config, &mut rng);
        assert_eq!(reqs.len(), 10);
        for r in &reqs {
            assert!(r.is_valid());
            // Bandwidth near 500 MB/s (within the ±15% generator band).
            let bw = r.bandwidth();
            assert!(bw > 350.0e6 && bw < 650.0e6, "noise bandwidth {bw}");
        }
        // Total duration near 10 × 2.2 s.
        let last_end = reqs.iter().map(|r| r.end).fold(0.0, f64::max);
        assert!(last_end > 17.0 && last_end < 27.0);
    }

    #[test]
    fn none_level_generates_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = NoiseConfig::paper_default(NoiseLevel::None);
        assert!(generate_noise_trace(&config, &mut rng).is_empty());
    }

    #[test]
    fn add_noise_covers_the_trace_duration() {
        let mut trace = AppTrace::named("app", 4);
        for i in 0..5 {
            trace.push(IoRequest::write(
                0,
                i as f64 * 30.0,
                i as f64 * 30.0 + 5.0,
                1_000_000_000,
            ));
        }
        let before = trace.len();
        let end = trace.end_time();
        add_noise(&mut trace, NoiseLevel::High, 3);
        assert!(trace.len() > before);
        // Noise requests exist both early and late in the trace.
        let noise_reqs: Vec<_> = trace
            .requests()
            .iter()
            .filter(|r| r.rank == usize::MAX - 1)
            .collect();
        assert!(!noise_reqs.is_empty());
        assert!(noise_reqs.iter().any(|r| r.start < end * 0.25));
        assert!(noise_reqs.iter().any(|r| r.start > end * 0.75));
        // Noise volume per second is ~1 GB/s × duty cycle, far below the app's bursts.
        let noise_volume: u64 = noise_reqs.iter().map(|r| r.bytes).sum();
        assert!(noise_volume > 0);
    }

    #[test]
    fn add_noise_to_empty_or_none_is_a_noop() {
        let mut empty = AppTrace::named("x", 1);
        add_noise(&mut empty, NoiseLevel::High, 1);
        assert!(empty.is_empty());

        let mut trace = AppTrace::named("x", 1);
        trace.push(IoRequest::write(0, 0.0, 1.0, 100));
        add_noise(&mut trace, NoiseLevel::None, 1);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn noise_is_deterministic_for_a_seed() {
        let build = || {
            let mut trace = AppTrace::named("x", 1);
            trace.push(IoRequest::write(0, 0.0, 100.0, 1_000_000));
            add_noise(&mut trace, NoiseLevel::Low, 42);
            trace.len()
        };
        assert_eq!(build(), build());
    }
}
