//! Multi-application workload generation for the cluster engine.
//!
//! The paper evaluates the online mode one application at a time; the
//! "monitor a whole cluster" scenario needs a *fleet*: many applications with
//! different periods, phases and sizes, all appending I/O data concurrently.
//! This module generates such fleets — every application is a clean periodic
//! burst writer with its own seeded period and start offset — together with
//! the flush schedule the cluster engine replays and the per-application
//! ground truth the accuracy checks compare against.

use ftio_trace::source::{MemorySource, TraceBatch};
use ftio_trace::{AppId, IoRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a generated application fleet.
#[derive(Clone, Copy, Debug)]
pub struct MultiAppConfig {
    /// Number of applications.
    pub apps: usize,
    /// I/O phases (and therefore flushes/predictions) per application.
    pub flushes_per_app: usize,
    /// Ranks writing in each application's burst.
    pub ranks_per_app: usize,
    /// Periods are drawn uniformly from this range (seconds).
    pub period_range: (f64, f64),
    /// Fraction of the period spent inside the I/O burst.
    pub burst_fraction: f64,
    /// Aggregate bytes written per burst (split across ranks).
    pub bytes_per_burst: u64,
}

impl Default for MultiAppConfig {
    fn default() -> Self {
        MultiAppConfig {
            apps: 16,
            flushes_per_app: 8,
            ranks_per_app: 4,
            period_range: (8.0, 32.0),
            burst_fraction: 0.2,
            bytes_per_burst: 2_000_000_000,
        }
    }
}

/// One application of the fleet: a periodic burst writer.
#[derive(Clone, Debug)]
pub struct AppStream {
    /// Routing id of the application (`AppId::new(index)`).
    pub app: AppId,
    /// Human-readable name (`fleet-<index>`).
    pub name: String,
    /// True period between burst starts in seconds — the ground truth.
    pub period: f64,
    /// Start offset of the first burst in seconds.
    pub offset: f64,
    /// Burst duration in seconds.
    pub burst_duration: f64,
    /// Ranks writing each burst.
    pub ranks: usize,
    /// Aggregate bytes per burst.
    pub bytes_per_burst: u64,
}

impl AppStream {
    /// The requests of burst `index` plus the time the application flushes
    /// them (the end of the burst) — one submission to the cluster engine.
    pub fn flush(&self, index: usize) -> (Vec<IoRequest>, f64) {
        let start = self.offset + index as f64 * self.period;
        let end = start + self.burst_duration;
        let per_rank = (self.bytes_per_burst / self.ranks.max(1) as u64).max(1);
        let requests = (0..self.ranks)
            .map(|rank| IoRequest::write(rank, start, end, per_rank))
            .collect();
        (requests, end)
    }
}

/// One entry of the global flush schedule.
#[derive(Clone, Debug)]
pub struct FlushEvent {
    /// Application that appended the data.
    pub app: AppId,
    /// The freshly appended requests.
    pub requests: Vec<IoRequest>,
    /// Time of the flush (prediction time).
    pub now: f64,
}

/// A generated fleet of applications.
#[derive(Clone, Debug)]
pub struct MultiAppWorkload {
    /// The applications, indexed by their raw [`AppId`].
    pub apps: Vec<AppStream>,
    flushes_per_app: usize,
}

impl MultiAppWorkload {
    /// Generates a fleet from the configuration and seed.
    pub fn generate(config: &MultiAppConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = config.period_range;
        let apps = (0..config.apps)
            .map(|index| {
                let period = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                let offset = rng.gen_range(0.0..period);
                AppStream {
                    app: AppId::new(index as u64),
                    name: format!("fleet-{index}"),
                    period,
                    offset,
                    burst_duration: (period * config.burst_fraction).max(0.5),
                    ranks: config.ranks_per_app.max(1),
                    bytes_per_burst: config.bytes_per_burst,
                }
            })
            .collect();
        MultiAppWorkload {
            apps,
            flushes_per_app: config.flushes_per_app,
        }
    }

    /// The ground-truth period of an application, if it is part of the fleet.
    pub fn truth(&self, app: AppId) -> Option<f64> {
        self.apps
            .iter()
            .find(|stream| stream.app == app)
            .map(|stream| stream.period)
    }

    /// The global flush schedule: every application's flushes, interleaved in
    /// time order — the submission stream a cluster-wide monitor would see.
    pub fn events(&self) -> Vec<FlushEvent> {
        let mut events: Vec<FlushEvent> = self
            .apps
            .iter()
            .flat_map(|stream| {
                (0..self.flushes_per_app).map(|index| {
                    let (requests, now) = stream.flush(index);
                    FlushEvent {
                        app: stream.app,
                        requests,
                        now,
                    }
                })
            })
            .collect();
        events.sort_by(|a, b| {
            a.now
                .partial_cmp(&b.now)
                .expect("flush times are finite")
                .then(a.app.cmp(&b.app))
        });
        events
    }

    /// Flushes (and therefore predictions) each application makes.
    pub fn flushes_per_app(&self) -> usize {
        self.flushes_per_app
    }

    /// Total number of flush events.
    pub fn total_flushes(&self) -> usize {
        self.apps.len() * self.flushes_per_app
    }

    /// The fleet as a streaming [`TraceSource`](ftio_trace::source::TraceSource):
    /// every flush event becomes one batch attributed to its application, in
    /// global time order — exactly the stream `ClusterEngine::replay` expects,
    /// which lets the engine benches sweep file-replay workloads without a
    /// file.
    pub fn to_source(&self) -> MemorySource {
        let batches: Vec<TraceBatch> = self
            .events()
            .into_iter()
            .map(|event| TraceBatch::requests(event.app, event.requests))
            .collect();
        let app = self.apps.first().map(|s| s.app).unwrap_or(AppId::new(0));
        MemorySource::from_batches(app, batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_respects_the_configuration() {
        let config = MultiAppConfig {
            apps: 12,
            flushes_per_app: 5,
            ranks_per_app: 3,
            period_range: (10.0, 20.0),
            ..Default::default()
        };
        let workload = MultiAppWorkload::generate(&config, 0xF1EE7);
        assert_eq!(workload.apps.len(), 12);
        assert_eq!(workload.total_flushes(), 60);
        for stream in &workload.apps {
            assert!(stream.period >= 10.0 && stream.period < 20.0);
            assert!(stream.offset >= 0.0 && stream.offset < stream.period);
            assert_eq!(workload.truth(stream.app), Some(stream.period));
        }
        assert_eq!(workload.truth(AppId::new(999)), None);
    }

    #[test]
    fn flushes_are_periodic_and_volume_exact() {
        let config = MultiAppConfig::default();
        let workload = MultiAppWorkload::generate(&config, 42);
        let stream = &workload.apps[0];
        let (first, first_now) = stream.flush(0);
        let (second, second_now) = stream.flush(1);
        assert_eq!(first.len(), config.ranks_per_app);
        assert!((second_now - first_now - stream.period).abs() < 1e-9);
        let volume: u64 = first.iter().map(|r| r.bytes).sum();
        let per_rank = config.bytes_per_burst / config.ranks_per_app as u64;
        assert_eq!(volume, per_rank * config.ranks_per_app as u64);
        assert!(first.iter().all(|r| r.is_valid()));
        assert!(second[0].start > first[0].end - 1e-9);
    }

    #[test]
    fn events_are_globally_time_ordered() {
        let workload = MultiAppWorkload::generate(&MultiAppConfig::default(), 7);
        let events = workload.events();
        assert_eq!(events.len(), workload.total_flushes());
        for pair in events.windows(2) {
            assert!(pair[1].now >= pair[0].now);
        }
        // Every app appears exactly flushes_per_app times.
        for stream in &workload.apps {
            let count = events.iter().filter(|e| e.app == stream.app).count();
            assert_eq!(count, 8);
        }
    }

    #[test]
    fn to_source_mirrors_the_event_schedule() {
        use ftio_trace::source::TraceSource;
        let workload = MultiAppWorkload::generate(&MultiAppConfig::default(), 99);
        let events = workload.events();
        let mut source = workload.to_source();
        let mut batch_count = 0usize;
        for event in &events {
            let batch = source
                .next_batch()
                .unwrap()
                .expect("one batch per flush event");
            batch_count += 1;
            assert_eq!(batch.app, event.app);
            assert_eq!(batch.end_time(), Some(event.now));
            assert_eq!(batch.into_requests(), event.requests);
        }
        assert!(source.next_batch().unwrap().is_none());
        assert_eq!(batch_count, workload.total_flushes());
    }

    #[test]
    fn same_seed_same_fleet_different_seed_different_fleet() {
        let config = MultiAppConfig::default();
        let a = MultiAppWorkload::generate(&config, 1);
        let b = MultiAppWorkload::generate(&config, 1);
        let c = MultiAppWorkload::generate(&config, 2);
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.period, y.period);
            assert_eq!(x.offset, y.offset);
        }
        assert!(a
            .apps
            .iter()
            .zip(&c.apps)
            .any(|(x, y)| x.period != y.period));
    }
}
