//! Small illustrative scenarios from the paper's motivation (Figs. 1 and 4),
//! plus the contention-flavoured adversarial generators of the evaluation
//! harness.
//!
//! Figure 1 shows why drawing I/O-phase boundaries is hard: several processes
//! write bursts whose requests interleave (is burst B one phase or two? where
//! does A end?), and Figure 4 overlays the substantial-I/O threshold
//! `V(T)/L(T)` on the same trace to derive `R_IO` and `B_IO`. This module
//! generates traces with exactly those ingredients:
//!
//! * a handful of large, multi-process bursts of uneven size and spacing,
//! * a single process writing a small log file at a much higher frequency
//!   (the "noise" activity whose period is *not* the one of interest),
//! * optional gaps inside a burst, so a naive inter-request-gap threshold
//!   would split it in two.
//!
//! The adversarial generators ([`bursty_interference`], [`heavy_tailed`],
//! [`multi_tenant`]) return full [`Scenario`]s — flush schedules with
//! machine-readable ground truth — and complete the period-evolution
//! families defined in [`crate::drift`].

use ftio_trace::{AppId, AppTrace, IoRequest, ScenarioTruth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::drift::{burst_requests, flushes_from_bursts, Scenario, ScenarioFamily, ScenarioFlush};

/// Configuration of the phase-boundary scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Number of processes writing the large bursts.
    pub processes: usize,
    /// Number of large bursts.
    pub bursts: usize,
    /// Period between burst starts in seconds.
    pub burst_period: f64,
    /// Duration of one burst in seconds.
    pub burst_duration: f64,
    /// Aggregate bandwidth during a burst in bytes/second.
    pub burst_bandwidth: f64,
    /// Whether every second burst is split in two by an internal gap
    /// (the "is B one or two phases?" question of Fig. 1).
    pub split_bursts: bool,
    /// Period of the small log writes in seconds (0 disables them).
    pub log_period: f64,
    /// Bytes per log write.
    pub log_bytes: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            processes: 10,
            bursts: 6,
            burst_period: 30.0,
            burst_duration: 8.0,
            burst_bandwidth: 16.0e9,
            split_bursts: true,
            log_period: 2.0,
            log_bytes: 4_096,
        }
    }
}

/// Generates the Fig. 1 / Fig. 4 style trace.
pub fn generate(config: &ScenarioConfig) -> AppTrace {
    let mut trace = AppTrace::named("phase-boundary-scenario", config.processes + 1);
    let bytes_per_process_burst =
        (config.burst_bandwidth * config.burst_duration / config.processes.max(1) as f64) as u64;

    let mut t = 5.0;
    for b in 0..config.bursts {
        if config.split_bursts && b % 2 == 1 {
            // Split the burst in two halves separated by a short gap.
            let half = config.burst_duration / 2.0;
            let gap = config.burst_duration * 0.25;
            for p in 0..config.processes {
                trace.push(IoRequest::write(
                    p,
                    t,
                    t + half,
                    bytes_per_process_burst / 2,
                ));
                trace.push(IoRequest::write(
                    p,
                    t + half + gap,
                    t + config.burst_duration + gap,
                    bytes_per_process_burst / 2,
                ));
            }
        } else {
            // One contiguous burst, but each process issues two back-to-back
            // requests (the "sequence of two 512 MB write requests" of §I).
            let half = config.burst_duration / 2.0;
            for p in 0..config.processes {
                trace.push(IoRequest::write(
                    p,
                    t,
                    t + half,
                    bytes_per_process_burst / 2,
                ));
                trace.push(IoRequest::write(
                    p,
                    t + half,
                    t + config.burst_duration,
                    bytes_per_process_burst / 2,
                ));
            }
        }
        t += config.burst_period;
    }

    // The low-volume periodic log writer (one extra process).
    if config.log_period > 0.0 {
        let log_rank = config.processes;
        let end = trace.end_time();
        let mut lt = 1.0;
        while lt < end {
            trace.push(IoRequest::write(log_rank, lt, lt + 0.05, config.log_bytes));
            lt += config.log_period;
        }
    }

    trace
}

/// Configuration of the long-history online workload (the
/// `online_tick_vs_history` benchmark): a strictly periodic application whose
/// *request density* — how many ranks write each burst — scales the ingested
/// history length, while the covered time span (and therefore the discretised
/// signal and its FFT window) stays fixed. That isolates how prediction-tick
/// cost scales with the number of collected requests.
#[derive(Clone, Copy, Debug)]
pub struct LongHistoryConfig {
    /// Number of bursts in the warm-up history.
    pub bursts: usize,
    /// Period between burst starts in seconds.
    pub period: f64,
    /// Duration of one burst in seconds.
    pub burst_duration: f64,
    /// Ranks writing each burst — the history-density knob.
    pub ranks: usize,
    /// Aggregate bytes transferred per burst (split evenly across ranks).
    pub bytes_per_burst: u64,
}

impl Default for LongHistoryConfig {
    fn default() -> Self {
        LongHistoryConfig {
            bursts: 200,
            period: 10.0,
            burst_duration: 2.0,
            ranks: 8,
            bytes_per_burst: 2_000_000_000,
        }
    }
}

impl LongHistoryConfig {
    /// Covered time span `[0, bursts · period)` in seconds.
    pub fn span(&self) -> f64 {
        self.bursts as f64 * self.period
    }

    /// Total requests the warm-up history holds.
    pub fn total_requests(&self) -> usize {
        self.bursts * self.ranks.max(1)
    }
}

/// The requests of burst `index` (starting at `index · period`).
pub fn long_history_burst(config: &LongHistoryConfig, index: usize) -> Vec<IoRequest> {
    let ranks = config.ranks.max(1);
    let start = index as f64 * config.period;
    let per_rank = config.bytes_per_burst / ranks as u64;
    (0..ranks)
        .map(|rank| IoRequest::write(rank, start, start + config.burst_duration, per_rank))
        .collect()
}

/// The full warm-up history: `bursts` bursts of `ranks` requests each, in
/// time order.
pub fn long_history_requests(config: &LongHistoryConfig) -> Vec<IoRequest> {
    (0..config.bursts)
        .flat_map(|index| long_history_burst(config, index))
        .collect()
}

/// Configuration of the [`bursty_interference`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct InterferenceConfig {
    /// Period of the writer under evaluation, seconds.
    pub period: f64,
    /// Bursts of the writer under evaluation.
    pub bursts: usize,
    /// Ranks writing each periodic burst.
    pub ranks: usize,
    /// Duration of a periodic burst, seconds.
    pub burst_duration: f64,
    /// Aggregate bytes per periodic burst.
    pub bytes_per_burst: u64,
    /// Mean gap between interference bursts as a fraction of `period`.
    /// The default (0.37) is deliberately non-harmonic: the interferer's
    /// energy lands between the writer's spectral lines instead of
    /// reinforcing them.
    pub interference_gap_fraction: f64,
    /// Uniform jitter applied to each interference gap (fraction of the
    /// mean gap).
    pub interference_jitter: f64,
    /// Bytes per interference burst, as a fraction of `bytes_per_burst`.
    pub interference_volume_fraction: f64,
    /// Duration of one interference burst, seconds.
    pub interference_duration: f64,
}

impl Default for InterferenceConfig {
    fn default() -> Self {
        InterferenceConfig {
            period: 10.0,
            bursts: 30,
            ranks: 4,
            burst_duration: 2.0,
            bytes_per_burst: 2_000_000_000,
            interference_gap_fraction: 0.37,
            interference_jitter: 0.3,
            interference_volume_fraction: 0.5,
            interference_duration: 1.0,
        }
    }
}

/// A periodic writer sharing the measured bandwidth signal with a bursty,
/// jittered, non-harmonic interferer (a competing job on the same file
/// system, recorded under the same application because the facility monitor
/// cannot attribute server-side bandwidth). The ground truth is the periodic
/// writer's constant period; the interference is pollution the detector must
/// see through.
pub fn bursty_interference(config: &InterferenceConfig, seed: u64) -> Scenario {
    let app = AppId::from_name("bursty-interference");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1f7e_4fe5);
    let span = (config.bursts.max(1) - 1) as f64 * config.period + config.burst_duration;

    // Interference bursts across the whole run, on ranks above the writer's.
    let mean_gap = (config.period * config.interference_gap_fraction).max(1e-3);
    let interference_bytes =
        ((config.bytes_per_burst as f64 * config.interference_volume_fraction) as u64).max(1);
    let noise_rank = config.ranks + 100;
    let mut interference: Vec<IoRequest> = Vec::new();
    let mut t = rng.gen_range(0.0..mean_gap);
    while t + config.interference_duration < span {
        interference.push(IoRequest::write(
            noise_rank,
            t,
            t + config.interference_duration,
            interference_bytes,
        ));
        let jitter = 1.0 + rng.gen_range(-config.interference_jitter..config.interference_jitter);
        t += mean_gap * jitter;
    }

    // One flush per periodic burst; each flush also carries the interference
    // that completed since the previous flush, so the flush time stays the
    // periodic burst end (interference never outlives the burst it rides in).
    let mut flushes = Vec::new();
    let mut taken = 0usize;
    for i in 0..config.bursts {
        let start = i as f64 * config.period;
        let flush_end = start + config.burst_duration;
        let mut requests = burst_requests(
            config.ranks,
            start,
            config.burst_duration,
            config.bytes_per_burst,
        );
        while taken < interference.len() && interference[taken].end <= flush_end {
            requests.push(interference[taken]);
            taken += 1;
        }
        flushes.push(ScenarioFlush {
            app,
            requests,
            now: flush_end,
        });
    }

    let truth = ScenarioTruth::constant(0.0, span.max(config.period), config.period);
    Scenario {
        name: ScenarioFamily::BurstyInterference.as_str().to_string(),
        family: ScenarioFamily::BurstyInterference,
        flushes,
        truths: vec![(app, truth)],
    }
}

/// Configuration of the [`heavy_tailed`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct TailConfig {
    /// Period of the writer, seconds.
    pub period: f64,
    /// Number of bursts.
    pub bursts: usize,
    /// Ranks writing each burst.
    pub ranks: usize,
    /// Pareto scale `x_m`: the minimum per-rank request size, bytes.
    pub scale_bytes: u64,
    /// Pareto shape `alpha` (smaller = heavier tail; 1.5 has infinite
    /// variance).
    pub alpha: f64,
    /// Cap on a single sampled request, bytes (keeps one tail draw from
    /// dwarfing the rest of the run entirely).
    pub max_bytes: u64,
    /// Duration of a median-size request, seconds; larger requests take
    /// proportionally longer, up to `max_duration`.
    pub base_duration: f64,
    /// Cap on a single request's duration, seconds.
    pub max_duration: f64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            period: 10.0,
            bursts: 30,
            ranks: 4,
            scale_bytes: 100_000_000,
            alpha: 1.5,
            max_bytes: 20_000_000_000,
            base_duration: 1.0,
            max_duration: 6.0,
        }
    }
}

/// A periodic writer whose per-rank request sizes follow a Pareto
/// distribution (inverse-CDF sampled: `x_m / (1-u)^(1/alpha)`), so burst
/// volume — and with it the discretised bandwidth amplitude — varies by
/// orders of magnitude between periods while the true period stays constant.
/// Large requests also take proportionally longer, smearing burst energy
/// over time.
pub fn heavy_tailed(config: &TailConfig, seed: u64) -> Scenario {
    let app = AppId::from_name("heavy-tailed");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a11_ed00);
    let mut bursts = Vec::new();
    for i in 0..config.bursts {
        let start = i as f64 * config.period;
        let requests: Vec<IoRequest> = (0..config.ranks.max(1))
            .map(|rank| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let raw = config.scale_bytes as f64 / (1.0 - u).powf(1.0 / config.alpha);
                let bytes = (raw as u64).clamp(config.scale_bytes, config.max_bytes);
                let stretch = bytes as f64 / config.scale_bytes as f64;
                let duration = (config.base_duration * stretch.sqrt()).min(config.max_duration);
                IoRequest::write(rank, start, start + duration, bytes)
            })
            .collect();
        bursts.push((start, requests));
    }
    let span = (config.bursts.max(1) - 1) as f64 * config.period + config.max_duration;
    let truth = ScenarioTruth::constant(0.0, span.max(config.period), config.period);
    Scenario {
        name: ScenarioFamily::HeavyTailed.as_str().to_string(),
        family: ScenarioFamily::HeavyTailed,
        flushes: flushes_from_bursts(app, bursts),
        truths: vec![(app, truth)],
    }
}

/// Configuration of the [`multi_tenant`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct MultiTenantConfig {
    /// Periods of the tenants sharing the file system, seconds. Chosen
    /// pairwise non-harmonic by default so their spectra interleave.
    pub periods: [f64; 3],
    /// Covered time span, seconds (each tenant writes `span / period`
    /// bursts).
    pub span: f64,
    /// Ranks per tenant burst.
    pub ranks: usize,
    /// Nominal burst duration, seconds.
    pub burst_duration: f64,
    /// Aggregate bytes per burst.
    pub bytes_per_burst: u64,
    /// How much each concurrently bursting tenant stretches a burst
    /// (bandwidth sharing on the modeled file system): duration multiplier
    /// is `1 + contention_stretch · overlapping_tenants`.
    pub contention_stretch: f64,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        MultiTenantConfig {
            periods: [9.0, 12.5, 17.0],
            span: 260.0,
            ranks: 4,
            burst_duration: 2.0,
            bytes_per_burst: 1_500_000_000,
            contention_stretch: 0.5,
        }
    }
}

/// Several applications (distinct [`AppId`]s) sharing one modeled file
/// system. Each tenant writes at its own constant period, but whenever
/// bursts overlap the shared bandwidth stretches them — so every tenant's
/// signal is deformed by the others' schedules. The truth records each
/// tenant's own period; the evaluation runs one predictor per tenant over
/// the interleaved flush schedule, exactly as the cluster engine would.
pub fn multi_tenant(config: &MultiTenantConfig, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3e4a_47e5);

    // Nominal burst starts per tenant.
    let starts: Vec<Vec<f64>> = config
        .periods
        .iter()
        .map(|&period| {
            let mut v = Vec::new();
            let mut t = rng.gen_range(0.0..period.min(config.span));
            while t + config.burst_duration < config.span {
                v.push(t);
                t += period;
            }
            v
        })
        .collect();

    // Contention: a burst overlapping `k` other tenants' nominal bursts is
    // stretched by `1 + contention_stretch · k`.
    let overlaps = |tenant: usize, start: f64| -> usize {
        starts
            .iter()
            .enumerate()
            .filter(|&(other, _)| other != tenant)
            .filter(|(_, other_starts)| {
                other_starts.iter().any(|&s| {
                    s < start + config.burst_duration && start < s + config.burst_duration
                })
            })
            .count()
    };

    let mut flushes: Vec<ScenarioFlush> = Vec::new();
    let mut truths = Vec::new();
    for (tenant, tenant_starts) in starts.iter().enumerate() {
        let app = AppId::from_name(&format!("tenant-{tenant}"));
        let mut max_end = 0.0f64;
        for &start in tenant_starts {
            let stretch = 1.0 + config.contention_stretch * overlaps(tenant, start) as f64;
            let duration = config.burst_duration * stretch;
            let requests = burst_requests(config.ranks, start, duration, config.bytes_per_burst);
            max_end = max_end.max(start + duration);
            flushes.push(ScenarioFlush {
                app,
                requests,
                now: start + duration,
            });
        }
        let period = config.periods[tenant];
        let first = tenant_starts.first().copied().unwrap_or(0.0);
        truths.push((
            app,
            ScenarioTruth::constant(first, max_end.max(first + period), period),
        ));
    }
    flushes.sort_by(|a, b| a.now.partial_cmp(&b.now).expect("NaN flush time"));

    Scenario {
        name: ScenarioFamily::MultiTenant.as_str().to_string(),
        family: ScenarioFamily::MultiTenant,
        flushes,
        truths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::BandwidthTimeline;

    #[test]
    fn long_history_density_scales_requests_not_the_signal() {
        let narrow = LongHistoryConfig {
            ranks: 4,
            ..Default::default()
        };
        let dense = LongHistoryConfig {
            ranks: 32,
            ..Default::default()
        };
        assert_eq!(dense.total_requests(), 8 * narrow.total_requests());
        assert_eq!(narrow.span(), dense.span());
        let a = long_history_requests(&narrow);
        let b = long_history_requests(&dense);
        assert_eq!(a.len(), narrow.total_requests());
        assert_eq!(b.len(), dense.total_requests());
        // Same aggregate signal: both histories transfer the same volume over
        // the same timeline.
        let vol = |requests: &[IoRequest]| requests.iter().map(|r| r.bytes).sum::<u64>();
        assert_eq!(vol(&a), vol(&b));
        let tl_a = BandwidthTimeline::from_requests(&a);
        let tl_b = BandwidthTimeline::from_requests(&b);
        assert!((tl_a.total_volume() - tl_b.total_volume()).abs() < 1e-3);
        assert_eq!(tl_a.start(), tl_b.start());
        assert_eq!(tl_a.end(), tl_b.end());
    }

    #[test]
    fn default_scenario_has_bursts_and_log_writes() {
        let config = ScenarioConfig::default();
        let trace = generate(&config);
        let log_requests = trace
            .requests()
            .iter()
            .filter(|r| r.rank == config.processes)
            .count();
        let burst_requests = trace.len() - log_requests;
        assert_eq!(burst_requests, 6 * 10 * 2);
        assert!(log_requests > 50, "log writer should fire often");
    }

    #[test]
    fn burst_volume_dwarfs_log_volume() {
        let config = ScenarioConfig::default();
        let trace = generate(&config);
        let log_volume: u64 = trace
            .requests()
            .iter()
            .filter(|r| r.rank == config.processes)
            .map(|r| r.bytes)
            .sum();
        let burst_volume = trace.total_volume() - log_volume;
        assert!(burst_volume > log_volume * 1000);
    }

    #[test]
    fn bursts_reach_the_configured_bandwidth() {
        let config = ScenarioConfig {
            split_bursts: false,
            log_period: 0.0,
            ..Default::default()
        };
        let trace = generate(&config);
        let tl = BandwidthTimeline::from_trace(&trace);
        // Middle of the first burst.
        let bw = tl.bandwidth_at(7.0);
        assert!((bw - config.burst_bandwidth).abs() / config.burst_bandwidth < 0.01);
        // Middle of the first gap.
        assert_eq!(tl.bandwidth_at(20.0), 0.0);
    }

    #[test]
    fn split_bursts_have_an_internal_gap() {
        let config = ScenarioConfig {
            log_period: 0.0,
            ..Default::default()
        };
        let trace = generate(&config);
        let tl = BandwidthTimeline::from_trace(&trace);
        // Second burst starts at 35 s and is split: its two halves are
        // separated by a 2 s gap starting at 39 s.
        assert!(tl.bandwidth_at(37.0) > 0.0);
        assert_eq!(tl.bandwidth_at(40.0), 0.0);
        assert!(tl.bandwidth_at(42.0) > 0.0);
    }

    #[test]
    fn disabled_log_writer_leaves_only_burst_ranks() {
        let config = ScenarioConfig {
            log_period: 0.0,
            ..Default::default()
        };
        let trace = generate(&config);
        assert!(trace.active_ranks().iter().all(|&r| r < config.processes));
    }

    #[test]
    fn interference_rides_inside_periodic_flushes() {
        let config = InterferenceConfig::default();
        let scenario = bursty_interference(&config, 7);
        assert_eq!(scenario.flushes.len(), config.bursts);
        let noise_rank = config.ranks + 100;
        let noise: usize = scenario
            .flushes
            .iter()
            .flat_map(|f| f.requests.iter())
            .filter(|r| r.rank == noise_rank)
            .count();
        // The interferer fires ~1/0.37 ≈ 2.7× per period.
        assert!(noise > config.bursts, "only {noise} interference bursts");
        // Flush times are exactly the periodic burst ends despite the noise.
        for (i, flush) in scenario.flushes.iter().enumerate() {
            let expected = i as f64 * config.period + config.burst_duration;
            assert_eq!(flush.now, expected, "flush {i}");
        }
        let truth = &scenario.truths[0].1;
        assert_eq!(truth.period_at(50.0), Some(config.period));
    }

    #[test]
    fn heavy_tail_draws_span_orders_of_magnitude() {
        let config = TailConfig::default();
        let scenario = heavy_tailed(&config, 11);
        let sizes: Vec<u64> = scenario
            .flushes
            .iter()
            .flat_map(|f| f.requests.iter().map(|r| r.bytes))
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= config.scale_bytes);
        assert!(max <= config.max_bytes);
        assert!(max / min > 10, "tail too light: min {min}, max {max}");
        // Period stays exact regardless of the size chaos.
        for pair in scenario.flushes.windows(2) {
            let gap = pair[1].requests[0].start - pair[0].requests[0].start;
            assert!((gap - config.period).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_tenant_interleaves_apps_with_per_tenant_truth() {
        let config = MultiTenantConfig::default();
        let scenario = multi_tenant(&config, 3);
        let apps = scenario.apps();
        assert_eq!(apps.len(), 3);
        // Flushes are time-ordered and interleave tenants.
        for pair in scenario.flushes.windows(2) {
            assert!(pair[1].now >= pair[0].now);
        }
        let distinct: std::collections::HashSet<_> =
            scenario.flushes.iter().map(|f| f.app).collect();
        assert_eq!(distinct.len(), 3);
        // Each tenant keeps its own constant period in the truth.
        for (tenant, period) in config.periods.iter().enumerate() {
            let truth = scenario.truth(apps[tenant]).unwrap();
            let mid = (truth.start().unwrap() + truth.end().unwrap()) / 2.0;
            assert_eq!(truth.period_at(mid), Some(*period));
        }
        // Contention stretched at least one burst beyond its nominal length.
        let stretched = scenario.flushes.iter().any(|f| {
            f.requests
                .iter()
                .any(|r| r.end - r.start > config.burst_duration + 1e-9)
        });
        assert!(stretched, "no burst was ever stretched by contention");
    }

    #[test]
    fn adversarial_generators_are_deterministic_per_seed() {
        let a = bursty_interference(&InterferenceConfig::default(), 5);
        let b = bursty_interference(&InterferenceConfig::default(), 5);
        let c = bursty_interference(&InterferenceConfig::default(), 6);
        assert_eq!(a.total_requests(), b.total_requests());
        for (fa, fb) in a.flushes.iter().zip(&b.flushes) {
            assert_eq!(fa.requests, fb.requests);
        }
        let all_requests = |s: &Scenario| -> Vec<IoRequest> {
            s.flushes.iter().flat_map(|f| f.requests.clone()).collect()
        };
        assert_ne!(all_requests(&a), all_requests(&c), "seed must matter");
        let ht_a = heavy_tailed(&TailConfig::default(), 5);
        let ht_b = heavy_tailed(&TailConfig::default(), 5);
        for (fa, fb) in ht_a.flushes.iter().zip(&ht_b.flushes) {
            assert_eq!(fa.requests, fb.requests);
        }
    }
}
