//! Small illustrative scenarios from the paper's motivation (Figs. 1 and 4).
//!
//! Figure 1 shows why drawing I/O-phase boundaries is hard: several processes
//! write bursts whose requests interleave (is burst B one phase or two? where
//! does A end?), and Figure 4 overlays the substantial-I/O threshold
//! `V(T)/L(T)` on the same trace to derive `R_IO` and `B_IO`. This module
//! generates traces with exactly those ingredients:
//!
//! * a handful of large, multi-process bursts of uneven size and spacing,
//! * a single process writing a small log file at a much higher frequency
//!   (the "noise" activity whose period is *not* the one of interest),
//! * optional gaps inside a burst, so a naive inter-request-gap threshold
//!   would split it in two.

use ftio_trace::{AppTrace, IoRequest};

/// Configuration of the phase-boundary scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Number of processes writing the large bursts.
    pub processes: usize,
    /// Number of large bursts.
    pub bursts: usize,
    /// Period between burst starts in seconds.
    pub burst_period: f64,
    /// Duration of one burst in seconds.
    pub burst_duration: f64,
    /// Aggregate bandwidth during a burst in bytes/second.
    pub burst_bandwidth: f64,
    /// Whether every second burst is split in two by an internal gap
    /// (the "is B one or two phases?" question of Fig. 1).
    pub split_bursts: bool,
    /// Period of the small log writes in seconds (0 disables them).
    pub log_period: f64,
    /// Bytes per log write.
    pub log_bytes: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            processes: 10,
            bursts: 6,
            burst_period: 30.0,
            burst_duration: 8.0,
            burst_bandwidth: 16.0e9,
            split_bursts: true,
            log_period: 2.0,
            log_bytes: 4_096,
        }
    }
}

/// Generates the Fig. 1 / Fig. 4 style trace.
pub fn generate(config: &ScenarioConfig) -> AppTrace {
    let mut trace = AppTrace::named("phase-boundary-scenario", config.processes + 1);
    let bytes_per_process_burst =
        (config.burst_bandwidth * config.burst_duration / config.processes.max(1) as f64) as u64;

    let mut t = 5.0;
    for b in 0..config.bursts {
        if config.split_bursts && b % 2 == 1 {
            // Split the burst in two halves separated by a short gap.
            let half = config.burst_duration / 2.0;
            let gap = config.burst_duration * 0.25;
            for p in 0..config.processes {
                trace.push(IoRequest::write(
                    p,
                    t,
                    t + half,
                    bytes_per_process_burst / 2,
                ));
                trace.push(IoRequest::write(
                    p,
                    t + half + gap,
                    t + config.burst_duration + gap,
                    bytes_per_process_burst / 2,
                ));
            }
        } else {
            // One contiguous burst, but each process issues two back-to-back
            // requests (the "sequence of two 512 MB write requests" of §I).
            let half = config.burst_duration / 2.0;
            for p in 0..config.processes {
                trace.push(IoRequest::write(
                    p,
                    t,
                    t + half,
                    bytes_per_process_burst / 2,
                ));
                trace.push(IoRequest::write(
                    p,
                    t + half,
                    t + config.burst_duration,
                    bytes_per_process_burst / 2,
                ));
            }
        }
        t += config.burst_period;
    }

    // The low-volume periodic log writer (one extra process).
    if config.log_period > 0.0 {
        let log_rank = config.processes;
        let end = trace.end_time();
        let mut lt = 1.0;
        while lt < end {
            trace.push(IoRequest::write(log_rank, lt, lt + 0.05, config.log_bytes));
            lt += config.log_period;
        }
    }

    trace
}

/// Configuration of the long-history online workload (the
/// `online_tick_vs_history` benchmark): a strictly periodic application whose
/// *request density* — how many ranks write each burst — scales the ingested
/// history length, while the covered time span (and therefore the discretised
/// signal and its FFT window) stays fixed. That isolates how prediction-tick
/// cost scales with the number of collected requests.
#[derive(Clone, Copy, Debug)]
pub struct LongHistoryConfig {
    /// Number of bursts in the warm-up history.
    pub bursts: usize,
    /// Period between burst starts in seconds.
    pub period: f64,
    /// Duration of one burst in seconds.
    pub burst_duration: f64,
    /// Ranks writing each burst — the history-density knob.
    pub ranks: usize,
    /// Aggregate bytes transferred per burst (split evenly across ranks).
    pub bytes_per_burst: u64,
}

impl Default for LongHistoryConfig {
    fn default() -> Self {
        LongHistoryConfig {
            bursts: 200,
            period: 10.0,
            burst_duration: 2.0,
            ranks: 8,
            bytes_per_burst: 2_000_000_000,
        }
    }
}

impl LongHistoryConfig {
    /// Covered time span `[0, bursts · period)` in seconds.
    pub fn span(&self) -> f64 {
        self.bursts as f64 * self.period
    }

    /// Total requests the warm-up history holds.
    pub fn total_requests(&self) -> usize {
        self.bursts * self.ranks.max(1)
    }
}

/// The requests of burst `index` (starting at `index · period`).
pub fn long_history_burst(config: &LongHistoryConfig, index: usize) -> Vec<IoRequest> {
    let ranks = config.ranks.max(1);
    let start = index as f64 * config.period;
    let per_rank = config.bytes_per_burst / ranks as u64;
    (0..ranks)
        .map(|rank| IoRequest::write(rank, start, start + config.burst_duration, per_rank))
        .collect()
}

/// The full warm-up history: `bursts` bursts of `ranks` requests each, in
/// time order.
pub fn long_history_requests(config: &LongHistoryConfig) -> Vec<IoRequest> {
    (0..config.bursts)
        .flat_map(|index| long_history_burst(config, index))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftio_trace::BandwidthTimeline;

    #[test]
    fn long_history_density_scales_requests_not_the_signal() {
        let narrow = LongHistoryConfig {
            ranks: 4,
            ..Default::default()
        };
        let dense = LongHistoryConfig {
            ranks: 32,
            ..Default::default()
        };
        assert_eq!(dense.total_requests(), 8 * narrow.total_requests());
        assert_eq!(narrow.span(), dense.span());
        let a = long_history_requests(&narrow);
        let b = long_history_requests(&dense);
        assert_eq!(a.len(), narrow.total_requests());
        assert_eq!(b.len(), dense.total_requests());
        // Same aggregate signal: both histories transfer the same volume over
        // the same timeline.
        let vol = |requests: &[IoRequest]| requests.iter().map(|r| r.bytes).sum::<u64>();
        assert_eq!(vol(&a), vol(&b));
        let tl_a = BandwidthTimeline::from_requests(&a);
        let tl_b = BandwidthTimeline::from_requests(&b);
        assert!((tl_a.total_volume() - tl_b.total_volume()).abs() < 1e-3);
        assert_eq!(tl_a.start(), tl_b.start());
        assert_eq!(tl_a.end(), tl_b.end());
    }

    #[test]
    fn default_scenario_has_bursts_and_log_writes() {
        let config = ScenarioConfig::default();
        let trace = generate(&config);
        let log_requests = trace
            .requests()
            .iter()
            .filter(|r| r.rank == config.processes)
            .count();
        let burst_requests = trace.len() - log_requests;
        assert_eq!(burst_requests, 6 * 10 * 2);
        assert!(log_requests > 50, "log writer should fire often");
    }

    #[test]
    fn burst_volume_dwarfs_log_volume() {
        let config = ScenarioConfig::default();
        let trace = generate(&config);
        let log_volume: u64 = trace
            .requests()
            .iter()
            .filter(|r| r.rank == config.processes)
            .map(|r| r.bytes)
            .sum();
        let burst_volume = trace.total_volume() - log_volume;
        assert!(burst_volume > log_volume * 1000);
    }

    #[test]
    fn bursts_reach_the_configured_bandwidth() {
        let config = ScenarioConfig {
            split_bursts: false,
            log_period: 0.0,
            ..Default::default()
        };
        let trace = generate(&config);
        let tl = BandwidthTimeline::from_trace(&trace);
        // Middle of the first burst.
        let bw = tl.bandwidth_at(7.0);
        assert!((bw - config.burst_bandwidth).abs() / config.burst_bandwidth < 0.01);
        // Middle of the first gap.
        assert_eq!(tl.bandwidth_at(20.0), 0.0);
    }

    #[test]
    fn split_bursts_have_an_internal_gap() {
        let config = ScenarioConfig {
            log_period: 0.0,
            ..Default::default()
        };
        let trace = generate(&config);
        let tl = BandwidthTimeline::from_trace(&trace);
        // Second burst starts at 35 s and is split: its two halves are
        // separated by a 2 s gap starting at 39 s.
        assert!(tl.bandwidth_at(37.0) > 0.0);
        assert_eq!(tl.bandwidth_at(40.0), 0.0);
        assert!(tl.bandwidth_at(42.0) > 0.0);
    }

    #[test]
    fn disabled_log_writer_leaves_only_burst_ranks() {
        let config = ScenarioConfig {
            log_period: 0.0,
            ..Default::default()
        };
        let trace = generate(&config);
        assert!(trace.active_ranks().iter().all(|&r| r < config.processes));
    }
}
