//! Error types for trace encoding, decoding and collection.

use std::fmt;

/// Errors produced while parsing or encoding trace files.
#[derive(Debug)]
pub enum TraceError {
    /// The input ended unexpectedly or a record was truncated.
    UnexpectedEof,
    /// A line or record did not match the expected format.
    Malformed {
        /// Human-readable description of what went wrong.
        reason: String,
        /// Line (text formats) or byte offset (MessagePack) of the problem.
        position: usize,
        /// The offending input, truncated for display (empty when unknown).
        snippet: String,
    },
    /// A field carried a value outside its valid domain.
    InvalidValue {
        /// The offending field name.
        field: &'static str,
        /// Description of the invalid value.
        reason: String,
    },
    /// An underlying I/O error while reading or writing a trace file.
    Io(std::io::Error),
}

/// Maximum length of an error snippet before truncation.
const SNIPPET_MAX: usize = 48;

/// Truncates an offending input line for inclusion in an error message.
pub fn snippet_of(text: &str) -> String {
    let trimmed = text.trim();
    if trimmed.chars().count() <= SNIPPET_MAX {
        trimmed.to_string()
    } else {
        let head: String = trimmed.chars().take(SNIPPET_MAX).collect();
        format!("{head}…")
    }
}

/// Renders the bytes around a binary-format error position as a hex snippet.
pub fn snippet_of_bytes(data: &[u8], position: usize) -> String {
    let start = position.min(data.len()).saturating_sub(4);
    let end = (position + 8).min(data.len());
    let hex: Vec<String> = data[start..end]
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    hex.join(" ")
}

impl TraceError {
    /// Convenience constructor for [`TraceError::Malformed`].
    pub fn malformed(reason: impl Into<String>, position: usize) -> Self {
        TraceError::Malformed {
            reason: reason.into(),
            position,
            snippet: String::new(),
        }
    }

    /// [`TraceError::Malformed`] carrying the offending input snippet.
    pub fn malformed_snippet(
        reason: impl Into<String>,
        position: usize,
        snippet: impl Into<String>,
    ) -> Self {
        TraceError::Malformed {
            reason: reason.into(),
            position,
            snippet: snippet.into(),
        }
    }

    /// Convenience constructor for [`TraceError::InvalidValue`].
    pub fn invalid(field: &'static str, reason: impl Into<String>) -> Self {
        TraceError::InvalidValue {
            field,
            reason: reason.into(),
        }
    }

    /// The [`std::io::ErrorKind`] behind this error, when it wraps an I/O
    /// error. The serving layer uses this to tell a socket read timeout
    /// (`WouldBlock`/`TimedOut`, which it handles by checking deadlines)
    /// from a genuine transport failure.
    pub fn io_kind(&self) -> Option<std::io::ErrorKind> {
        match self {
            TraceError::Io(e) => Some(e.kind()),
            _ => None,
        }
    }

    /// Enriches an error raised while decoding one record with the position
    /// (line number or byte offset) and the offending input. Used by the
    /// streaming readers so that *every* decode error names where it happened:
    /// an `InvalidValue` or `UnexpectedEof` bubbling out of a field decoder
    /// becomes a positioned `Malformed`, and a `Malformed` without a snippet
    /// gains one. I/O errors and already-contextualised errors are unchanged.
    pub fn with_context(self, position: usize, snippet: &str) -> Self {
        match self {
            TraceError::UnexpectedEof => TraceError::Malformed {
                reason: "record truncated (unexpected end of input)".into(),
                position,
                snippet: snippet_of(snippet),
            },
            TraceError::InvalidValue { field, reason } => TraceError::Malformed {
                reason: format!("invalid value for field `{field}`: {reason}"),
                position,
                snippet: snippet_of(snippet),
            },
            TraceError::Malformed {
                reason,
                position: pos,
                snippet: old,
            } => TraceError::Malformed {
                reason,
                position: if pos == 0 { position } else { pos },
                snippet: if old.is_empty() {
                    snippet_of(snippet)
                } else {
                    old
                },
            },
            other => other,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnexpectedEof => write!(f, "unexpected end of trace data"),
            TraceError::Malformed {
                reason,
                position,
                snippet,
            } => {
                write!(f, "malformed trace record at position {position}: {reason}")?;
                if !snippet.is_empty() {
                    write!(f, " (near `{snippet}`)")?;
                }
                Ok(())
            }
            TraceError::InvalidValue { field, reason } => {
                write!(f, "invalid value for field `{field}`: {reason}")
            }
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Shorthand result type used across the trace crate.
pub type TraceResult<T> = Result<T, TraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::malformed("missing field", 12);
        assert!(e.to_string().contains("position 12"));
        assert!(e.to_string().contains("missing field"));
        let e = TraceError::invalid("bytes", "negative");
        assert!(e.to_string().contains("bytes"));
        let e = TraceError::UnexpectedEof;
        assert!(e.to_string().contains("unexpected end"));
    }

    #[test]
    fn snippets_are_attached_and_truncated() {
        let e = TraceError::malformed_snippet("bad value", 7, "xyzzy");
        assert!(e.to_string().contains("near `xyzzy`"));
        assert!(e.to_string().contains("position 7"));
        let long = "a".repeat(200);
        let s = snippet_of(&long);
        assert!(s.chars().count() <= 49);
        assert!(s.ends_with('…'));
        assert_eq!(snippet_of("  short  "), "short");
        assert_eq!(snippet_of_bytes(&[0xcb, 0x3f, 0xf0], 1), "cb 3f f0");
    }

    #[test]
    fn with_context_positions_every_error_kind() {
        let e = TraceError::UnexpectedEof.with_context(12, "the line");
        assert!(e.to_string().contains("position 12"));
        assert!(e.to_string().contains("truncated"));
        assert!(e.to_string().contains("the line"));

        let e = TraceError::invalid("bytes", "negative").with_context(3, "{\"bytes\":-1}");
        assert!(e.to_string().contains("position 3"));
        assert!(e.to_string().contains("bytes"));

        // An already-positioned error keeps its position, gains the snippet.
        let e = TraceError::malformed("bad", 9).with_context(3, "ctx");
        assert!(e.to_string().contains("position 9"));
        assert!(e.to_string().contains("ctx"));

        // I/O errors pass through untouched.
        let io: TraceError = std::io::Error::other("disk").into();
        assert!(io.with_context(1, "x").to_string().contains("disk"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TraceError = io.into();
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&TraceError::UnexpectedEof).is_none());
    }
}
