//! Error types for trace encoding, decoding and collection.

use std::fmt;

/// Errors produced while parsing or encoding trace files.
#[derive(Debug)]
pub enum TraceError {
    /// The input ended unexpectedly or a record was truncated.
    UnexpectedEof,
    /// A line or record did not match the expected format.
    Malformed {
        /// Human-readable description of what went wrong.
        reason: String,
        /// Line (JSONL/Recorder) or byte offset (MessagePack) of the problem.
        position: usize,
    },
    /// A field carried a value outside its valid domain.
    InvalidValue {
        /// The offending field name.
        field: &'static str,
        /// Description of the invalid value.
        reason: String,
    },
    /// An underlying I/O error while reading or writing a trace file.
    Io(std::io::Error),
}

impl TraceError {
    /// Convenience constructor for [`TraceError::Malformed`].
    pub fn malformed(reason: impl Into<String>, position: usize) -> Self {
        TraceError::Malformed {
            reason: reason.into(),
            position,
        }
    }

    /// Convenience constructor for [`TraceError::InvalidValue`].
    pub fn invalid(field: &'static str, reason: impl Into<String>) -> Self {
        TraceError::InvalidValue {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnexpectedEof => write!(f, "unexpected end of trace data"),
            TraceError::Malformed { reason, position } => {
                write!(f, "malformed trace record at position {position}: {reason}")
            }
            TraceError::InvalidValue { field, reason } => {
                write!(f, "invalid value for field `{field}`: {reason}")
            }
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Shorthand result type used across the trace crate.
pub type TraceResult<T> = Result<T, TraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::malformed("missing field", 12);
        assert!(e.to_string().contains("position 12"));
        assert!(e.to_string().contains("missing field"));
        let e = TraceError::invalid("bytes", "negative");
        assert!(e.to_string().contains("bytes"));
        let e = TraceError::UnexpectedEof;
        assert!(e.to_string().contains("unexpected end"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TraceError = io.into();
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&TraceError::UnexpectedEof).is_none());
    }
}
