//! The trace collector — the Rust analog of the TMIO tracing library.
//!
//! The paper distinguishes two modes (§II-A):
//!
//! * **Offline (detection)**: requests are buffered in memory and written out
//!   once at the end of the run (`MPI_Finalize` in the original tool).
//! * **Online (prediction)**: the application periodically calls a flush hook
//!   ("a single line is added to indicate when to flush the results"), which
//!   appends the newly collected requests to the trace sink, where they can be
//!   analysed while the application keeps running.
//!
//! The collector is thread-safe (ranks in the simulator record concurrently)
//! and keeps simple counters so the tracing-overhead experiment (paper §III-C,
//! Fig. 16) can charge a per-record and per-flush cost.

use std::sync::Mutex;

use crate::app_trace::{AppTrace, TraceMetadata};
use crate::jsonl;
use crate::msgpack;
use crate::request::IoRequest;

/// When the collector hands data to its sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushMode {
    /// Buffer everything, flush once at finalize (offline detection mode).
    Offline,
    /// Flush whenever the application asks for it (online prediction mode).
    Online,
}

/// On-disk encoding used when a flush serialises requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// JSON Lines, one request per line.
    JsonLines,
    /// MessagePack array of request arrays.
    MessagePack,
}

/// Counters describing the collector's activity, used by the overhead model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Number of requests recorded.
    pub recorded: usize,
    /// Number of flush operations performed.
    pub flushes: usize,
    /// Number of requests that have been flushed to the sink.
    pub flushed_requests: usize,
    /// Total bytes produced by serialisation across all flushes.
    pub serialized_bytes: usize,
}

/// A destination for flushed trace data.
///
/// The simulator uses [`MemorySink`]; a real deployment would write to a file.
pub trait TraceSink: Send {
    /// Receives one serialised chunk (one flush worth of requests).
    fn write_chunk(&mut self, chunk: &[u8]);
}

/// A sink that accumulates chunks in memory, useful for tests and simulation.
#[derive(Default)]
pub struct MemorySink {
    chunks: Vec<Vec<u8>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All chunks received so far.
    pub fn chunks(&self) -> &[Vec<u8>] {
        &self.chunks
    }

    /// Concatenation of all received chunks.
    pub fn concatenated(&self) -> Vec<u8> {
        self.chunks.concat()
    }
}

impl TraceSink for MemorySink {
    fn write_chunk(&mut self, chunk: &[u8]) {
        self.chunks.push(chunk.to_vec());
    }
}

struct CollectorState {
    pending: Vec<IoRequest>,
    all: Vec<IoRequest>,
    stats: CollectorStats,
}

/// Thread-safe request collector.
pub struct Collector {
    metadata: TraceMetadata,
    mode: FlushMode,
    format: TraceFormat,
    state: Mutex<CollectorState>,
}

impl Collector {
    /// Creates a collector for an application run.
    pub fn new(application: &str, num_ranks: usize, mode: FlushMode, format: TraceFormat) -> Self {
        Collector {
            metadata: TraceMetadata {
                application: application.to_string(),
                num_ranks,
                notes: String::new(),
            },
            mode,
            format,
            state: Mutex::new(CollectorState {
                pending: Vec::new(),
                all: Vec::new(),
                stats: CollectorStats::default(),
            }),
        }
    }

    /// The configured flush mode.
    pub fn mode(&self) -> FlushMode {
        self.mode
    }

    /// The configured serialisation format.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Records one request (called from the rank that issued it).
    pub fn record(&self, request: IoRequest) {
        if !request.is_valid() {
            return;
        }
        let mut state = self.state.lock().expect("collector mutex poisoned");
        state.pending.push(request);
        state.all.push(request);
        state.stats.recorded += 1;
    }

    /// Records a batch of requests.
    pub fn record_all<I: IntoIterator<Item = IoRequest>>(&self, requests: I) {
        let mut state = self.state.lock().expect("collector mutex poisoned");
        for request in requests {
            if request.is_valid() {
                state.pending.push(request);
                state.all.push(request);
                state.stats.recorded += 1;
            }
        }
    }

    /// Flushes pending requests to `sink`. In online mode this is the hook the
    /// application calls after each I/O phase; in offline mode it is called
    /// once by [`Collector::finalize`].
    ///
    /// Returns the number of requests flushed.
    pub fn flush(&self, sink: &mut dyn TraceSink) -> usize {
        let mut state = self.state.lock().expect("collector mutex poisoned");
        if state.pending.is_empty() {
            return 0;
        }
        let pending = std::mem::take(&mut state.pending);
        let chunk = match self.format {
            TraceFormat::JsonLines => jsonl::encode_requests(&pending).into_bytes(),
            TraceFormat::MessagePack => msgpack::encode_requests(&pending),
        };
        state.stats.flushes += 1;
        state.stats.flushed_requests += pending.len();
        state.stats.serialized_bytes += chunk.len();
        sink.write_chunk(&chunk);
        pending.len()
    }

    /// Finalizes the collection: flushes any remaining data (this is the
    /// `MPI_Finalize` hook of the offline mode) and returns the statistics.
    pub fn finalize(&self, sink: &mut dyn TraceSink) -> CollectorStats {
        self.flush(sink);
        self.state.lock().expect("collector mutex poisoned").stats
    }

    /// Activity statistics so far.
    pub fn stats(&self) -> CollectorStats {
        self.state.lock().expect("collector mutex poisoned").stats
    }

    /// Snapshot of everything recorded so far as an [`AppTrace`] — this is
    /// what the online analysis reads at each prediction point.
    pub fn snapshot(&self) -> AppTrace {
        let state = self.state.lock().expect("collector mutex poisoned");
        let mut trace = AppTrace::new(self.metadata.clone());
        trace.extend(state.all.iter().copied());
        trace
    }

    /// Number of requests recorded but not yet flushed.
    pub fn pending_count(&self) -> usize {
        self.state
            .lock()
            .expect("collector mutex poisoned")
            .pending
            .len()
    }
}

/// Parses a trace file produced by flushing in the given format back into
/// requests. For JSON Lines, chunks can simply be concatenated; for
/// MessagePack every flush is its own top-level array, so each chunk is
/// decoded independently.
pub fn decode_chunks(
    chunks: &[Vec<u8>],
    format: TraceFormat,
) -> crate::errors::TraceResult<Vec<IoRequest>> {
    let mut out = Vec::new();
    match format {
        TraceFormat::JsonLines => {
            for chunk in chunks {
                let text = std::str::from_utf8(chunk)
                    .map_err(|_| crate::errors::TraceError::malformed("invalid UTF-8", 0))?;
                out.extend(jsonl::decode_requests(text)?);
            }
        }
        TraceFormat::MessagePack => {
            for chunk in chunks {
                out.extend(msgpack::decode_requests(chunk)?);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests(n: usize) -> Vec<IoRequest> {
        (0..n)
            .map(|i| IoRequest::write(i % 4, i as f64, i as f64 + 0.5, 1024))
            .collect()
    }

    #[test]
    fn offline_mode_buffers_until_finalize() {
        let collector = Collector::new("ior", 4, FlushMode::Offline, TraceFormat::JsonLines);
        collector.record_all(requests(10));
        assert_eq!(collector.pending_count(), 10);
        assert_eq!(collector.stats().flushes, 0);

        let mut sink = MemorySink::new();
        let stats = collector.finalize(&mut sink);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.flushed_requests, 10);
        assert_eq!(sink.chunks().len(), 1);
        let decoded = decode_chunks(sink.chunks(), TraceFormat::JsonLines).unwrap();
        assert_eq!(decoded.len(), 10);
    }

    #[test]
    fn online_mode_appends_chunks_per_flush() {
        let collector = Collector::new("hacc", 8, FlushMode::Online, TraceFormat::MessagePack);
        let mut sink = MemorySink::new();
        for phase in 0..5 {
            collector.record_all(
                requests(3)
                    .into_iter()
                    .map(|r| r.shifted(phase as f64 * 10.0)),
            );
            let flushed = collector.flush(&mut sink);
            assert_eq!(flushed, 3);
        }
        assert_eq!(collector.stats().flushes, 5);
        assert_eq!(collector.stats().flushed_requests, 15);
        assert_eq!(sink.chunks().len(), 5);
        let decoded = decode_chunks(sink.chunks(), TraceFormat::MessagePack).unwrap();
        assert_eq!(decoded.len(), 15);
    }

    #[test]
    fn flush_with_nothing_pending_is_a_noop() {
        let collector = Collector::new("x", 1, FlushMode::Online, TraceFormat::JsonLines);
        let mut sink = MemorySink::new();
        assert_eq!(collector.flush(&mut sink), 0);
        assert_eq!(collector.stats().flushes, 0);
        assert!(sink.chunks().is_empty());
    }

    #[test]
    fn snapshot_reflects_everything_recorded() {
        let collector = Collector::new("lammps", 2, FlushMode::Online, TraceFormat::JsonLines);
        collector.record_all(requests(4));
        let mut sink = MemorySink::new();
        collector.flush(&mut sink);
        collector.record_all(requests(2).into_iter().map(|r| r.shifted(100.0)));
        let snap = collector.snapshot();
        assert_eq!(snap.len(), 6);
        assert_eq!(snap.metadata().application, "lammps");
        assert_eq!(snap.metadata().num_ranks, 2);
    }

    #[test]
    fn invalid_requests_are_not_recorded() {
        let collector = Collector::new("x", 1, FlushMode::Offline, TraceFormat::JsonLines);
        collector.record(IoRequest::write(0, 5.0, 1.0, 10));
        collector.record(IoRequest::write(0, 1.0, 5.0, 10));
        assert_eq!(collector.stats().recorded, 1);
    }

    #[test]
    fn concurrent_recording_from_many_threads() {
        let collector = std::sync::Arc::new(Collector::new(
            "concurrent",
            16,
            FlushMode::Offline,
            TraceFormat::MessagePack,
        ));
        let mut handles = Vec::new();
        for rank in 0..16 {
            let c = collector.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    c.record(IoRequest::write(rank, i as f64, i as f64 + 0.1, 4096));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(collector.stats().recorded, 1600);
        let mut sink = MemorySink::new();
        let stats = collector.finalize(&mut sink);
        assert_eq!(stats.flushed_requests, 1600);
        let decoded = decode_chunks(sink.chunks(), TraceFormat::MessagePack).unwrap();
        assert_eq!(decoded.len(), 1600);
    }

    #[test]
    fn serialized_bytes_are_counted() {
        let collector = Collector::new("x", 1, FlushMode::Online, TraceFormat::JsonLines);
        collector.record_all(requests(5));
        let mut sink = MemorySink::new();
        collector.flush(&mut sink);
        let stats = collector.stats();
        assert!(stats.serialized_bytes > 0);
        assert_eq!(stats.serialized_bytes, sink.concatenated().len());
    }
}
