//! Streaming reader for actual `darshan-parser` text output.
//!
//! The [`crate::darshan`] module handles this crate's own compact heatmap
//! rendering; real Darshan profiles are dumped with the `darshan-parser` /
//! `darshan-dxt-parser` tools, whose text output this module ingests directly
//! (ROADMAP: "accept actual darshan-parser output … for drop-in use on real
//! logs"). Two record dialects appear in that output, often behind a block of
//! `#` comment lines:
//!
//! * **HEATMAP counters** — one counter per line in the standard
//!   `darshan-parser` column layout
//!   (`module  rank  record-id  counter  value  [file  mount  fs]`):
//!
//!   ```text
//!   HEATMAP  -1  15920181672442173319  HEATMAP_F_BIN_WIDTH_SECONDS  0.878906  heatmap:POSIX  UNKNOWN  UNKNOWN
//!   HEATMAP   0  15920181672442173319  HEATMAP_WRITE_BIN_0          6040846   heatmap:POSIX  UNKNOWN  UNKNOWN
//!   ```
//!
//!   Read and write volumes of all ranks and records are aggregated into one
//!   application-level bin vector — exactly what FTIO extracts from a Darshan
//!   profile — and emitted as a bins batch whose sampling frequency is the
//!   reciprocal bin width.
//!
//! * **DXT records** — one intercepted call per line
//!   (`module  rank  op  segment  offset  length  start  end`):
//!
//!   ```text
//!   X_POSIX  0  write  0  0  16777216  0.0321  0.0385
//!   ```
//!
//!   These become [`IoRequest`]s (module `X_MPIIO` maps to the MPI-IO API
//!   level, `X_POSIX`/`X_STDIO` to POSIX) and stream out in batches.
//!
//! A file may carry either dialect; when both appear the request records win
//! and the heatmap is dropped (DXT is strictly richer than the binned view).

use std::io::BufRead;

use crate::app_id::AppId;
use crate::errors::{snippet_of, TraceError, TraceResult};
use crate::request::{IoApi, IoKind, IoRequest};
use crate::source::{validate_request, TraceBatch, TraceSource};

/// Upper bound on heatmap bin indices. Real Darshan heatmaps have at most a
/// few hundred bins; the cap keeps a corrupt index from driving an unbounded
/// allocation while leaving room for very long runs at fine bin widths.
const MAX_HEATMAP_BINS: usize = 1 << 22;

/// Whether a line looks like a counter record of a darshan module this reader
/// does not consume (`POSIX  rank  record-id  COUNTER  value ...`): an
/// upper-case module name in the standard five-plus-column layout.
fn is_other_module_counter(fields: &[&str]) -> bool {
    fields.len() >= 5
        && fields[0].chars().any(|c| c.is_ascii_uppercase())
        && fields[0]
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

/// Streaming source over `darshan-parser` / `darshan-dxt-parser` text output.
pub struct DarshanParserSource<R: BufRead> {
    reader: R,
    app: AppId,
    batch_size: usize,
    line_number: usize,
    bin_width: Option<f64>,
    bins: Vec<f64>,
    saw_requests: bool,
    heatmap_emitted: bool,
    done: bool,
}

impl<R: BufRead> DarshanParserSource<R> {
    /// Creates a reader with the given batch size.
    pub fn new(reader: R, app: AppId, batch_size: usize) -> Self {
        DarshanParserSource {
            reader,
            app,
            batch_size: batch_size.max(1),
            line_number: 0,
            bin_width: None,
            bins: Vec::new(),
            saw_requests: false,
            heatmap_emitted: false,
            done: false,
        }
    }

    fn parse_heatmap_counter(&mut self, fields: &[&str], line: &str) -> TraceResult<()> {
        if fields.len() < 5 {
            return Err(TraceError::malformed_snippet(
                format!(
                    "HEATMAP record needs at least 5 columns, found {}",
                    fields.len()
                ),
                self.line_number,
                snippet_of(line),
            ));
        }
        let counter = fields[3];
        let value: f64 = fields[4].parse().map_err(|_| {
            TraceError::malformed_snippet(
                format!("invalid HEATMAP counter value `{}`", fields[4]),
                self.line_number,
                snippet_of(line),
            )
        })?;
        if counter == "HEATMAP_F_BIN_WIDTH_SECONDS" {
            if !(value.is_finite() && value > 0.0) {
                return Err(TraceError::invalid("bin_width", "must be positive")
                    .with_context(self.line_number, line));
            }
            match self.bin_width {
                None => self.bin_width = Some(value),
                Some(existing) if (existing - value).abs() > 1e-9 * existing.abs() => {
                    return Err(TraceError::malformed_snippet(
                        format!("conflicting heatmap bin widths ({existing} vs {value})"),
                        self.line_number,
                        snippet_of(line),
                    ));
                }
                Some(_) => {}
            }
            return Ok(());
        }
        let bin_index = counter
            .strip_prefix("HEATMAP_READ_BIN_")
            .or_else(|| counter.strip_prefix("HEATMAP_WRITE_BIN_"));
        if let Some(index_str) = bin_index {
            let index: usize = index_str.parse().map_err(|_| {
                TraceError::malformed_snippet(
                    format!("invalid heatmap bin index in `{counter}`"),
                    self.line_number,
                    snippet_of(line),
                )
            })?;
            if !(value.is_finite() && value >= 0.0) {
                return Err(TraceError::invalid("bin", "volume must be non-negative")
                    .with_context(self.line_number, line));
            }
            if index >= MAX_HEATMAP_BINS {
                return Err(TraceError::malformed_snippet(
                    format!("heatmap bin index {index} exceeds the sanity cap {MAX_HEATMAP_BINS}"),
                    self.line_number,
                    snippet_of(line),
                ));
            }
            if index >= self.bins.len() {
                self.bins.resize(index + 1, 0.0);
            }
            self.bins[index] += value;
        }
        // Other HEATMAP counters (e.g. HEATMAP_F_MAX_TIMESTAMP) are ignored.
        Ok(())
    }

    fn parse_dxt_record(&self, fields: &[&str], line: &str) -> TraceResult<IoRequest> {
        if fields.len() < 8 {
            return Err(TraceError::malformed_snippet(
                format!("DXT record needs 8 columns, found {}", fields.len()),
                self.line_number,
                snippet_of(line),
            ));
        }
        let api = if fields[0] == "X_MPIIO" {
            IoApi::Sync
        } else {
            IoApi::Posix
        };
        let rank: usize = fields[1].parse().map_err(|_| {
            TraceError::malformed_snippet(
                format!("invalid DXT rank `{}`", fields[1]),
                self.line_number,
                snippet_of(line),
            )
        })?;
        let kind = match fields[2].to_ascii_lowercase().as_str() {
            "write" => IoKind::Write,
            "read" => IoKind::Read,
            other => {
                return Err(TraceError::malformed_snippet(
                    format!("unknown DXT operation `{other}`"),
                    self.line_number,
                    snippet_of(line),
                ))
            }
        };
        let bytes: u64 = fields[5].parse().map_err(|_| {
            TraceError::malformed_snippet(
                format!("invalid DXT length `{}`", fields[5]),
                self.line_number,
                snippet_of(line),
            )
        })?;
        let start: f64 = fields[6].parse().map_err(|_| {
            TraceError::malformed_snippet(
                format!("invalid DXT start time `{}`", fields[6]),
                self.line_number,
                snippet_of(line),
            )
        })?;
        let end: f64 = fields[7].parse().map_err(|_| {
            TraceError::malformed_snippet(
                format!("invalid DXT end time `{}`", fields[7]),
                self.line_number,
                snippet_of(line),
            )
        })?;
        let request = IoRequest {
            rank,
            start,
            end,
            bytes,
            kind,
            api,
        };
        validate_request(&request, self.line_number, || line.to_string())?;
        Ok(request)
    }

    fn heatmap_batch(&mut self) -> Option<TraceBatch> {
        if self.heatmap_emitted || self.saw_requests || self.bins.is_empty() {
            return None;
        }
        self.heatmap_emitted = true;
        let bin_width = self.bin_width?;
        Some(TraceBatch::bins(
            self.app,
            0.0,
            bin_width,
            std::mem::take(&mut self.bins),
        ))
    }
}

impl<R: BufRead> TraceSource for DarshanParserSource<R> {
    fn app_id(&self) -> AppId {
        self.app
    }

    fn next_batch(&mut self) -> TraceResult<Option<TraceBatch>> {
        if self.done {
            return Ok(None);
        }
        let mut requests = Vec::new();
        let mut line = String::new();
        while requests.len() < self.batch_size {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                self.done = true;
                if !self.bins.is_empty() && self.bin_width.is_none() {
                    return Err(TraceError::invalid(
                        "bin_width",
                        "heatmap counters present but no HEATMAP_F_BIN_WIDTH_SECONDS record",
                    ));
                }
                break;
            }
            self.line_number += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields[0] == "HEATMAP" {
                self.parse_heatmap_counter(&fields, trimmed)?;
            } else if fields[0].starts_with("X_") {
                self.saw_requests = true;
                requests.push(self.parse_dxt_record(&fields, trimmed)?);
            } else if is_other_module_counter(&fields) {
                // Real darshan-parser output interleaves counter rows of many
                // modules (POSIX, MPIIO, STDIO, LUSTRE, ...) in the same
                // `module rank record-id counter value ...` layout; only the
                // heatmap and DXT records carry the data FTIO consumes.
                continue;
            } else {
                return Err(TraceError::malformed_snippet(
                    format!("unrecognised darshan-parser record `{}`", fields[0]),
                    self.line_number,
                    snippet_of(trimmed),
                ));
            }
        }
        if !requests.is_empty() {
            return Ok(Some(TraceBatch::requests(self.app, requests)));
        }
        Ok(self.heatmap_batch())
    }
}

/// Renders a heatmap in `darshan-parser` HEATMAP-counter layout — used to
/// build realistic fixtures and round-trip tests without a darshan install.
/// Volumes are split evenly between two synthetic ranks and between the read
/// and write counters of rank 0 to exercise the aggregation path.
pub fn encode_heatmap_counters(bin_width: f64, bins: &[f64]) -> String {
    let mut out = String::from("# darshan log version: 3.41\n# exe: synthetic\n");
    let record = 15920181672442173319u64;
    for rank in [-1i64, 0, 1] {
        out.push_str(&format!(
            "HEATMAP\t{rank}\t{record}\tHEATMAP_F_BIN_WIDTH_SECONDS\t{bin_width}\theatmap:POSIX\tUNKNOWN\tUNKNOWN\n"
        ));
    }
    for (i, &v) in bins.iter().enumerate() {
        let half = v / 2.0;
        out.push_str(&format!(
            "HEATMAP\t0\t{record}\tHEATMAP_WRITE_BIN_{i}\t{half}\theatmap:POSIX\tUNKNOWN\tUNKNOWN\n"
        ));
        out.push_str(&format!(
            "HEATMAP\t1\t{record}\tHEATMAP_READ_BIN_{i}\t{half}\theatmap:POSIX\tUNKNOWN\tUNKNOWN\n"
        ));
    }
    out
}

/// Renders requests as `darshan-dxt-parser` output — fixture/round-trip
/// helper. Reads and writes map to DXT ops; the API level selects the module
/// column (`X_MPIIO` for MPI-IO, `X_POSIX` otherwise).
pub fn encode_dxt(requests: &[IoRequest]) -> String {
    let mut out = String::from(
        "# darshan DXT trace (synthetic)\n# module\trank\top\tsegment\toffset\tlength\tstart\tend\n",
    );
    for (i, r) in requests.iter().enumerate() {
        let module = match r.api {
            IoApi::Sync | IoApi::Async => "X_MPIIO",
            IoApi::Posix => "X_POSIX",
        };
        out.push_str(&format!(
            "{module}\t{}\t{}\t{i}\t0\t{}\t{:.6}\t{:.6}\n",
            r.rank,
            r.kind.as_str(),
            r.bytes,
            r.start,
            r.end
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{drain_single, BatchPayload, DrainedInput};

    #[test]
    fn heatmap_counters_aggregate_over_ranks_and_kinds() {
        let bins = vec![100.0, 0.0, 250.0, 0.0];
        let text = encode_heatmap_counters(60.0, &bins);
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(1), 64);
        match drain_single(&mut source, "darshan").unwrap() {
            DrainedInput::Heatmap(h) => {
                assert_eq!(h.bin_width, 60.0);
                assert_eq!(h.bins, bins);
                assert_eq!(h.start, 0.0);
            }
            DrainedInput::Trace(_) => panic!("expected a heatmap"),
        }
    }

    #[test]
    fn dxt_records_stream_as_requests() {
        let requests: Vec<IoRequest> = (0..12)
            .map(|i| IoRequest::write(i % 3, i as f64, i as f64 + 0.25, 1 << 20))
            .collect();
        let text = encode_dxt(&requests);
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(2), 5);
        let mut streamed = Vec::new();
        let mut batches = 0;
        while let Some(batch) = source.next_batch().unwrap() {
            batches += 1;
            assert!(matches!(batch.payload, BatchPayload::Requests(_)));
            streamed.extend(batch.into_requests());
        }
        assert_eq!(batches, 3);
        assert_eq!(streamed.len(), 12);
        for (a, b) in streamed.iter().zip(&requests) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.kind, b.kind);
            assert!((a.start - b.start).abs() < 1e-5);
        }
    }

    #[test]
    fn posix_and_mpiio_modules_map_to_api_levels() {
        let text = "\
X_POSIX\t0\twrite\t0\t0\t100\t1.0\t2.0\n\
X_MPIIO\t1\tread\t0\t0\t200\t2.0\t3.0\n";
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(0), 8);
        let batch = source.next_batch().unwrap().unwrap();
        let reqs = batch.into_requests();
        assert_eq!(reqs[0].api, IoApi::Posix);
        assert_eq!(reqs[0].kind, IoKind::Write);
        assert_eq!(reqs[1].api, IoApi::Sync);
        assert_eq!(reqs[1].kind, IoKind::Read);
    }

    #[test]
    fn malformed_records_report_line_and_snippet() {
        let cases = [
            ("X_POSIX\t0\twrite\t0\t0\t100\t1.0\n", "8 columns"),
            ("X_POSIX\t0\tscribble\t0\t0\t100\t1.0\t2.0\n", "scribble"),
            ("X_POSIX\tzero\twrite\t0\t0\t100\t1.0\t2.0\n", "rank"),
            ("X_POSIX\t0\twrite\t0\t0\t100\tNaN\t2.0\n", "start/end"),
            ("X_POSIX\t0\twrite\t0\t0\t100\t5.0\t2.0\n", "start/end"),
            ("HEATMAP\t0\t1\tHEATMAP_WRITE_BIN_x\t5\n", "bin index"),
            (
                "HEATMAP\t0\t1\tHEATMAP_WRITE_BIN_99999999999\t5\tx\tx\tx\n",
                "sanity cap",
            ),
            ("HEATMAP\t0\t1\n", "5 columns"),
            ("bogus stuff that fits no record layout\n", "unrecognised"),
        ];
        for (text, needle) in cases {
            let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(0), 8);
            let err = source.next_batch().unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` -> {err}");
            assert!(err.contains("position 1"), "`{text}` -> {err}");
        }
    }

    #[test]
    fn other_module_counters_are_skipped() {
        // A realistic darshan-parser dump interleaves counters of modules the
        // reader does not consume; they must not abort the parse.
        let mut text = String::from(
            "# darshan log version: 3.41\n\
             POSIX\t-1\t7061\tPOSIX_OPENS\t1\t/out.dat\t/\text4\n\
             MPI-IO\t0\t7061\tMPIIO_INDEP_OPENS\t0\t/out.dat\t/\text4\n\
             LUSTRE\t0\t7061\tLUSTRE_STRIPE_WIDTH\t4\t/out.dat\t/\text4\n",
        );
        text.push_str(&encode_heatmap_counters(2.0, &[10.0, 0.0, 30.0]));
        text.push_str("STDIO\t0\t7061\tSTDIO_BYTES_WRITTEN\t512\t/out.dat\t/\text4\n");
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(0), 64);
        match drain_single(&mut source, "darshan").unwrap() {
            DrainedInput::Heatmap(h) => assert_eq!(h.bins, vec![10.0, 0.0, 30.0]),
            DrainedInput::Trace(_) => panic!("expected a heatmap"),
        }
    }

    #[test]
    fn heatmap_without_bin_width_is_an_error() {
        let text = "HEATMAP\t0\t1\tHEATMAP_WRITE_BIN_0\t500\tx\tx\tx\n";
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(0), 8);
        let err = source.next_batch().unwrap_err().to_string();
        assert!(err.contains("HEATMAP_F_BIN_WIDTH_SECONDS"), "{err}");
    }

    #[test]
    fn conflicting_bin_widths_are_rejected() {
        let text = "\
HEATMAP\t0\t1\tHEATMAP_F_BIN_WIDTH_SECONDS\t1.0\tx\tx\tx\n\
HEATMAP\t1\t1\tHEATMAP_F_BIN_WIDTH_SECONDS\t2.0\tx\tx\tx\n";
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(0), 8);
        let err = source.next_batch().unwrap_err().to_string();
        assert!(err.contains("conflicting"), "{err}");
    }

    #[test]
    fn mixed_dialects_prefer_requests() {
        let mut text = encode_heatmap_counters(1.0, &[100.0]);
        text.push_str("X_POSIX\t0\twrite\t0\t0\t42\t1.0\t2.0\n");
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(0), 64);
        match drain_single(&mut source, "mixed").unwrap() {
            DrainedInput::Trace(trace) => {
                assert_eq!(trace.len(), 1);
                assert_eq!(trace.total_volume(), 42);
            }
            DrainedInput::Heatmap(_) => panic!("requests must win"),
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\n# comment\n\n# another\n";
        let mut source = DarshanParserSource::new(text.as_bytes(), AppId::new(0), 8);
        assert!(source.next_batch().unwrap().is_none());
    }
}
