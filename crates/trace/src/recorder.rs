//! Recorder-style per-rank text traces.
//!
//! The paper mentions that the detection mode also accepts traces from
//! Recorder (§II-A). Recorder stores one record per intercepted call with the
//! issuing rank, the function name, timestamps and the transferred size. A
//! compact text rendering of that information is supported here:
//!
//! ```text
//! 3 MPI_File_write_all 12.500000 12.734000 1048576
//! ```
//!
//! Lines starting with `#` are comments. The function name decides whether the
//! record is a read or a write; unknown functions (metadata operations such as
//! `MPI_File_open`) are skipped, mirroring how FTIO only cares about data
//! transfers.

use crate::errors::{TraceError, TraceResult};
use crate::request::{IoApi, IoKind, IoRequest};

/// Classifies a traced function name into read/write/other.
pub fn classify_function(name: &str) -> Option<(IoKind, IoApi)> {
    let lower = name.to_ascii_lowercase();
    let api = if lower.starts_with("mpi_file_i") {
        IoApi::Async
    } else if lower.starts_with("mpi_") {
        IoApi::Sync
    } else {
        IoApi::Posix
    };
    if lower.contains("write") || lower == "pwrite" || lower == "pwrite64" {
        Some((IoKind::Write, api))
    } else if lower.contains("read") || lower == "pread" || lower == "pread64" {
        Some((IoKind::Read, api))
    } else {
        None
    }
}

/// Encodes requests in the Recorder-style text format.
pub fn encode_requests(requests: &[IoRequest]) -> String {
    let mut out = String::from("# recorder-text rank function start end bytes\n");
    for r in requests {
        let func = match (r.kind, r.api) {
            (IoKind::Write, IoApi::Sync) => "MPI_File_write_all",
            (IoKind::Write, IoApi::Async) => "MPI_File_iwrite",
            (IoKind::Write, IoApi::Posix) => "pwrite",
            (IoKind::Read, IoApi::Sync) => "MPI_File_read_all",
            (IoKind::Read, IoApi::Async) => "MPI_File_iread",
            (IoKind::Read, IoApi::Posix) => "pread",
        };
        out.push_str(&format!(
            "{} {} {:.6} {:.6} {}\n",
            r.rank, func, r.start, r.end, r.bytes
        ));
    }
    out
}

/// Parses one Recorder line. Returns `Ok(None)` for comments, blank lines and
/// records whose function is neither a read nor a write (metadata calls);
/// malformed data lines are an error naming the line.
pub fn decode_line(line: &str, line_number: usize) -> TraceResult<Option<IoRequest>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() != 5 {
        return Err(TraceError::malformed(
            format!("expected 5 fields, found {}", fields.len()),
            line_number,
        ));
    }
    let rank: usize = fields[0]
        .parse()
        .map_err(|_| TraceError::malformed(format!("invalid rank `{}`", fields[0]), line_number))?;
    let Some((kind, api)) = classify_function(fields[1]) else {
        return Ok(None);
    };
    let start: f64 = fields[2].parse().map_err(|_| {
        TraceError::malformed(format!("invalid start `{}`", fields[2]), line_number)
    })?;
    let end: f64 = fields[3]
        .parse()
        .map_err(|_| TraceError::malformed(format!("invalid end `{}`", fields[3]), line_number))?;
    let bytes: u64 = fields[4].parse().map_err(|_| {
        TraceError::malformed(format!("invalid bytes `{}`", fields[4]), line_number)
    })?;
    Ok(Some(IoRequest {
        rank,
        start,
        end,
        bytes,
        kind,
        api,
    }))
}

/// Parses the Recorder-style text format — a thin adapter that drains the
/// streaming [`crate::source::RecorderSource`]. Records whose function is
/// neither a read nor a write are skipped; malformed data lines are an error.
pub fn decode_requests(text: &str) -> TraceResult<Vec<IoRequest>> {
    let mut source = crate::source::RecorderSource::new(
        text.as_bytes(),
        crate::app_id::AppId::from_name("recorder"),
        crate::source::DEFAULT_BATCH_SIZE,
    );
    crate::source::drain_requests(&mut source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_common_functions() {
        assert_eq!(
            classify_function("MPI_File_write_at_all"),
            Some((IoKind::Write, IoApi::Sync))
        );
        assert_eq!(
            classify_function("MPI_File_iread"),
            Some((IoKind::Read, IoApi::Async))
        );
        assert_eq!(
            classify_function("pwrite64"),
            Some((IoKind::Write, IoApi::Posix))
        );
        assert_eq!(
            classify_function("read"),
            Some((IoKind::Read, IoApi::Posix))
        );
        assert_eq!(classify_function("MPI_File_open"), None);
        assert_eq!(classify_function("fsync"), None);
    }

    #[test]
    fn round_trip_preserves_data_requests() {
        let requests = vec![
            IoRequest::write(0, 1.0, 2.0, 4096),
            IoRequest::read(3, 2.5, 2.75, 100),
            IoRequest {
                rank: 7,
                start: 5.0,
                end: 5.5,
                bytes: 12,
                kind: IoKind::Write,
                api: IoApi::Async,
            },
        ];
        let text = encode_requests(&requests);
        let back = decode_requests(&text).unwrap();
        assert_eq!(back, requests);
    }

    #[test]
    fn metadata_operations_are_skipped() {
        let text = "\
# comment
0 MPI_File_open 0.0 0.1 0
0 MPI_File_write_all 0.1 0.6 1000
0 MPI_File_close 0.6 0.7 0
";
        let back = decode_requests(text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].bytes, 1000);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_number() {
        let text = "0 MPI_File_write_all 0.0 0.5 100\n1 MPI_File_write_all broken 0.5 100\n";
        let err = decode_requests(text).unwrap_err();
        assert!(err.to_string().contains("position 2"));
    }

    #[test]
    fn wrong_field_count_is_an_error() {
        let err = decode_requests("0 MPI_File_write_all 0.0 0.5\n").unwrap_err();
        assert!(err.to_string().contains("5 fields"));
    }

    #[test]
    fn empty_and_comment_only_documents_are_fine() {
        assert!(decode_requests("").unwrap().is_empty());
        assert!(decode_requests("# nothing here\n\n").unwrap().is_empty());
    }
}
