//! Typed application identifiers.
//!
//! The online mode monitors *many* applications at once (the "monitor a whole
//! cluster" scenario): every appended I/O batch must be routed to the
//! predictor state of the application that produced it. A bare `u64` or the
//! application name string would both work, but a newtype keeps the routing
//! key distinct from ranks, byte counts and the other integers flying around,
//! and gives the sharded engine one well-defined place for its hash.

use std::fmt;

/// Identifier of one traced application run.
///
/// Construct either from a raw integer (job id, slot index) or from a name via
/// a stable FNV-1a hash, so the same application string always maps to the
/// same id across processes and runs:
///
/// ```
/// use ftio_trace::AppId;
///
/// let a = AppId::from_name("lammps-run-17");
/// let b = AppId::from_name("lammps-run-17");
/// assert_eq!(a, b);
/// assert_ne!(a, AppId::from_name("lammps-run-18"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(u64);

impl AppId {
    /// Wraps a raw identifier (job id, array index, ...).
    pub const fn new(raw: u64) -> Self {
        AppId(raw)
    }

    /// Derives a stable id from an application name (64-bit FNV-1a).
    pub fn from_name(name: &str) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        AppId(hash)
    }

    /// The raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Maps this id onto one of `shards` buckets.
    ///
    /// The raw id is mixed first (splitmix64 finalizer) so that sequential ids
    /// — the common case when apps are numbered 0, 1, 2, ... — still spread
    /// evenly over any shard count instead of striding through it.
    pub fn shard_index(self, shards: usize) -> usize {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % shards.max(1) as u64) as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app-{:016x}", self.0)
    }
}

impl From<u64> for AppId {
    fn from(raw: u64) -> Self {
        AppId::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_hashing_is_stable_and_distinct() {
        assert_eq!(AppId::from_name("ior"), AppId::from_name("ior"));
        assert_ne!(AppId::from_name("ior"), AppId::from_name("ior2"));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(AppId::from_name("").raw(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn shard_index_is_in_range_and_spreads_sequential_ids() {
        for shards in [1usize, 2, 3, 4, 7, 8, 16] {
            let mut counts = vec![0usize; shards];
            for raw in 0..256u64 {
                let idx = AppId::new(raw).shard_index(shards);
                assert!(idx < shards);
                counts[idx] += 1;
            }
            // No shard is starved: with 256 sequential ids every bucket gets
            // at least a quarter of its fair share.
            let fair = 256 / shards;
            assert!(
                counts.iter().all(|&c| c >= fair / 4),
                "shards={shards} counts={counts:?}"
            );
        }
    }

    #[test]
    fn zero_shards_is_clamped_rather_than_dividing_by_zero() {
        assert_eq!(AppId::new(42).shard_index(0), 0);
    }

    #[test]
    fn display_and_conversions() {
        let id = AppId::new(0xab);
        assert_eq!(id.to_string(), "app-00000000000000ab");
        assert_eq!(AppId::from(0xab_u64), id);
        assert_eq!(id.raw(), 0xab);
    }
}
