//! Machine-readable ground truth for generated scenarios.
//!
//! The adversarial scenario generators (`ftio-synth`) emit traces whose true
//! periodic structure is *known by construction*: a steady writer has one
//! constant period, a phase change switches between two, AMR-style drift
//! grows the checkpoint interval burst by burst. [`ScenarioTruth`] records
//! that structure as a piecewise period timeline plus explicit change-point
//! timestamps, so an evaluation layer (`ftio_core::eval`) can score any
//! predictor run against it — per-tick frequency error, and *tracking
//! latency*: how many ticks the predictor needs to re-lock after a
//! change point.
//!
//! The type lives in `ftio-trace` because it describes a property of a trace,
//! and both the generators (`ftio-synth`) and the scorer (`ftio-core`) need
//! it without depending on each other.

/// One segment of the true period timeline: over `[start, end)` the period
/// moves linearly from [`TruthSegment::period_start`] to
/// [`TruthSegment::period_end`] (equal values describe a constant period).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TruthSegment {
    /// Segment start time, seconds (inclusive).
    pub start: f64,
    /// Segment end time, seconds (exclusive, except for the final segment
    /// where [`ScenarioTruth::period_at`] treats it as inclusive).
    pub end: f64,
    /// True period at `start`, seconds.
    pub period_start: f64,
    /// True period approached at `end`, seconds.
    pub period_end: f64,
}

impl TruthSegment {
    /// A constant-period segment.
    pub fn constant(start: f64, end: f64, period: f64) -> Self {
        TruthSegment {
            start,
            end,
            period_start: period,
            period_end: period,
        }
    }

    /// A linearly drifting segment.
    pub fn drifting(start: f64, end: f64, period_start: f64, period_end: f64) -> Self {
        TruthSegment {
            start,
            end,
            period_start,
            period_end,
        }
    }

    /// Whether `t` lies in `[start, end)`.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// The true period at time `t`, linearly interpolated; `None` outside the
    /// segment.
    pub fn period_at(&self, t: f64) -> Option<f64> {
        if !self.contains(t) {
            return None;
        }
        let span = self.end - self.start;
        if span <= 0.0 {
            return Some(self.period_start);
        }
        let alpha = (t - self.start) / span;
        Some(self.period_start + alpha * (self.period_end - self.period_start))
    }
}

/// The machine-readable ground truth of one generated application: a
/// piecewise true-period timeline plus the timestamps of abrupt behaviour
/// changes.
///
/// Gradual drift is encoded as drifting [`TruthSegment`]s *without* change
/// points (there is no instant to re-lock after); an abrupt phase change is
/// encoded as two constant segments *with* a change point at the boundary.
///
/// ```
/// use ftio_trace::{ScenarioTruth, TruthSegment};
///
/// let truth = ScenarioTruth::new(
///     vec![
///         TruthSegment::constant(0.0, 100.0, 10.0),
///         TruthSegment::constant(100.0, 200.0, 20.0),
///     ],
///     vec![100.0],
/// );
/// assert_eq!(truth.period_at(50.0), Some(10.0));
/// assert_eq!(truth.period_at(150.0), Some(20.0));
/// assert_eq!(truth.change_points(), &[100.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioTruth {
    segments: Vec<TruthSegment>,
    change_points: Vec<f64>,
}

impl ScenarioTruth {
    /// Builds a truth from segments (sorted by start time) and change points.
    ///
    /// # Panics
    ///
    /// Panics if the segments are not in increasing, non-overlapping time
    /// order, if any segment is degenerate (`end <= start`), or if any period
    /// endpoint is not strictly positive and finite — a generator emitting
    /// such a truth is a bug worth failing loudly on.
    pub fn new(segments: Vec<TruthSegment>, change_points: Vec<f64>) -> Self {
        for pair in segments.windows(2) {
            assert!(
                pair[1].start >= pair[0].end,
                "truth segments overlap or are out of order: {pair:?}"
            );
        }
        for segment in &segments {
            assert!(
                segment.end > segment.start,
                "degenerate truth segment: {segment:?}"
            );
            for period in [segment.period_start, segment.period_end] {
                assert!(
                    period.is_finite() && period > 0.0,
                    "non-positive truth period: {segment:?}"
                );
            }
        }
        ScenarioTruth {
            segments,
            change_points,
        }
    }

    /// A single constant-period truth over `[start, end)`.
    pub fn constant(start: f64, end: f64, period: f64) -> Self {
        ScenarioTruth::new(vec![TruthSegment::constant(start, end, period)], Vec::new())
    }

    /// The piecewise segments, in time order.
    pub fn segments(&self) -> &[TruthSegment] {
        &self.segments
    }

    /// Timestamps of abrupt behaviour changes, in time order.
    pub fn change_points(&self) -> &[f64] {
        &self.change_points
    }

    /// Whether the truth covers no time at all.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Start of the covered timeline (`None` when empty).
    pub fn start(&self) -> Option<f64> {
        self.segments.first().map(|s| s.start)
    }

    /// End of the covered timeline (`None` when empty).
    pub fn end(&self) -> Option<f64> {
        self.segments.last().map(|s| s.end)
    }

    /// The true period at time `t`. Between segments (or outside the covered
    /// range) there is no defined truth and `None` is returned; the very end
    /// of the final segment is treated as covered, so scoring a prediction
    /// made exactly at the last flush works.
    pub fn period_at(&self, t: f64) -> Option<f64> {
        if let Some(last) = self.segments.last() {
            if t == last.end {
                return Some(last.period_end);
            }
        }
        self.segments.iter().find_map(|s| s.period_at(t))
    }

    /// Compact single-line JSON rendering (`{"segments":[...],"change_points":[...]}`),
    /// the machine-readable form the `ftio eval` tool prints next to its
    /// metrics table.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"segments\":[");
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start\":{},\"end\":{},\"period_start\":{},\"period_end\":{}}}",
                s.start, s.end, s.period_start, s.period_end
            ));
        }
        out.push_str("],\"change_points\":[");
        for (i, c) in self.change_points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{c}"));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_truth_covers_its_range_only() {
        let truth = ScenarioTruth::constant(5.0, 105.0, 12.0);
        assert_eq!(truth.period_at(5.0), Some(12.0));
        assert_eq!(truth.period_at(104.999), Some(12.0));
        // The final segment end is inclusive (last-flush predictions score).
        assert_eq!(truth.period_at(105.0), Some(12.0));
        assert_eq!(truth.period_at(4.999), None);
        assert_eq!(truth.period_at(105.001), None);
        assert!(truth.change_points().is_empty());
        assert_eq!(truth.start(), Some(5.0));
        assert_eq!(truth.end(), Some(105.0));
    }

    #[test]
    fn drifting_segment_interpolates_linearly() {
        let truth = ScenarioTruth::new(
            vec![TruthSegment::drifting(0.0, 100.0, 10.0, 20.0)],
            Vec::new(),
        );
        assert_eq!(truth.period_at(0.0), Some(10.0));
        assert_eq!(truth.period_at(50.0), Some(15.0));
        assert_eq!(truth.period_at(100.0), Some(20.0));
    }

    #[test]
    fn phase_change_truth_switches_at_the_boundary() {
        let truth = ScenarioTruth::new(
            vec![
                TruthSegment::constant(0.0, 80.0, 8.0),
                TruthSegment::constant(80.0, 200.0, 16.0),
            ],
            vec![80.0],
        );
        assert_eq!(truth.period_at(79.9), Some(8.0));
        assert_eq!(truth.period_at(80.0), Some(16.0));
        assert_eq!(truth.change_points(), &[80.0]);
    }

    #[test]
    fn gaps_between_segments_have_no_truth() {
        let truth = ScenarioTruth::new(
            vec![
                TruthSegment::constant(0.0, 50.0, 10.0),
                TruthSegment::constant(70.0, 120.0, 10.0),
            ],
            Vec::new(),
        );
        assert_eq!(truth.period_at(60.0), None);
        assert_eq!(truth.period_at(75.0), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn overlapping_segments_panic() {
        let _ = ScenarioTruth::new(
            vec![
                TruthSegment::constant(0.0, 60.0, 10.0),
                TruthSegment::constant(50.0, 120.0, 20.0),
            ],
            Vec::new(),
        );
    }

    #[test]
    #[should_panic(expected = "non-positive truth period")]
    fn non_positive_periods_panic() {
        let _ = ScenarioTruth::constant(0.0, 10.0, 0.0);
    }

    #[test]
    fn json_rendering_is_compact_and_complete() {
        let truth = ScenarioTruth::new(vec![TruthSegment::constant(0.0, 10.0, 2.5)], vec![10.0]);
        let json = truth.to_json();
        assert!(json.contains("\"segments\""));
        assert!(json.contains("\"period_start\":2.5"));
        assert!(json.contains("\"change_points\":[10]"));
        assert!(!json.contains('\n'));
    }
}
