//! Application-level traces: the collection of all rank-level requests of one
//! application run, plus convenience queries over it.
//!
//! The paper's analysis operates at the *application level*: the per-rank
//! information collected by the tracing library is merged (paper §II-A), and
//! the resulting request set is converted into a bandwidth-over-time signal
//! (see [`crate::bandwidth`]).

use crate::request::{IoKind, IoRequest};

/// Metadata describing the traced run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceMetadata {
    /// Human-readable application name (e.g. "IOR", "LAMMPS", "HACC-IO").
    pub application: String,
    /// Number of MPI ranks (or simulated processes).
    pub num_ranks: usize,
    /// Free-form description of the run configuration.
    pub notes: String,
}

/// The full I/O trace of one application run.
#[derive(Clone, Debug, Default)]
pub struct AppTrace {
    metadata: TraceMetadata,
    requests: Vec<IoRequest>,
}

impl AppTrace {
    /// Creates an empty trace with the given metadata.
    pub fn new(metadata: TraceMetadata) -> Self {
        AppTrace {
            metadata,
            requests: Vec::new(),
        }
    }

    /// Creates a trace for `application` with `num_ranks` ranks and no requests.
    pub fn named(application: &str, num_ranks: usize) -> Self {
        AppTrace::new(TraceMetadata {
            application: application.to_string(),
            num_ranks,
            notes: String::new(),
        })
    }

    /// Creates a trace directly from a request list (invalid requests are dropped).
    pub fn from_requests(application: &str, num_ranks: usize, requests: Vec<IoRequest>) -> Self {
        let mut trace = AppTrace::named(application, num_ranks);
        for r in requests {
            trace.push(r);
        }
        trace
    }

    /// The trace metadata.
    pub fn metadata(&self) -> &TraceMetadata {
        &self.metadata
    }

    /// Mutable access to the metadata.
    pub fn metadata_mut(&mut self) -> &mut TraceMetadata {
        &mut self.metadata
    }

    /// All requests, in insertion order.
    pub fn requests(&self) -> &[IoRequest] {
        &self.requests
    }

    /// Appends a request; silently ignores malformed records (negative or NaN
    /// times), mirroring how the reference tooling skips corrupt trace lines.
    pub fn push(&mut self, request: IoRequest) {
        if request.is_valid() {
            self.requests.push(request);
        }
    }

    /// Appends all requests from an iterator.
    pub fn extend<I: IntoIterator<Item = IoRequest>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }

    /// Merges another trace into this one (used when per-rank trace files are
    /// combined into the application-level view).
    pub fn merge(&mut self, other: &AppTrace) {
        self.requests.extend_from_slice(&other.requests);
        self.metadata.num_ranks = self.metadata.num_ranks.max(other.metadata.num_ranks);
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Earliest request start time, or 0.0 for an empty trace.
    pub fn start_time(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| r.start)
            .fold(f64::INFINITY, f64::min)
    }

    /// Latest request end time, or 0.0 for an empty trace.
    pub fn end_time(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| r.end)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Trace length `L(T)` in seconds — from the first request start to the
    /// last request end.
    pub fn duration(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.end_time() - self.start_time()).max(0.0)
        }
    }

    /// Total transferred volume `V(T)` in bytes across all requests.
    pub fn total_volume(&self) -> u64 {
        self.requests.iter().map(|r| r.bytes).sum()
    }

    /// Total volume restricted to one kind of I/O.
    pub fn volume_of_kind(&self, kind: IoKind) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.bytes)
            .sum()
    }

    /// Set of distinct ranks that issued at least one request.
    pub fn active_ranks(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self.requests.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Requests issued by one rank, in insertion order.
    pub fn rank_requests(&self, rank: usize) -> Vec<IoRequest> {
        self.requests
            .iter()
            .copied()
            .filter(|r| r.rank == rank)
            .collect()
    }

    /// Returns a new trace restricted to requests overlapping `[t0, t1)`,
    /// used by the online mode to analyse a shorter time window.
    pub fn window(&self, t0: f64, t1: f64) -> AppTrace {
        let mut out = AppTrace::new(self.metadata.clone());
        out.requests = self
            .requests
            .iter()
            .copied()
            .filter(|r| r.overlaps(t0, t1))
            .collect();
        out
    }

    /// Returns a new trace restricted to one I/O kind.
    pub fn filter_kind(&self, kind: IoKind) -> AppTrace {
        let mut out = AppTrace::new(self.metadata.clone());
        out.requests = self
            .requests
            .iter()
            .copied()
            .filter(|r| r.kind == kind)
            .collect();
        out
    }

    /// Returns a copy of the trace with all requests shifted by `offset` seconds.
    pub fn shifted(&self, offset: f64) -> AppTrace {
        let mut out = AppTrace::new(self.metadata.clone());
        out.requests = self.requests.iter().map(|r| r.shifted(offset)).collect();
        out
    }

    /// Sorts requests by start time (serialisation and some algorithms want
    /// chronological order).
    pub fn sort_by_start(&mut self) {
        self.requests
            .sort_by(|a, b| a.start.partial_cmp(&b.start).expect("NaN request time"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> AppTrace {
        AppTrace::from_requests(
            "test",
            2,
            vec![
                IoRequest::write(0, 1.0, 2.0, 100),
                IoRequest::write(1, 1.5, 3.0, 200),
                IoRequest::read(0, 5.0, 6.0, 50),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = sample_trace();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.start_time(), 1.0);
        assert_eq!(t.end_time(), 6.0);
        assert_eq!(t.duration(), 5.0);
        assert_eq!(t.total_volume(), 350);
        assert_eq!(t.volume_of_kind(IoKind::Write), 300);
        assert_eq!(t.volume_of_kind(IoKind::Read), 50);
        assert_eq!(t.active_ranks(), vec![0, 1]);
        assert_eq!(t.metadata().application, "test");
    }

    #[test]
    fn empty_trace_defaults() {
        let t = AppTrace::named("empty", 4);
        assert_eq!(t.len(), 0);
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.start_time(), 0.0);
        assert_eq!(t.end_time(), 0.0);
        assert_eq!(t.total_volume(), 0);
        assert!(t.active_ranks().is_empty());
    }

    #[test]
    fn invalid_requests_are_dropped() {
        let mut t = AppTrace::named("x", 1);
        t.push(IoRequest::write(0, 3.0, 2.0, 10));
        t.push(IoRequest::write(0, f64::NAN, 2.0, 10));
        t.push(IoRequest::write(0, 0.0, 1.0, 10));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn windowing_selects_overlapping_requests() {
        let t = sample_trace();
        let w = t.window(0.0, 2.5);
        assert_eq!(w.len(), 2);
        let w2 = t.window(4.0, 10.0);
        assert_eq!(w2.len(), 1);
        assert_eq!(w2.requests()[0].kind, IoKind::Read);
        let w3 = t.window(100.0, 200.0);
        assert!(w3.is_empty());
    }

    #[test]
    fn filter_by_kind() {
        let t = sample_trace();
        assert_eq!(t.filter_kind(IoKind::Write).len(), 2);
        assert_eq!(t.filter_kind(IoKind::Read).len(), 1);
    }

    #[test]
    fn merge_combines_requests_and_ranks() {
        let mut a = AppTrace::named("a", 2);
        a.push(IoRequest::write(0, 0.0, 1.0, 10));
        let mut b = AppTrace::named("b", 8);
        b.push(IoRequest::write(5, 2.0, 3.0, 20));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.metadata().num_ranks, 8);
        assert_eq!(a.total_volume(), 30);
    }

    #[test]
    fn shifting_moves_all_requests() {
        let t = sample_trace().shifted(10.0);
        assert_eq!(t.start_time(), 11.0);
        assert_eq!(t.end_time(), 16.0);
        assert_eq!(t.duration(), 5.0);
    }

    #[test]
    fn rank_requests_and_sorting() {
        let mut t = AppTrace::named("x", 2);
        t.push(IoRequest::write(0, 5.0, 6.0, 1));
        t.push(IoRequest::write(1, 1.0, 2.0, 2));
        t.push(IoRequest::write(0, 0.0, 0.5, 3));
        assert_eq!(t.rank_requests(0).len(), 2);
        assert_eq!(t.rank_requests(1).len(), 1);
        assert_eq!(t.rank_requests(7).len(), 0);
        t.sort_by_start();
        assert_eq!(t.requests()[0].bytes, 3);
        assert_eq!(t.requests()[2].bytes, 1);
    }
}
