//! Application-level bandwidth over time.
//!
//! The tracing library records individual, possibly overlapping requests per
//! rank. FTIO needs the *application-level* bandwidth signal `x(t)`: at any
//! instant, the sum of the bandwidths of all requests active at that instant
//! (paper §II-A; the overlap resolution is linear in the number of requests).
//!
//! [`BandwidthTimeline`] is that signal in piecewise-constant form: a sorted
//! list of breakpoints with the aggregate bandwidth that holds until the next
//! breakpoint. From it, a discretised sample vector at any sampling frequency
//! and the exact volume of any interval can be computed, which is what the
//! DFT step and the σ_vol/σ_time/R_IO metrics need.

use crate::app_trace::AppTrace;
use crate::request::IoRequest;

/// Piecewise-constant application-level bandwidth signal.
///
/// Between `times[i]` and `times[i + 1]`, the aggregate bandwidth is
/// `values[i]` bytes/second. Before `times[0]` and after the final breakpoint
/// the bandwidth is zero.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BandwidthTimeline {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl BandwidthTimeline {
    /// Builds the timeline from a set of requests using an event sweep:
    /// every request contributes `bytes / duration` between its start and end.
    /// Zero-duration requests are spread over a very small interval so their
    /// volume is preserved.
    pub fn from_requests(requests: &[IoRequest]) -> Self {
        const INSTANT: f64 = 1e-9;
        // Event sweep: +bw at start, -bw at end. The integer counter tracks
        // how many requests are active so idle gaps read as exactly zero
        // bandwidth instead of accumulating floating-point residue.
        let mut events: Vec<(f64, f64, i64)> = Vec::with_capacity(requests.len() * 2);
        for r in requests {
            if !r.is_valid() || r.bytes == 0 {
                continue;
            }
            let (start, end) = if r.duration() > 0.0 {
                (r.start, r.end)
            } else {
                (r.start, r.start + INSTANT)
            };
            let bw = r.bytes as f64 / (end - start);
            events.push((start, bw, 1));
            events.push((end, -bw, -1));
        }
        if events.is_empty() {
            return BandwidthTimeline::default();
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN event time"));

        let mut times = Vec::new();
        let mut values = Vec::new();
        let mut current = 0.0;
        let mut active: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            // Fold all events at the same timestamp.
            while i < events.len() && events[i].0 == t {
                current += events[i].1;
                active += events[i].2;
                i += 1;
            }
            if active == 0 {
                current = 0.0;
            }
            times.push(t);
            values.push(current.max(0.0));
        }
        BandwidthTimeline { times, values }
    }

    /// Builds the timeline for an entire application trace.
    pub fn from_trace(trace: &AppTrace) -> Self {
        Self::from_requests(trace.requests())
    }

    /// Breakpoint times in seconds (sorted ascending).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Aggregate bandwidth (bytes/s) holding from each breakpoint to the next.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether the timeline has no I/O at all.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// First instant with I/O activity (0.0 if empty).
    pub fn start(&self) -> f64 {
        self.times.first().copied().unwrap_or(0.0)
    }

    /// Last breakpoint — after it the bandwidth is zero (0.0 if empty).
    pub fn end(&self) -> f64 {
        self.times.last().copied().unwrap_or(0.0)
    }

    /// The aggregate bandwidth at time `t` in bytes/second.
    pub fn bandwidth_at(&self, t: f64) -> f64 {
        if self.times.is_empty() || t < self.times[0] {
            return 0.0;
        }
        // Index of the last breakpoint <= t.
        let idx = match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("NaN time"))
        {
            Ok(i) => i,
            Err(0) => return 0.0,
            Err(i) => i - 1,
        };
        self.values[idx]
    }

    /// Exact volume (bytes) transferred inside `[t0, t1)`, by integrating the
    /// piecewise-constant signal.
    pub fn volume_in(&self, t0: f64, t1: f64) -> f64 {
        if self.times.is_empty() || t1 <= t0 {
            return 0.0;
        }
        let mut volume = 0.0;
        for i in 0..self.times.len() {
            let seg_start = self.times[i];
            let seg_end = if i + 1 < self.times.len() {
                self.times[i + 1]
            } else {
                // After the last breakpoint the bandwidth is zero (the last
                // value is always zero after the sweep), so stop here.
                break;
            };
            let lo = seg_start.max(t0);
            let hi = seg_end.min(t1);
            if hi > lo {
                volume += self.values[i] * (hi - lo);
            }
        }
        volume
    }

    /// Total transferred volume in bytes.
    pub fn total_volume(&self) -> f64 {
        self.volume_in(self.start(), self.end() + 1.0)
    }

    /// Samples the signal at `sampling_freq` Hz over `[t0, t1)`, producing the
    /// discretised sequence `x_n = x(t0 + n / fs)` the DFT consumes.
    ///
    /// Each sample carries the *average* bandwidth over its sampling interval
    /// (volume in the interval divided by the interval length), which is what
    /// preserves transferred volume and keeps the abstraction error meaningful.
    pub fn sample(&self, t0: f64, t1: f64, sampling_freq: f64) -> Vec<f64> {
        assert!(sampling_freq > 0.0, "sampling frequency must be positive");
        if t1 <= t0 {
            return Vec::new();
        }
        let dt = 1.0 / sampling_freq;
        let n = ((t1 - t0) * sampling_freq).floor() as usize;
        (0..n)
            .map(|i| {
                let lo = t0 + i as f64 * dt;
                let hi = lo + dt;
                self.volume_in(lo, hi) / dt
            })
            .collect()
    }

    /// Samples the whole timeline (from its first to its last breakpoint).
    pub fn sample_all(&self, sampling_freq: f64) -> Vec<f64> {
        self.sample(self.start(), self.end(), sampling_freq)
    }

    /// Instantaneous-value sampling (point sampling, no averaging): the naive
    /// discretisation that exhibits the aliasing problem of paper Fig. 6.
    pub fn sample_instantaneous(&self, t0: f64, t1: f64, sampling_freq: f64) -> Vec<f64> {
        assert!(sampling_freq > 0.0, "sampling frequency must be positive");
        if t1 <= t0 {
            return Vec::new();
        }
        let dt = 1.0 / sampling_freq;
        let n = ((t1 - t0) * sampling_freq).floor() as usize;
        (0..n)
            .map(|i| self.bandwidth_at(t0 + i as f64 * dt))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoRequest;

    #[test]
    fn single_request_yields_rectangular_profile() {
        let tl = BandwidthTimeline::from_requests(&[IoRequest::write(0, 1.0, 3.0, 200)]);
        assert_eq!(tl.bandwidth_at(0.5), 0.0);
        assert_eq!(tl.bandwidth_at(1.0), 100.0);
        assert_eq!(tl.bandwidth_at(2.9), 100.0);
        assert_eq!(tl.bandwidth_at(3.0), 0.0);
        assert_eq!(tl.start(), 1.0);
        assert_eq!(tl.end(), 3.0);
    }

    #[test]
    fn overlapping_requests_add_their_bandwidths() {
        let tl = BandwidthTimeline::from_requests(&[
            IoRequest::write(0, 0.0, 2.0, 200), // 100 B/s
            IoRequest::write(1, 1.0, 3.0, 400), // 200 B/s
        ]);
        assert_eq!(tl.bandwidth_at(0.5), 100.0);
        assert_eq!(tl.bandwidth_at(1.5), 300.0);
        assert_eq!(tl.bandwidth_at(2.5), 200.0);
        assert_eq!(tl.bandwidth_at(3.5), 0.0);
    }

    #[test]
    fn volume_is_preserved() {
        let requests = [
            IoRequest::write(0, 0.0, 2.0, 200),
            IoRequest::write(1, 1.0, 3.0, 400),
            IoRequest::write(2, 10.0, 11.0, 123),
        ];
        let tl = BandwidthTimeline::from_requests(&requests);
        let total: u64 = requests.iter().map(|r| r.bytes).sum();
        assert!((tl.total_volume() - total as f64).abs() < 1e-6);
        assert!((tl.volume_in(0.0, 3.0) - 600.0).abs() < 1e-6);
        assert!((tl.volume_in(0.0, 1.0) - 100.0).abs() < 1e-6);
        assert!((tl.volume_in(9.0, 20.0) - 123.0).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_request_volume_is_kept() {
        let tl = BandwidthTimeline::from_requests(&[IoRequest::write(0, 5.0, 5.0, 1000)]);
        assert!((tl.total_volume() - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn zero_byte_and_invalid_requests_are_ignored() {
        let tl = BandwidthTimeline::from_requests(&[
            IoRequest::write(0, 0.0, 1.0, 0),
            IoRequest::write(0, 3.0, 2.0, 50),
        ]);
        assert!(tl.is_empty());
        assert_eq!(tl.total_volume(), 0.0);
        assert_eq!(tl.bandwidth_at(0.5), 0.0);
    }

    #[test]
    fn sampling_preserves_volume_on_aligned_grid() {
        let tl = BandwidthTimeline::from_requests(&[
            IoRequest::write(0, 0.0, 2.0, 200),
            IoRequest::write(1, 4.0, 6.0, 600),
        ]);
        let samples = tl.sample(0.0, 8.0, 2.0); // dt = 0.5 s, 16 samples
        assert_eq!(samples.len(), 16);
        let volume: f64 = samples.iter().map(|bw| bw * 0.5).sum();
        assert!((volume - 800.0).abs() < 1e-6);
        assert_eq!(samples[0], 100.0);
        assert_eq!(samples[5], 0.0);
        assert_eq!(samples[9], 300.0);
    }

    #[test]
    fn averaged_sampling_differs_from_instantaneous_for_short_bursts() {
        // A 0.1 s burst sampled at 1 Hz: averaging sees it, point sampling misses it.
        let tl = BandwidthTimeline::from_requests(&[IoRequest::write(0, 0.55, 0.65, 1000)]);
        let averaged = tl.sample(0.0, 2.0, 1.0);
        let instant = tl.sample_instantaneous(0.0, 2.0, 1.0);
        assert!(averaged[0] > 0.0);
        assert_eq!(instant[0], 0.0);
    }

    #[test]
    fn from_trace_matches_from_requests() {
        let trace = AppTrace::from_requests(
            "x",
            2,
            vec![
                IoRequest::write(0, 0.0, 1.0, 100),
                IoRequest::write(1, 0.5, 1.5, 100),
            ],
        );
        assert_eq!(
            BandwidthTimeline::from_trace(&trace),
            BandwidthTimeline::from_requests(trace.requests())
        );
    }

    #[test]
    fn empty_sampling_window_is_empty() {
        let tl = BandwidthTimeline::from_requests(&[IoRequest::write(0, 0.0, 1.0, 10)]);
        assert!(tl.sample(5.0, 5.0, 10.0).is_empty());
        assert!(tl.sample(5.0, 4.0, 10.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "sampling frequency must be positive")]
    fn non_positive_sampling_frequency_panics() {
        let tl = BandwidthTimeline::default();
        tl.sample(0.0, 1.0, 0.0);
    }
}
