//! Versioned, integrity-checked container for FTIO state snapshots.
//!
//! Checkpoint files let a long-running deployment restart without replaying
//! the trace: the online layer serialises its state (sampler bins, predictor
//! history, engine counters) as a msgpack payload, and this module wraps that
//! payload in a fixed-width header so a restore can tell *structurally* broken
//! files from merely stale ones:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FTIOSNAP"
//! 8       4     format version, u32 big-endian (currently 1)
//! 12      8     payload length in bytes, u64 big-endian
//! 20      8     FNV-1a 64 checksum of the payload, u64 big-endian
//! 28      n     msgpack payload (see `ftio_core::checkpoint`)
//! ```
//!
//! The header is deliberately *not* msgpack: fixed offsets mean a corrupted
//! length byte cannot shift every later field, and every validation failure
//! can name the exact byte offset it happened at. [`open`] never panics on
//! hostile input — truncation, a flipped bit, or a wrong magic all surface as
//! a structured [`TraceError::Malformed`] carrying the byte offset and a hex
//! snippet of the offending region (the same machinery the streaming msgpack
//! readers use).
//!
//! Version policy: the version is bumped whenever the payload layout changes
//! incompatibly; [`open`] rejects versions it does not know with an error that
//! names both versions, rather than misdecoding. There is no in-place
//! migration — a snapshot is a cache of replayable state, so the recovery
//! path for an old snapshot is simply a fresh replay.

use crate::errors::{snippet_of_bytes, TraceError, TraceResult};

/// Magic bytes every FTIO snapshot file starts with.
pub const MAGIC: [u8; 8] = *b"FTIOSNAP";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Total header size in bytes (magic + version + length + checksum).
pub const HEADER_LEN: usize = 28;

/// File extension conventionally used for snapshot files.
pub const EXTENSION: &str = "ftiosnap";

/// FNV-1a 64-bit hash — the payload checksum. Not cryptographic; it exists to
/// catch truncation and bit flips, not tampering.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Whether `data` starts with the snapshot magic (cheap format sniff).
pub fn is_snapshot(data: &[u8]) -> bool {
    data.len() >= MAGIC.len() && data[..MAGIC.len()] == MAGIC
}

/// Wraps a msgpack payload in the versioned, checksummed snapshot header.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the header and returns the payload slice.
///
/// Every failure is a structured [`TraceError::Malformed`] with the byte
/// offset of the problem and a hex snippet; this function never panics on
/// corrupt input.
pub fn open(data: &[u8]) -> TraceResult<&[u8]> {
    if data.len() < HEADER_LEN {
        return Err(TraceError::malformed_snippet(
            format!(
                "snapshot truncated: {} bytes is shorter than the {HEADER_LEN}-byte header",
                data.len()
            ),
            data.len(),
            snippet_of_bytes(data, data.len()),
        ));
    }
    if data[..MAGIC.len()] != MAGIC {
        return Err(TraceError::malformed_snippet(
            "not an FTIO snapshot (bad magic; expected `FTIOSNAP`)",
            0,
            snippet_of_bytes(data, 0),
        ));
    }
    let version = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
    if version != VERSION {
        return Err(TraceError::malformed_snippet(
            format!("unsupported snapshot version {version} (this build reads version {VERSION})"),
            8,
            snippet_of_bytes(data, 8),
        ));
    }
    let declared = u64::from_be_bytes([
        data[12], data[13], data[14], data[15], data[16], data[17], data[18], data[19],
    ]);
    let available = (data.len() - HEADER_LEN) as u64;
    if declared != available {
        return Err(TraceError::malformed_snippet(
            format!(
                "snapshot payload length mismatch: header declares {declared} bytes, \
                 file holds {available}"
            ),
            12,
            snippet_of_bytes(data, 12),
        ));
    }
    let declared_sum = u64::from_be_bytes([
        data[20], data[21], data[22], data[23], data[24], data[25], data[26], data[27],
    ]);
    let payload = &data[HEADER_LEN..];
    let actual_sum = fnv1a64(payload);
    if declared_sum != actual_sum {
        return Err(TraceError::malformed_snippet(
            format!(
                "snapshot payload corrupted: checksum {actual_sum:#018x} does not match \
                 header {declared_sum:#018x}"
            ),
            HEADER_LEN,
            snippet_of_bytes(data, HEADER_LEN),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trips() {
        let payload = b"arbitrary msgpack bytes".to_vec();
        let sealed = seal(&payload);
        assert!(is_snapshot(&sealed));
        assert_eq!(open(&sealed).unwrap(), &payload[..]);
        // Empty payloads are legal.
        let empty = seal(&[]);
        assert_eq!(open(&empty).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_truncation_is_a_positioned_error_never_a_panic() {
        let sealed = seal(b"payload bytes for truncation sweep");
        for cut in 0..sealed.len() {
            let err = open(&sealed[..cut]).unwrap_err();
            match err {
                TraceError::Malformed { position, .. } => {
                    assert!(position <= sealed.len(), "cut {cut}: position {position}")
                }
                other => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let sealed = seal(b"some state worth protecting");
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                let err = open(&bad).unwrap_err();
                assert!(
                    matches!(err, TraceError::Malformed { .. }),
                    "byte {byte} bit {bit}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn errors_name_the_failure_and_the_offset() {
        // Bad magic.
        let mut bad = seal(b"x");
        bad[0] = b'X';
        let msg = open(&bad).unwrap_err().to_string();
        assert!(msg.contains("bad magic"), "{msg}");
        assert!(msg.contains("position 0"), "{msg}");

        // Unknown version.
        let mut bad = seal(b"x");
        bad[11] = 99;
        let msg = open(&bad).unwrap_err().to_string();
        assert!(msg.contains("version 99"), "{msg}");
        assert!(msg.contains("position 8"), "{msg}");

        // Truncated payload.
        let sealed = seal(b"0123456789");
        let msg = open(&sealed[..sealed.len() - 3]).unwrap_err().to_string();
        assert!(msg.contains("length mismatch"), "{msg}");

        // Flipped payload byte: checksum failure at the payload offset.
        let mut bad = seal(b"0123456789");
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let msg = open(&bad).unwrap_err().to_string();
        assert!(msg.contains("checksum"), "{msg}");
        assert!(msg.contains(&format!("position {HEADER_LEN}")), "{msg}");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so the on-disk format cannot drift silently.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
