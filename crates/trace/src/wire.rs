//! Length-framed wire envelope for socket-facing trace ingest.
//!
//! `ftio serve` accepts two kinds of connection. A *raw* connection writes a
//! trace byte stream in any [`crate::source::SourceFormat`] (optionally
//! gzipped) and closes — convenient for `nc trace.jsonl | …`. A *framed*
//! connection speaks the envelope in this module: explicit application
//! identity, incremental data chunks, prediction subscriptions, and graceful
//! shutdown — what a TMIO-style tracer embedded in a running application
//! needs.
//!
//! The envelope is deliberately minimal: every frame is
//!
//! ```text
//! ┌────────────┬──────┬────────────────┬─────────┐
//! │ magic FD10 │ kind │ length (BE u32)│ payload │
//! │   2 bytes  │ 1 B  │     4 bytes    │ N bytes │
//! └────────────┴──────┴────────────────┴─────────┘
//! ```
//!
//! The magic byte `0xFD` is outside every range the content sniffer claims
//! (MessagePack fixmap/fixarray, gzip's `0x1f`, printable text), so the
//! server can tell framed from raw connections by peeking one byte.
//! Structured payloads reuse the [`crate::msgpack`] primitives; [`Frame::Data`]
//! payloads are opaque trace bytes handed to the ingestion layer
//! ([`crate::source::from_bytes_auto`]), so they may themselves be gzipped.
//!
//! [`FrameReader`] tracks the absolute byte offset of every frame so protocol
//! errors carry a position — the serving layer closes *that* connection with
//! the positioned error and keeps serving the rest.

use std::io::{Read, Write};

use crate::app_id::AppId;
use crate::errors::{TraceError, TraceResult};
use crate::msgpack;

/// The two magic bytes every frame starts with.
pub const FRAME_MAGIC: [u8; 2] = [0xFD, 0x10];

/// Upper bound on a single frame's payload (64 MiB) — a corrupted or hostile
/// length field must not turn into an unbounded allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

const KIND_HELLO: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_SUBSCRIBE: u8 = 3;
const KIND_END: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;
const KIND_ACK: u8 = 16;
const KIND_PREDICTION: u8 = 17;
const KIND_STATS: u8 = 18;
const KIND_ERROR: u8 = 19;
const KIND_WELCOME: u8 = 20;

/// One prediction update pushed to a subscribed connection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictionUpdate {
    /// The application the prediction belongs to.
    pub app: AppId,
    /// Monotonically increasing per-application sequence number, assigned by
    /// the engine when the prediction is published. A reconnecting
    /// subscriber passes the next seq it has not seen as
    /// [`Frame::Subscribe::from_seq`] to resume without gaps or duplicates.
    pub seq: u64,
    /// The submission time that triggered the tick (seconds).
    pub time: f64,
    /// Dominant period in seconds, when the detector found one.
    pub period: Option<f64>,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Engine counters as carried on the wire (mirrors
/// `ftio_core::cluster::ClusterStats`, which this crate cannot name — the
/// dependency points the other way).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Submissions handed to the engine.
    pub submitted: u64,
    /// Submissions refused (full queue under `Reject`, or engine closed).
    pub rejected: u64,
    /// Submissions evicted by the `DropOldest` policy.
    pub dropped: u64,
    /// Detection ticks executed.
    pub ticks: u64,
    /// Submissions merged into another submission's tick.
    pub coalesced: u64,
    /// Ticks whose analysis panicked.
    pub panicked: u64,
}

impl WireStats {
    /// The drain-time accounting identity every healthy engine satisfies:
    /// every non-rejected submission is eventually ticked, coalesced,
    /// dropped, or lost to a panic.
    pub fn is_balanced(&self) -> bool {
        self.ticks + self.panicked + self.coalesced + self.dropped == self.submitted - self.rejected
    }
}

/// One envelope frame, client→server or server→client.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client→server: names the application this connection feeds. The
    /// server routes the connection's data to `AppId::from_name(&name)` —
    /// the same derivation clients use, so both sides agree on the id
    /// without a registration round-trip.
    Hello {
        /// Application name (hashed into the [`AppId`]).
        name: String,
    },
    /// Client→server: one chunk of trace bytes in any sniffable
    /// [`crate::source::SourceFormat`], possibly gzipped. Chunks must be
    /// self-contained (no records split across frames).
    Data(Vec<u8>),
    /// Client→server: subscribe this connection to prediction updates for
    /// one application, or for all applications when `app` is `None`.
    Subscribe {
        /// The application to follow (`None` = every application).
        app: Option<AppId>,
        /// Resume point: replay retained predictions with `seq >=
        /// from_seq` before going live. Requires `app` (the sequence space
        /// is per-application); the server rejects `from_seq` without an
        /// app as a protocol error.
        from_seq: Option<u64>,
    },
    /// Client→server: flush — the server forces pending work through the
    /// engine and replies with [`Frame::Ack`].
    End,
    /// Client→server: ask the whole daemon to drain and exit. The server
    /// replies with a final [`Frame::Stats`] before closing.
    Shutdown,
    /// Server→client: acknowledges [`Frame::End`].
    Ack,
    /// Server→client: one prediction update (requires a prior subscribe).
    Prediction(PredictionUpdate),
    /// Server→client: engine counters (the [`Frame::Shutdown`] reply).
    Stats(WireStats),
    /// Server→client: acknowledges [`Frame::Hello`], advertising the
    /// resume window for the named application's prediction feed.
    Welcome {
        /// The [`AppId`] the server derived from the hello name.
        app: AppId,
        /// Oldest sequence number still replayable via
        /// [`Frame::Subscribe::from_seq`] (equals `next_seq` when nothing
        /// is retained).
        oldest_seq: u64,
        /// The sequence number the next published prediction will carry.
        next_seq: u64,
    },
    /// Server→client: something went wrong. When `retry_after_ms` is set
    /// the condition is transient (overload shedding, rate quota) and the
    /// connection stays open — the client should back off and retry.
    /// Without it the error is fatal and the server closes the connection.
    Error {
        /// Human-readable description, with the input position when known.
        message: String,
        /// Suggested backoff before retrying, for transient errors.
        retry_after_ms: Option<u64>,
    },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Data(_) => KIND_DATA,
            Frame::Subscribe { .. } => KIND_SUBSCRIBE,
            Frame::End => KIND_END,
            Frame::Shutdown => KIND_SHUTDOWN,
            Frame::Ack => KIND_ACK,
            Frame::Prediction(_) => KIND_PREDICTION,
            Frame::Stats(_) => KIND_STATS,
            Frame::Welcome { .. } => KIND_WELCOME,
            Frame::Error { .. } => KIND_ERROR,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { name } => msgpack::write_str(&mut out, name),
            Frame::Data(bytes) => out.extend_from_slice(bytes),
            Frame::Subscribe { app, from_seq } => {
                // [has_app, app, has_from_seq, from_seq]; decode also accepts
                // the 0-/1-entry forms emitted before resume existed.
                msgpack::write_array_header(&mut out, 4);
                msgpack::write_uint(&mut out, u64::from(app.is_some()));
                msgpack::write_uint(&mut out, app.map_or(0, |a| a.raw()));
                msgpack::write_uint(&mut out, u64::from(from_seq.is_some()));
                msgpack::write_uint(&mut out, from_seq.unwrap_or(0));
            }
            Frame::End | Frame::Shutdown | Frame::Ack => {}
            Frame::Prediction(p) => {
                msgpack::write_array_header(&mut out, 6);
                msgpack::write_uint(&mut out, p.app.raw());
                msgpack::write_uint(&mut out, p.seq);
                msgpack::write_f64(&mut out, p.time);
                msgpack::write_uint(&mut out, u64::from(p.period.is_some()));
                msgpack::write_f64(&mut out, p.period.unwrap_or(0.0));
                msgpack::write_f64(&mut out, p.confidence);
            }
            Frame::Stats(s) => {
                msgpack::write_array_header(&mut out, 6);
                for value in [
                    s.submitted,
                    s.rejected,
                    s.dropped,
                    s.ticks,
                    s.coalesced,
                    s.panicked,
                ] {
                    msgpack::write_uint(&mut out, value);
                }
            }
            Frame::Welcome {
                app,
                oldest_seq,
                next_seq,
            } => {
                msgpack::write_array_header(&mut out, 3);
                msgpack::write_uint(&mut out, app.raw());
                msgpack::write_uint(&mut out, *oldest_seq);
                msgpack::write_uint(&mut out, *next_seq);
            }
            Frame::Error {
                message,
                retry_after_ms,
            } => {
                msgpack::write_array_header(&mut out, 3);
                msgpack::write_str(&mut out, message);
                msgpack::write_uint(&mut out, u64::from(retry_after_ms.is_some()));
                msgpack::write_uint(&mut out, retry_after_ms.unwrap_or(0));
            }
        }
        out
    }

    /// Serialises the frame (magic + kind + length + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(7 + payload.len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Writes the encoded frame to `w` (one `write_all`, no flush).
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.encode())
    }

    fn decode(kind: u8, payload: Vec<u8>, offset: u64) -> TraceResult<Frame> {
        let err = |reason: String| {
            TraceError::malformed_snippet(
                reason,
                offset as usize,
                crate::errors::snippet_of_bytes(&payload, 0),
            )
        };
        let mut reader = msgpack::Reader::new(&payload);
        let frame = match kind {
            KIND_HELLO => Frame::Hello {
                name: reader.read_str()?,
            },
            KIND_DATA => return Ok(Frame::Data(payload)),
            KIND_SUBSCRIBE => {
                let len = reader.read_array_header()?;
                match len {
                    // Legacy forms from before resumable subscriptions.
                    0 => Frame::Subscribe {
                        app: None,
                        from_seq: None,
                    },
                    1 => Frame::Subscribe {
                        app: Some(AppId::new(reader.read_uint()?)),
                        from_seq: None,
                    },
                    4 => {
                        let has_app = reader.read_uint()? != 0;
                        let app = reader.read_uint()?;
                        let has_from = reader.read_uint()? != 0;
                        let from_seq = reader.read_uint()?;
                        Frame::Subscribe {
                            app: has_app.then(|| AppId::new(app)),
                            from_seq: has_from.then_some(from_seq),
                        }
                    }
                    n => return Err(err(format!("subscribe frame with {n} entries"))),
                }
            }
            KIND_END => Frame::End,
            KIND_SHUTDOWN => Frame::Shutdown,
            KIND_ACK => Frame::Ack,
            KIND_PREDICTION => {
                let len = reader.read_array_header()?;
                if len != 6 {
                    return Err(err(format!("prediction frame with {len} fields")));
                }
                let app = AppId::new(reader.read_uint()?);
                let seq = reader.read_uint()?;
                let time = reader.read_f64()?;
                let has_period = reader.read_uint()? != 0;
                let period = reader.read_f64()?;
                Frame::Prediction(PredictionUpdate {
                    app,
                    seq,
                    time,
                    period: has_period.then_some(period),
                    confidence: reader.read_f64()?,
                })
            }
            KIND_STATS => {
                let len = reader.read_array_header()?;
                if len != 6 {
                    return Err(err(format!("stats frame with {len} fields")));
                }
                let mut values = [0u64; 6];
                for value in values.iter_mut() {
                    *value = reader.read_uint()?;
                }
                Frame::Stats(WireStats {
                    submitted: values[0],
                    rejected: values[1],
                    dropped: values[2],
                    ticks: values[3],
                    coalesced: values[4],
                    panicked: values[5],
                })
            }
            KIND_WELCOME => {
                let len = reader.read_array_header()?;
                if len != 3 {
                    return Err(err(format!("welcome frame with {len} fields")));
                }
                Frame::Welcome {
                    app: AppId::new(reader.read_uint()?),
                    oldest_seq: reader.read_uint()?,
                    next_seq: reader.read_uint()?,
                }
            }
            // Error payloads were a bare string before `retry_after_ms`;
            // accept both (a msgpack str never starts with an array header).
            KIND_ERROR => match payload.first() {
                Some(0x90..=0x9f | 0xdc | 0xdd) => {
                    let len = reader.read_array_header()?;
                    if len != 3 {
                        return Err(err(format!("error frame with {len} fields")));
                    }
                    let message = reader.read_str()?;
                    let has_retry = reader.read_uint()? != 0;
                    let retry = reader.read_uint()?;
                    Frame::Error {
                        message,
                        retry_after_ms: has_retry.then_some(retry),
                    }
                }
                _ => Frame::Error {
                    message: reader.read_str()?,
                    retry_after_ms: None,
                },
            },
            other => return Err(err(format!("unknown frame kind 0x{other:02x}"))),
        };
        if !reader.is_at_end() {
            return Err(err(format!(
                "trailing bytes after frame payload (kind 0x{kind:02x})"
            )));
        }
        Ok(frame)
    }
}

/// Incremental frame reader over any [`Read`] stream, tracking the absolute
/// byte offset so every error is positioned.
pub struct FrameReader<R: Read> {
    inner: R,
    offset: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream positioned at a frame boundary.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, offset: 0 }
    }

    /// Bytes consumed so far (the offset of the next frame).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Consumes the reader, returning the inner stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    fn fill(&mut self, buf: &mut [u8], what: &str) -> TraceResult<()> {
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = match self.inner.read(&mut buf[filled..]) {
                Ok(n) => n,
                // Interrupted is retriable by contract; a storm of them
                // (see `crate::faultio`) must not kill the connection.
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::from(e)),
            };
            if n == 0 {
                return Err(TraceError::malformed_snippet(
                    format!("connection closed mid-frame (reading {what})"),
                    (self.offset + filled as u64) as usize,
                    String::new(),
                ));
            }
            filled += n;
        }
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Reads the next frame. Returns `Ok(None)` on clean end-of-stream (EOF
    /// exactly at a frame boundary); EOF anywhere inside a frame, a bad
    /// magic, an oversized length, or an undecodable payload is a positioned
    /// [`TraceError::Malformed`].
    pub fn read_frame(&mut self) -> TraceResult<Option<Frame>> {
        // The first magic byte decides clean-EOF vs mid-frame truncation.
        let mut first = [0u8; 1];
        loop {
            match self.inner.read(&mut first) {
                Ok(0) => return Ok(None),
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::from(e)),
            }
        }
        let frame_start = self.offset;
        self.offset += 1;
        let mut rest = [0u8; 6]; // magic[1], kind, length
        self.fill(&mut rest, "frame header")?;
        if first[0] != FRAME_MAGIC[0] || rest[0] != FRAME_MAGIC[1] {
            return Err(TraceError::malformed_snippet(
                format!(
                    "bad frame magic {:02x}{:02x} (expected {:02x}{:02x})",
                    first[0], rest[0], FRAME_MAGIC[0], FRAME_MAGIC[1]
                ),
                frame_start as usize,
                String::new(),
            ));
        }
        let kind = rest[1];
        let len = u32::from_be_bytes([rest[2], rest[3], rest[4], rest[5]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TraceError::malformed_snippet(
                format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
                frame_start as usize,
                String::new(),
            ));
        }
        let mut payload = vec![0u8; len];
        self.fill(&mut payload, "frame payload")?;
        Frame::decode(kind, payload, frame_start).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                name: "ior-run".into(),
            },
            Frame::Data(b"{\"rank\":0}\n".to_vec()),
            Frame::Data(Vec::new()),
            Frame::Subscribe {
                app: None,
                from_seq: None,
            },
            Frame::Subscribe {
                app: Some(AppId::from_name("ior-run")),
                from_seq: None,
            },
            Frame::Subscribe {
                app: Some(AppId::from_name("ior-run")),
                from_seq: Some(17),
            },
            Frame::End,
            Frame::Shutdown,
            Frame::Ack,
            Frame::Prediction(PredictionUpdate {
                app: AppId::new(42),
                seq: 3,
                time: 12.5,
                period: Some(10.0),
                confidence: 0.875,
            }),
            Frame::Prediction(PredictionUpdate {
                app: AppId::new(7),
                seq: 0,
                time: 3.0,
                period: None,
                confidence: 0.0,
            }),
            Frame::Welcome {
                app: AppId::new(42),
                oldest_seq: 5,
                next_seq: 12,
            },
            Frame::Stats(WireStats {
                submitted: 10,
                rejected: 1,
                dropped: 2,
                ticks: 5,
                coalesced: 2,
                panicked: 0,
            }),
            Frame::Error {
                message: "malformed frame at byte 12".into(),
                retry_after_ms: None,
            },
            Frame::Error {
                message: "queue full".into(),
                retry_after_ms: Some(250),
            },
        ]
    }

    #[test]
    fn frames_round_trip_individually_and_streamed() {
        let frames = all_frames();
        let mut stream = Vec::new();
        for frame in &frames {
            frame.write_to(&mut stream).unwrap();
        }
        let mut reader = FrameReader::new(&stream[..]);
        for expected in &frames {
            assert_eq!(reader.read_frame().unwrap().as_ref(), Some(expected));
        }
        assert!(reader.read_frame().unwrap().is_none());
        assert_eq!(reader.offset(), stream.len() as u64);
    }

    #[test]
    fn stats_balance_check() {
        let mut stats = WireStats {
            submitted: 10,
            rejected: 1,
            dropped: 2,
            ticks: 5,
            coalesced: 2,
            panicked: 0,
        };
        assert!(stats.is_balanced());
        stats.ticks += 1;
        assert!(!stats.is_balanced());
    }

    #[test]
    fn clean_eof_is_none_but_truncation_is_positioned() {
        let encoded = Frame::Hello { name: "app".into() }.encode();
        // Clean boundary.
        let mut reader = FrameReader::new(&encoded[..]);
        assert!(reader.read_frame().unwrap().is_some());
        assert!(reader.read_frame().unwrap().is_none());
        // Truncation at every interior byte is an error, not None.
        for cut in 1..encoded.len() {
            let mut reader = FrameReader::new(&encoded[..cut]);
            let err = reader.read_frame().expect_err("truncated frame");
            assert!(err.to_string().contains("mid-frame"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn bad_magic_and_oversized_frames_are_rejected() {
        let mut reader = FrameReader::new(&b"not a frame stream"[..]);
        let err = reader.read_frame().expect_err("bad magic");
        assert!(err.to_string().contains("bad frame magic"), "{err}");

        let mut huge = Vec::from(FRAME_MAGIC);
        huge.push(2); // Data
        huge.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut reader = FrameReader::new(&huge[..]);
        let err = reader.read_frame().expect_err("oversized frame");
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_rejected() {
        let mut frame = Vec::from(FRAME_MAGIC);
        frame.push(0x7f);
        frame.extend_from_slice(&0u32.to_be_bytes());
        let mut reader = FrameReader::new(&frame[..]);
        assert!(reader
            .read_frame()
            .expect_err("unknown kind")
            .to_string()
            .contains("unknown frame kind"));

        // An End frame must have an empty payload.
        let mut frame = Vec::from(FRAME_MAGIC);
        frame.push(4); // End
        frame.extend_from_slice(&1u32.to_be_bytes());
        frame.push(0);
        let mut reader = FrameReader::new(&frame[..]);
        assert!(reader
            .read_frame()
            .expect_err("trailing bytes")
            .to_string()
            .contains("trailing bytes"));
    }

    #[test]
    fn errors_carry_the_stream_offset() {
        // A good frame followed by garbage: the error position points past
        // the first frame.
        let mut stream = Frame::Ack.encode();
        let good_len = stream.len();
        stream.extend_from_slice(b"XYZZY..");
        let mut reader = FrameReader::new(&stream[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(Frame::Ack));
        let err = reader.read_frame().expect_err("garbage tail");
        assert!(
            err.to_string().contains(&format!("position {good_len}")),
            "{err}"
        );
    }

    fn raw_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::from(FRAME_MAGIC);
        out.push(kind);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn legacy_subscribe_and_error_payloads_still_decode() {
        // Subscribe frames from before resume support: 0- or 1-entry arrays.
        let mut all = msgpack_payload(|out| msgpack::write_array_header(out, 0));
        let mut bytes = raw_frame(3, &all);
        let mut reader = FrameReader::new(&bytes[..]);
        assert_eq!(
            reader.read_frame().unwrap(),
            Some(Frame::Subscribe {
                app: None,
                from_seq: None
            })
        );

        all = msgpack_payload(|out| {
            msgpack::write_array_header(out, 1);
            msgpack::write_uint(out, 99);
        });
        bytes = raw_frame(3, &all);
        let mut reader = FrameReader::new(&bytes[..]);
        assert_eq!(
            reader.read_frame().unwrap(),
            Some(Frame::Subscribe {
                app: Some(AppId::new(99)),
                from_seq: None
            })
        );

        // Error frames used to be a bare msgpack string.
        let legacy = msgpack_payload(|out| msgpack::write_str(out, "boom at byte 9"));
        bytes = raw_frame(19, &legacy);
        let mut reader = FrameReader::new(&bytes[..]);
        assert_eq!(
            reader.read_frame().unwrap(),
            Some(Frame::Error {
                message: "boom at byte 9".into(),
                retry_after_ms: None
            })
        );
    }

    fn msgpack_payload(build: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let mut out = Vec::new();
        build(&mut out);
        out
    }

    #[test]
    fn interrupted_storms_do_not_break_frame_reads() {
        use crate::faultio::{FaultPlan, FaultStream};
        let frames = all_frames();
        let mut stream = Vec::new();
        for frame in &frames {
            frame.write_to(&mut stream).unwrap();
        }
        let plan = FaultPlan::parse("seed=21,interrupt=0.4,short=0.6").unwrap();
        let faulty = FaultStream::new(&stream[..], plan);
        let mut reader = FrameReader::new(faulty);
        // `read_frame` must absorb every injected Interrupted and short read
        // and still produce the exact frame sequence.
        for expected in &frames {
            assert_eq!(reader.read_frame().unwrap().as_ref(), Some(expected));
        }
        assert!(reader.read_frame().unwrap().is_none());
    }

    #[test]
    fn frame_magic_is_invisible_to_the_content_sniffer() {
        use crate::source::SourceFormat;
        // The serving layer peeks one byte to route framed vs raw
        // connections; the envelope magic must never collide with a
        // sniffable trace format or the gzip transport.
        let frame = Frame::Hello { name: "app".into() }.encode();
        assert_eq!(SourceFormat::sniff(&frame), None);
        assert!(!SourceFormat::is_gzip(&frame));
    }
}
