//! MessagePack-subset binary trace format.
//!
//! TMIO can flush its records either as JSON Lines or as MessagePack (paper
//! §II-A, ref. \[22\]). This module implements the subset of the MessagePack wire
//! format needed to serialise request records compactly: positive integers
//! (fixint / uint8 / uint16 / uint32 / uint64), float64, fixstr, and arrays
//! (fixarray / array16 / array32).
//!
//! A request is encoded as a 6-element array
//! `[rank, start, end, bytes, kind, api]`, and a trace as an array of requests.
//! The encoding is self-describing enough to be read by any MessagePack
//! library, which is what makes the format attractive for the reference tool.
//!
//! The low-level [`Reader`] also understands maps, booleans, nil and float32,
//! which the TMIO-native profile layout ([`crate::tmio`]) is built from, and
//! supports resuming at a saved byte offset ([`Reader::at`]) so the streaming
//! [`crate::source::MsgpackSource`] can decode a trace incrementally.

use crate::errors::{TraceError, TraceResult};
use crate::request::{IoApi, IoKind, IoRequest};

// --- low-level encoders ----------------------------------------------------

/// Appends a MessagePack unsigned integer using the smallest representation.
pub fn write_uint(out: &mut Vec<u8>, value: u64) {
    match value {
        0..=0x7f => out.push(value as u8),
        0x80..=0xff => {
            out.push(0xcc);
            out.push(value as u8);
        }
        0x100..=0xffff => {
            out.push(0xcd);
            out.extend_from_slice(&(value as u16).to_be_bytes());
        }
        0x1_0000..=0xffff_ffff => {
            out.push(0xce);
            out.extend_from_slice(&(value as u32).to_be_bytes());
        }
        _ => {
            out.push(0xcf);
            out.extend_from_slice(&value.to_be_bytes());
        }
    }
}

/// Appends a MessagePack float64.
pub fn write_f64(out: &mut Vec<u8>, value: f64) {
    out.push(0xcb);
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a MessagePack string (fixstr or str8; trace strings are short).
pub fn write_str(out: &mut Vec<u8>, value: &str) {
    let bytes = value.as_bytes();
    if bytes.len() <= 31 {
        out.push(0xa0 | bytes.len() as u8);
    } else {
        assert!(bytes.len() <= 255, "trace strings are expected to be short");
        out.push(0xd9);
        out.push(bytes.len() as u8);
    }
    out.extend_from_slice(bytes);
}

/// Appends a MessagePack array header for `len` elements.
pub fn write_array_header(out: &mut Vec<u8>, len: usize) {
    if len <= 15 {
        out.push(0x90 | len as u8);
    } else if len <= 0xffff {
        out.push(0xdc);
        out.extend_from_slice(&(len as u16).to_be_bytes());
    } else {
        out.push(0xdd);
        out.extend_from_slice(&(len as u32).to_be_bytes());
    }
}

/// Appends a MessagePack map header for `len` key/value pairs.
pub fn write_map_header(out: &mut Vec<u8>, len: usize) {
    if len <= 15 {
        out.push(0x80 | len as u8);
    } else if len <= 0xffff {
        out.push(0xde);
        out.extend_from_slice(&(len as u16).to_be_bytes());
    } else {
        out.push(0xdf);
        out.extend_from_slice(&(len as u32).to_be_bytes());
    }
}

// --- low-level decoder -----------------------------------------------------

/// Streaming reader over a MessagePack byte buffer.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Creates a reader resuming at a saved byte offset (see
    /// [`Reader::position`]) — the streaming source uses this to continue a
    /// partially decoded document across batches.
    pub fn at(data: &'a [u8], pos: usize) -> Self {
        Reader { data, pos }
    }

    /// Current byte offset (useful for error reporting).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn take(&mut self, n: usize) -> TraceResult<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(TraceError::UnexpectedEof);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn byte(&mut self) -> TraceResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads an unsigned integer of any MessagePack width.
    pub fn read_uint(&mut self) -> TraceResult<u64> {
        let tag = self.byte()?;
        match tag {
            0x00..=0x7f => Ok(tag as u64),
            0xcc => Ok(self.byte()? as u64),
            0xcd => Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()) as u64),
            0xce => Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()) as u64),
            0xcf => Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap())),
            _ => Err(TraceError::malformed(
                format!("expected uint, found tag 0x{tag:02x}"),
                self.pos - 1,
            )),
        }
    }

    /// Reads a float64 (also accepts an integer and widens it, which keeps the
    /// format tolerant of encoders that compact whole-number timestamps).
    pub fn read_f64(&mut self) -> TraceResult<f64> {
        let tag = self
            .data
            .get(self.pos)
            .copied()
            .ok_or(TraceError::UnexpectedEof)?;
        if tag == 0xcb {
            self.pos += 1;
            let bytes = self.take(8)?;
            Ok(f64::from_be_bytes(bytes.try_into().unwrap()))
        } else if tag == 0xca {
            self.pos += 1;
            let bytes = self.take(4)?;
            Ok(f32::from_be_bytes(bytes.try_into().unwrap()) as f64)
        } else {
            Ok(self.read_uint()? as f64)
        }
    }

    /// Reads a string.
    pub fn read_str(&mut self) -> TraceResult<String> {
        let tag = self.byte()?;
        let len = match tag {
            0xa0..=0xbf => (tag & 0x1f) as usize,
            0xd9 => self.byte()? as usize,
            _ => {
                return Err(TraceError::malformed(
                    format!("expected string, found tag 0x{tag:02x}"),
                    self.pos - 1,
                ))
            }
        };
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TraceError::malformed("invalid UTF-8 in string", self.pos))
    }

    /// Reads an array header and returns the element count.
    pub fn read_array_header(&mut self) -> TraceResult<usize> {
        let tag = self.byte()?;
        match tag {
            0x90..=0x9f => Ok((tag & 0x0f) as usize),
            0xdc => Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()) as usize),
            0xdd => Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()) as usize),
            _ => Err(TraceError::malformed(
                format!("expected array, found tag 0x{tag:02x}"),
                self.pos - 1,
            )),
        }
    }

    /// Reads a map header and returns the pair count.
    pub fn read_map_header(&mut self) -> TraceResult<usize> {
        let tag = self.byte()?;
        match tag {
            0x80..=0x8f => Ok((tag & 0x0f) as usize),
            0xde => Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()) as usize),
            0xdf => Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()) as usize),
            _ => Err(TraceError::malformed(
                format!("expected map, found tag 0x{tag:02x}"),
                self.pos - 1,
            )),
        }
    }

    /// Skips one value of any supported type — how the TMIO profile reader
    /// steps over counters it does not consume.
    pub fn skip_value(&mut self) -> TraceResult<()> {
        let tag = self
            .data
            .get(self.pos)
            .copied()
            .ok_or(TraceError::UnexpectedEof)?;
        match tag {
            // nil / booleans / fixints.
            0xc0 | 0xc2 | 0xc3 | 0x00..=0x7f | 0xe0..=0xff => {
                self.pos += 1;
                Ok(())
            }
            0xcc | 0xd0 => self.take(2).map(|_| ()),
            0xcd | 0xd1 => self.take(3).map(|_| ()),
            0xca | 0xce | 0xd2 => self.take(5).map(|_| ()),
            0xcb | 0xcf | 0xd3 => self.take(9).map(|_| ()),
            0xa0..=0xbf | 0xd9 => self.read_str().map(|_| ()),
            0x90..=0x9f | 0xdc | 0xdd => {
                let len = self.read_array_header()?;
                for _ in 0..len {
                    self.skip_value()?;
                }
                Ok(())
            }
            0x80..=0x8f | 0xde | 0xdf => {
                let len = self.read_map_header()?;
                for _ in 0..len {
                    self.skip_value()?;
                    self.skip_value()?;
                }
                Ok(())
            }
            other => Err(TraceError::malformed(
                format!("cannot skip unsupported MessagePack tag 0x{other:02x}"),
                self.pos,
            )),
        }
    }
}

// --- request-level encoding ------------------------------------------------

/// Encodes one request as a 6-element MessagePack array.
pub fn encode_request(out: &mut Vec<u8>, r: &IoRequest) {
    write_array_header(out, 6);
    write_uint(out, r.rank as u64);
    write_f64(out, r.start);
    write_f64(out, r.end);
    write_uint(out, r.bytes);
    write_str(out, r.kind.as_str());
    write_str(out, r.api.as_str());
}

/// Encodes a batch of requests as a MessagePack array of request arrays.
pub fn encode_requests(requests: &[IoRequest]) -> Vec<u8> {
    let mut out = Vec::with_capacity(requests.len() * 32 + 8);
    write_array_header(&mut out, requests.len());
    for r in requests {
        encode_request(&mut out, r);
    }
    out
}

/// Decodes one request from the reader.
pub fn decode_request(reader: &mut Reader<'_>) -> TraceResult<IoRequest> {
    let len = reader.read_array_header()?;
    if len != 6 {
        return Err(TraceError::malformed(
            format!("request array must have 6 elements, found {len}"),
            reader.position(),
        ));
    }
    let rank = reader.read_uint()? as usize;
    let start = reader.read_f64()?;
    let end = reader.read_f64()?;
    let bytes = reader.read_uint()?;
    let kind_str = reader.read_str()?;
    let api_str = reader.read_str()?;
    let kind = IoKind::parse(&kind_str)
        .ok_or_else(|| TraceError::invalid("kind", format!("unknown kind `{kind_str}`")))?;
    let api = IoApi::parse(&api_str)
        .ok_or_else(|| TraceError::invalid("api", format!("unknown api `{api_str}`")))?;
    Ok(IoRequest {
        rank,
        start,
        end,
        bytes,
        kind,
        api,
    })
}

/// Decodes a full MessagePack trace document — a thin adapter that drains the
/// streaming [`crate::source::MsgpackSource`], so whole-file decoding and
/// chunked ingestion share one code path (and one error vocabulary: truncated
/// input reports its byte offset and a hex snippet).
pub fn decode_requests(data: &[u8]) -> TraceResult<Vec<IoRequest>> {
    // The source is generic over the byte holder, so this borrows `data`
    // zero-copy instead of cloning the document.
    let mut source = crate::source::MsgpackSource::new(
        data,
        crate::app_id::AppId::from_name("msgpack"),
        crate::source::DEFAULT_BATCH_SIZE,
    )?;
    crate::source::drain_requests(&mut source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_widths_round_trip() {
        for &v in &[
            0u64,
            1,
            127,
            128,
            255,
            256,
            65535,
            65536,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_uint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.read_uint().unwrap(), v);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn uint_encodings_are_minimal() {
        let sizes = [
            (5u64, 1usize),
            (200, 2),
            (60000, 3),
            (100_000, 5),
            (1 << 40, 9),
        ];
        for (v, expected) in sizes {
            let mut buf = Vec::new();
            write_uint(&mut buf, v);
            assert_eq!(buf.len(), expected, "value {v}");
        }
    }

    #[test]
    fn float_and_string_round_trip() {
        let mut buf = Vec::new();
        write_f64(&mut buf, 123.456);
        write_str(&mut buf, "write");
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_f64().unwrap(), 123.456);
        assert_eq!(r.read_str().unwrap(), "write");
    }

    #[test]
    fn long_strings_use_str8() {
        let s = "x".repeat(100);
        let mut buf = Vec::new();
        write_str(&mut buf, &s);
        assert_eq!(buf[0], 0xd9);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_str().unwrap(), s);
    }

    #[test]
    fn request_round_trip() {
        let req = IoRequest::write(42, 10.5, 11.25, 2_000_000_000);
        let mut buf = Vec::new();
        encode_request(&mut buf, &req);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_request(&mut r).unwrap(), req);
    }

    #[test]
    fn trace_round_trip_with_many_requests() {
        let requests: Vec<IoRequest> = (0..1000)
            .map(|i| {
                IoRequest::write(
                    i % 32,
                    i as f64 * 0.1,
                    i as f64 * 0.1 + 0.05,
                    i as u64 * 512,
                )
            })
            .collect();
        let buf = encode_requests(&requests);
        let back = decode_requests(&buf).unwrap();
        assert_eq!(back, requests);
    }

    #[test]
    fn large_batches_use_array16_header() {
        let requests: Vec<IoRequest> = (0..20).map(|i| IoRequest::read(i, 0.0, 1.0, 1)).collect();
        let buf = encode_requests(&requests);
        assert_eq!(buf[0], 0xdc);
        assert_eq!(decode_requests(&buf).unwrap().len(), 20);
    }

    #[test]
    fn truncated_buffer_reports_offset_and_snippet() {
        let req = IoRequest::write(1, 0.0, 1.0, 100);
        let mut buf = Vec::new();
        write_array_header(&mut buf, 1);
        encode_request(&mut buf, &req);
        buf.truncate(buf.len() - 3);
        let err = decode_requests(&buf).unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");
        // The reported offset is where the truncated record begins, and the
        // snippet shows the bytes around it.
        assert!(err.contains("position 1"), "{err}");
        assert!(err.contains("near `"), "{err}");
    }

    #[test]
    fn maps_bools_and_f32_round_trip() {
        let mut buf = Vec::new();
        write_map_header(&mut buf, 2);
        write_str(&mut buf, "a");
        write_uint(&mut buf, 7);
        write_str(&mut buf, "b");
        buf.push(0xca);
        buf.extend_from_slice(&2.5f32.to_be_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_map_header().unwrap(), 2);
        assert_eq!(r.read_str().unwrap(), "a");
        assert_eq!(r.read_uint().unwrap(), 7);
        assert_eq!(r.read_str().unwrap(), "b");
        assert_eq!(r.read_f64().unwrap(), 2.5);
        assert!(r.is_at_end());
        // A large map takes the map16 header.
        let mut big = Vec::new();
        write_map_header(&mut big, 20);
        assert_eq!(big[0], 0xde);
        let mut r = Reader::new(&big);
        assert_eq!(r.read_map_header().unwrap(), 20);
    }

    #[test]
    fn skip_value_steps_over_nested_structures() {
        let mut buf = Vec::new();
        // {"x": [1, "two", 3.0], "y": {"z": null}} followed by a sentinel.
        write_map_header(&mut buf, 2);
        write_str(&mut buf, "x");
        write_array_header(&mut buf, 3);
        write_uint(&mut buf, 1);
        write_str(&mut buf, "two");
        write_f64(&mut buf, 3.0);
        write_str(&mut buf, "y");
        write_map_header(&mut buf, 1);
        write_str(&mut buf, "z");
        buf.push(0xc0); // nil
        write_uint(&mut buf, 42);
        let mut r = Reader::new(&buf);
        r.skip_value().unwrap();
        assert_eq!(r.read_uint().unwrap(), 42);
        assert!(r.is_at_end());
    }

    #[test]
    fn reader_resumes_at_saved_position() {
        let mut buf = Vec::new();
        write_uint(&mut buf, 300);
        write_uint(&mut buf, 7);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_uint().unwrap(), 300);
        let pos = r.position();
        let mut resumed = Reader::at(&buf, pos);
        assert_eq!(resumed.read_uint().unwrap(), 7);
    }

    #[test]
    fn wrong_tag_is_a_malformed_error() {
        // A float where an array header is expected.
        let mut buf = Vec::new();
        write_f64(&mut buf, 1.0);
        let err = decode_requests(&buf).unwrap_err();
        assert!(err.to_string().contains("expected array"));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let mut buf = Vec::new();
        write_array_header(&mut buf, 1);
        write_array_header(&mut buf, 2);
        write_uint(&mut buf, 0);
        write_uint(&mut buf, 1);
        let err = decode_requests(&buf).unwrap_err();
        assert!(err.to_string().contains("6 elements"));
    }

    #[test]
    fn binary_is_smaller_than_jsonl() {
        let requests: Vec<IoRequest> = (0..200)
            .map(|i| IoRequest::write(i % 16, i as f64, i as f64 + 0.5, 1_048_576))
            .collect();
        let packed = encode_requests(&requests);
        let text = crate::jsonl::encode_requests(&requests);
        assert!(packed.len() < text.len());
    }
}
