//! JSON Lines trace format.
//!
//! TMIO's online mode appends one JSON object per flushed request to a trace
//! file (paper §II-A: "JSON Lines or MessagePack"). This module implements the
//! same idea with a small, hand-written encoder and parser — one request per
//! line, no external JSON dependency. Lines look like:
//!
//! ```text
//! {"rank":3,"start":1.25,"end":1.75,"bytes":1048576,"kind":"write","api":"sync"}
//! ```
//!
//! The parser is deliberately forgiving about key order and whitespace but
//! strict about required fields, and skips blank lines.

use crate::errors::{TraceError, TraceResult};
use crate::request::{IoApi, IoKind, IoRequest};

/// Encodes a single request as one JSON line (without the trailing newline).
pub fn encode_request(r: &IoRequest) -> String {
    format!(
        "{{\"rank\":{},\"start\":{},\"end\":{},\"bytes\":{},\"kind\":\"{}\",\"api\":\"{}\"}}",
        r.rank,
        fmt_f64(r.start),
        fmt_f64(r.end),
        r.bytes,
        r.kind.as_str(),
        r.api.as_str()
    )
}

/// Encodes a batch of requests as a JSON Lines document (one line per request,
/// each terminated by `\n`).
pub fn encode_requests(requests: &[IoRequest]) -> String {
    let mut out = String::new();
    for r in requests {
        out.push_str(&encode_request(r));
        out.push('\n');
    }
    out
}

/// Parses one JSON line into a request.
pub fn decode_request(line: &str, line_number: usize) -> TraceResult<IoRequest> {
    let fields = parse_flat_object(line, line_number)?;
    let get = |key: &str| -> TraceResult<&JsonValue> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| TraceError::malformed(format!("missing field `{key}`"), line_number))
    };

    let rank = get("rank")?
        .as_u64()
        .ok_or_else(|| TraceError::invalid("rank", "not an integer"))?;
    let start = get("start")?
        .as_f64()
        .ok_or_else(|| TraceError::invalid("start", "not a number"))?;
    let end = get("end")?
        .as_f64()
        .ok_or_else(|| TraceError::invalid("end", "not a number"))?;
    let bytes = get("bytes")?
        .as_u64()
        .ok_or_else(|| TraceError::invalid("bytes", "not an integer"))?;
    let kind_str = get("kind")?
        .as_str()
        .ok_or_else(|| TraceError::invalid("kind", "not a string"))?;
    let kind = IoKind::parse(kind_str)
        .ok_or_else(|| TraceError::invalid("kind", format!("unknown kind `{kind_str}`")))?;
    // `api` is optional; default to sync.
    let api = match fields.iter().find(|(k, _)| k == "api") {
        Some((_, v)) => {
            let s = v
                .as_str()
                .ok_or_else(|| TraceError::invalid("api", "not a string"))?;
            IoApi::parse(s)
                .ok_or_else(|| TraceError::invalid("api", format!("unknown api `{s}`")))?
        }
        None => IoApi::Sync,
    };

    Ok(IoRequest {
        rank: rank as usize,
        start,
        end,
        bytes,
        kind,
        api,
    })
}

/// Parses a whole JSON Lines document — a thin adapter that drains the
/// streaming [`crate::source::JsonlSource`], so whole-file decoding and
/// chunked ingestion share one code path. Blank lines are skipped; the first
/// malformed line aborts with an error naming its line number and quoting the
/// offending input.
pub fn decode_requests(text: &str) -> TraceResult<Vec<IoRequest>> {
    let mut source = crate::source::JsonlSource::new(
        text.as_bytes(),
        crate::app_id::AppId::from_name("jsonl"),
        crate::source::DEFAULT_BATCH_SIZE,
    );
    crate::source::drain_requests(&mut source)
}

/// Formats an `f64` so it parses back exactly and never uses exponent notation
/// for the magnitudes that occur in traces.
fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{x}")
    }
}

/// A scalar JSON value as found in flat trace records.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Number(f64),
    String(String),
    Bool(bool),
    Null,
}

impl JsonValue {
    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a flat (non-nested) JSON object into key/value pairs.
fn parse_flat_object(line: &str, line_number: usize) -> TraceResult<Vec<(String, JsonValue)>> {
    let mut chars = line.trim().chars().peekable();
    let mut pairs = Vec::new();

    expect_char(&mut chars, '{', line_number)?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        return Ok(pairs);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars, line_number)?;
        skip_ws(&mut chars);
        expect_char(&mut chars, ':', line_number)?;
        skip_ws(&mut chars);
        let value = parse_value(&mut chars, line_number)?;
        pairs.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            Some(c) => {
                return Err(TraceError::malformed(
                    format!("expected `,` or `}}`, found `{c}`"),
                    line_number,
                ))
            }
            None => return Err(TraceError::UnexpectedEof),
        }
    }
    Ok(pairs)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn expect_char(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    expected: char,
    line_number: usize,
) -> TraceResult<()> {
    match chars.next() {
        Some(c) if c == expected => Ok(()),
        Some(c) => Err(TraceError::malformed(
            format!("expected `{expected}`, found `{c}`"),
            line_number,
        )),
        None => Err(TraceError::UnexpectedEof),
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line_number: usize,
) -> TraceResult<String> {
    expect_char(chars, '"', line_number)?;
    let mut s = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                Some(c) => s.push(c),
                None => return Err(TraceError::UnexpectedEof),
            },
            Some(c) => s.push(c),
            None => return Err(TraceError::UnexpectedEof),
        }
    }
}

fn parse_value(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line_number: usize,
) -> TraceResult<JsonValue> {
    match chars.peek() {
        Some('"') => Ok(JsonValue::String(parse_string(chars, line_number)?)),
        Some('t') | Some('f') | Some('n') => {
            let mut word = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                word.push(chars.next().unwrap());
            }
            match word.as_str() {
                "true" => Ok(JsonValue::Bool(true)),
                "false" => Ok(JsonValue::Bool(false)),
                "null" => Ok(JsonValue::Null),
                other => Err(TraceError::malformed(
                    format!("unknown literal `{other}`"),
                    line_number,
                )),
            }
        }
        Some(c) if c.is_ascii_digit() || *c == '-' || *c == '+' => {
            let mut num = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                num.push(chars.next().unwrap());
            }
            num.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| TraceError::malformed(format!("invalid number `{num}`"), line_number))
        }
        Some(c) => Err(TraceError::malformed(
            format!("unexpected character `{c}`"),
            line_number,
        )),
        None => Err(TraceError::UnexpectedEof),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_request() {
        let r = IoRequest::write(7, 1.25, 2.5, 1_048_576);
        let line = encode_request(&r);
        let back = decode_request(&line, 1).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_many_requests() {
        let requests: Vec<IoRequest> = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    IoRequest::write(i, i as f64 * 0.5, i as f64 * 0.5 + 0.1, 1000 + i as u64)
                } else {
                    IoRequest::read(i, i as f64, i as f64 + 1.0, 42)
                }
            })
            .collect();
        let doc = encode_requests(&requests);
        assert_eq!(doc.lines().count(), 50);
        let back = decode_requests(&doc).unwrap();
        assert_eq!(back, requests);
    }

    #[test]
    fn decoder_accepts_whitespace_and_reordered_keys() {
        let line = r#" { "bytes": 10 , "kind" : "read", "end": 2.0, "start": 1.0, "rank": 4 } "#;
        let r = decode_request(line.trim(), 1).unwrap();
        assert_eq!(r.rank, 4);
        assert_eq!(r.kind, IoKind::Read);
        assert_eq!(r.api, IoApi::Sync);
        assert_eq!(r.bytes, 10);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let doc = format!(
            "\n{}\n\n{}\n",
            encode_request(&IoRequest::write(0, 0.0, 1.0, 1)),
            encode_request(&IoRequest::write(1, 1.0, 2.0, 2))
        );
        let back = decode_requests(&doc).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn missing_field_is_an_error() {
        let line = r#"{"rank":1,"start":0.0,"end":1.0,"kind":"write"}"#;
        let err = decode_request(line, 3).unwrap_err();
        assert!(err.to_string().contains("bytes"));
        assert!(err.to_string().contains("position 3"));
    }

    #[test]
    fn invalid_kind_is_an_error() {
        let line = r#"{"rank":1,"start":0.0,"end":1.0,"bytes":5,"kind":"scribble"}"#;
        let err = decode_request(line, 1).unwrap_err();
        assert!(err.to_string().contains("kind"));
    }

    #[test]
    fn negative_bytes_is_an_error() {
        let line = r#"{"rank":1,"start":0.0,"end":1.0,"bytes":-5,"kind":"write"}"#;
        assert!(decode_request(line, 1).is_err());
    }

    #[test]
    fn garbage_line_reports_its_line_number() {
        let doc = format!(
            "{}\nnot json at all\n",
            encode_request(&IoRequest::write(0, 0.0, 1.0, 1))
        );
        let err = decode_requests(&doc).unwrap_err();
        assert!(err.to_string().contains("position 2"));
    }

    #[test]
    fn scientific_notation_and_fractions_parse() {
        let line =
            r#"{"rank":0,"start":1.5e2,"end":151.25,"bytes":1000000,"kind":"write","api":"async"}"#;
        let r = decode_request(line, 1).unwrap();
        assert_eq!(r.start, 150.0);
        assert_eq!(r.end, 151.25);
        assert_eq!(r.api, IoApi::Async);
    }

    #[test]
    fn float_formatting_round_trips_integers_and_fractions() {
        for &x in &[0.0, 1.0, 1.5, 123456.789, 0.0001, 781.3] {
            let s = fmt_f64(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "formatting {x} as {s}");
        }
    }

    #[test]
    fn empty_document_decodes_to_empty_vec() {
        assert!(decode_requests("").unwrap().is_empty());
        assert!(decode_requests("\n\n").unwrap().is_empty());
    }
}
