//! Deterministic fault injection for byte streams.
//!
//! Robustness claims about the serving layer are only as good as the failure
//! paths that have actually been executed. This module makes those paths
//! reachable on demand: [`FaultStream`] wraps any [`Read`]/[`Write`] and
//! perturbs the traffic flowing through it according to a seeded
//! [`FaultPlan`] — short reads and writes, `Interrupted`/`WouldBlock`
//! storms, mid-stream truncation, single-bit corruption, and stalls.
//!
//! Everything is driven by a [`rand::rngs::StdRng`] seeded from the plan, so
//! a failing chaos run reproduces from its plan string alone. The same plans
//! are used by `tests/chaos.rs` (wrapping the client side of real daemon
//! sessions) and by `ftio client --inject <plan>` for manual poking.
//!
//! # Plan DSL
//!
//! A plan is a comma-separated list of `key=value` fields:
//!
//! ```text
//! seed=42,short=0.3,interrupt=0.2,corrupt=0.01,truncate=512,stall=128x5
//! ```
//!
//! | field        | meaning                                                         |
//! |--------------|-----------------------------------------------------------------|
//! | `seed=N`     | RNG seed (default 0)                                            |
//! | `short=P`    | probability an op transfers only 1 byte                         |
//! | `interrupt=P`| probability an op fails with `ErrorKind::Interrupted` first     |
//! | `wouldblock=P`| probability an op fails with `ErrorKind::WouldBlock` first     |
//! | `corrupt=P`  | probability an op flips one random bit in its chunk             |
//! | `truncate=N` | after N bytes: reads see EOF, writes see `BrokenPipe`           |
//! | `stall=NxM`  | sleep M milliseconds every N transferred bytes                  |
//!
//! Probabilities are in `[0, 1]`. Read and write directions keep independent
//! byte counters but share the RNG, so interleaving affects the draw order —
//! determinism holds for a fixed call sequence, which is what a test makes.

use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parsed, seeded description of which faults to inject and how often.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; two streams built from equal plans behave identically.
    pub seed: u64,
    /// Probability that a read/write transfers only a single byte.
    pub short: f64,
    /// Probability that an op returns [`ErrorKind::Interrupted`] before
    /// doing any work.
    pub interrupt: f64,
    /// Probability that an op returns [`ErrorKind::WouldBlock`] before
    /// doing any work.
    pub would_block: f64,
    /// Probability that an op flips one random bit in the transferred chunk.
    pub corrupt: f64,
    /// Hard cut: once this many bytes have moved in a direction, reads
    /// return EOF and writes return [`ErrorKind::BrokenPipe`].
    pub truncate_after: Option<u64>,
    /// `Some((every, millis))`: sleep `millis` each time another `every`
    /// bytes have been transferred in a direction.
    pub stall: Option<(u64, u64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            short: 0.0,
            interrupt: 0.0,
            would_block: 0.0,
            corrupt: 0.0,
            truncate_after: None,
            stall: None,
        }
    }
}

impl FaultPlan {
    /// Parses the `key=value,...` DSL described in the module docs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for field in spec.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault plan field `{field}` is not key=value"))?;
            let prob = |what: &str| -> Result<f64, String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("fault plan {what}=`{value}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault plan {what}={value} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault plan seed=`{value}` is not an integer"))?;
                }
                "short" => plan.short = prob("short")?,
                "interrupt" => plan.interrupt = prob("interrupt")?,
                "wouldblock" => plan.would_block = prob("wouldblock")?,
                "corrupt" => plan.corrupt = prob("corrupt")?,
                "truncate" => {
                    plan.truncate_after =
                        Some(value.parse().map_err(|_| {
                            format!("fault plan truncate=`{value}` is not an integer")
                        })?);
                }
                "stall" => {
                    let (every, ms) = value.split_once('x').ok_or_else(|| {
                        format!("fault plan stall=`{value}` is not <bytes>x<millis>")
                    })?;
                    let every: u64 = every.parse().map_err(|_| {
                        format!("fault plan stall bytes `{every}` is not an integer")
                    })?;
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("fault plan stall millis `{ms}` is not an integer"))?;
                    if every == 0 {
                        return Err("fault plan stall byte interval must be > 0".into());
                    }
                    plan.stall = Some((every, ms));
                }
                other => return Err(format!("unknown fault plan field `{other}`")),
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing (every knob at its default).
    pub fn is_noop(&self) -> bool {
        let FaultPlan {
            seed: _,
            short,
            interrupt,
            would_block,
            corrupt,
            truncate_after,
            stall,
        } = self;
        *short == 0.0
            && *interrupt == 0.0
            && *would_block == 0.0
            && *corrupt == 0.0
            && truncate_after.is_none()
            && stall.is_none()
    }
}

/// Per-direction transfer accounting for a [`FaultStream`].
#[derive(Clone, Copy, Debug, Default)]
struct DirectionState {
    /// Bytes actually transferred in this direction.
    bytes: u64,
    /// Bytes transferred at the last stall, for the `stall=NxM` schedule.
    last_stall: u64,
}

/// A [`Read`]+[`Write`] wrapper that injects the faults described by a
/// [`FaultPlan`] into every operation on the inner stream.
pub struct FaultStream<S> {
    inner: S,
    plan: FaultPlan,
    rng: StdRng,
    read_state: DirectionState,
    write_state: DirectionState,
}

impl<S> FaultStream<S> {
    /// Wraps `inner`, seeding the fault RNG from the plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultStream {
            inner,
            plan,
            rng,
            read_state: DirectionState::default(),
            write_state: DirectionState::default(),
        }
    }

    /// Bytes actually read through the wrapper so far.
    pub fn bytes_read(&self) -> u64 {
        self.read_state.bytes
    }

    /// Bytes actually written through the wrapper so far.
    pub fn bytes_written(&self) -> u64 {
        self.write_state.bytes
    }

    /// Consumes the wrapper, returning the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Rolls the pre-transfer faults shared by both directions. Returns the
    /// error to surface, if any.
    fn roll_pre_faults(&mut self) -> Option<std::io::Error> {
        if self.plan.interrupt > 0.0 && self.rng.gen_bool(self.plan.interrupt) {
            return Some(std::io::Error::new(
                ErrorKind::Interrupted,
                "injected interrupt",
            ));
        }
        if self.plan.would_block > 0.0 && self.rng.gen_bool(self.plan.would_block) {
            return Some(std::io::Error::new(
                ErrorKind::WouldBlock,
                "injected would-block",
            ));
        }
        None
    }

    /// Caps an op's length to 1 byte with probability `short`, and to the
    /// remaining pre-truncation budget always. `len` must be > 0.
    fn cap_len(&mut self, len: usize, transferred: u64) -> usize {
        let mut cap = len;
        if self.plan.short > 0.0 && self.rng.gen_bool(self.plan.short) {
            cap = 1;
        }
        if let Some(limit) = self.plan.truncate_after {
            let left = limit.saturating_sub(transferred);
            cap = cap.min(left as usize);
        }
        cap
    }

    /// Applies the post-transfer stall schedule for one direction.
    fn maybe_stall(stall: Option<(u64, u64)>, state: &mut DirectionState) {
        if let Some((every, ms)) = stall {
            if state.bytes - state.last_stall >= every {
                state.last_stall = state.bytes;
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
    }

    /// Flips one random bit of `chunk` with probability `corrupt`.
    fn maybe_corrupt(&mut self, chunk: &mut [u8]) {
        if chunk.is_empty() || self.plan.corrupt == 0.0 {
            return;
        }
        if self.rng.gen_bool(self.plan.corrupt) {
            let byte = self.rng.gen_range(0..chunk.len());
            let bit = self.rng.gen_range(0..8u32);
            chunk[byte] ^= 1u8 << bit;
        }
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        if let Some(limit) = self.plan.truncate_after {
            if self.read_state.bytes >= limit {
                return Ok(0); // injected EOF
            }
        }
        if let Some(err) = self.roll_pre_faults() {
            return Err(err);
        }
        let cap = self.cap_len(buf.len(), self.read_state.bytes).max(1);
        let n = self.inner.read(&mut buf[..cap])?;
        self.maybe_corrupt(&mut buf[..n]);
        self.read_state.bytes += n as u64;
        Self::maybe_stall(self.plan.stall, &mut self.read_state);
        Ok(n)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if let Some(limit) = self.plan.truncate_after {
            if self.write_state.bytes >= limit {
                return Err(std::io::Error::new(
                    ErrorKind::BrokenPipe,
                    "injected truncation",
                ));
            }
        }
        if let Some(err) = self.roll_pre_faults() {
            return Err(err);
        }
        let cap = self.cap_len(buf.len(), self.write_state.bytes).max(1);
        let mut chunk = buf[..cap].to_vec();
        self.maybe_corrupt(&mut chunk);
        let n = self.inner.write(&chunk)?;
        self.write_state.bytes += n as u64;
        Self::maybe_stall(self.plan.stall, &mut self.write_state);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn the_dsl_round_trips_every_field() {
        let plan = FaultPlan::parse(
            "seed=42,short=0.3,interrupt=0.2,wouldblock=0.1,corrupt=0.01,truncate=512,stall=128x5",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.short, 0.3);
        assert_eq!(plan.interrupt, 0.2);
        assert_eq!(plan.would_block, 0.1);
        assert_eq!(plan.corrupt, 0.01);
        assert_eq!(plan.truncate_after, Some(512));
        assert_eq!(plan.stall, Some((128, 5)));
        assert!(!plan.is_noop());
        assert!(FaultPlan::parse("seed=7").unwrap().is_noop());
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn malformed_plans_are_rejected_with_the_field_named() {
        for (spec, needle) in [
            ("bogus=1", "unknown fault plan field"),
            ("short=2.0", "outside [0, 1]"),
            ("short=x", "not a number"),
            ("seed=abc", "not an integer"),
            ("stall=128", "<bytes>x<millis>"),
            ("stall=0x5", "must be > 0"),
            ("short", "not key=value"),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn same_seed_means_same_faults() {
        let plan = FaultPlan::parse("seed=9,short=0.5,interrupt=0.3").unwrap();
        let data: Vec<u8> = (0..=255u8).collect();
        let run = || {
            let mut stream = FaultStream::new(Cursor::new(data.clone()), plan.clone());
            let mut log = Vec::new();
            let mut buf = [0u8; 16];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => log.push(Ok(n)),
                    Err(e) => log.push(Err(e.kind())),
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn interrupt_and_short_read_storms_do_not_lose_bytes() {
        let data: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let plan = FaultPlan::parse("seed=3,short=0.7,interrupt=0.4").unwrap();
        let mut stream = FaultStream::new(Cursor::new(data.clone()), plan);
        let mut out = Vec::new();
        let mut buf = [0u8; 32];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, data);
        assert_eq!(stream.bytes_read(), data.len() as u64);
    }

    #[test]
    fn truncation_cuts_reads_to_eof_and_writes_to_broken_pipe() {
        let plan = FaultPlan::parse("truncate=10").unwrap();
        let mut stream = FaultStream::new(Cursor::new(vec![7u8; 64]), plan.clone());
        let mut out = Vec::new();
        std::io::Read::read_to_end(&mut stream, &mut out).unwrap();
        assert_eq!(out.len(), 10);

        let mut stream = FaultStream::new(Vec::new(), plan);
        assert!(stream.write_all(&[1u8; 10]).is_ok());
        let err = stream.write_all(&[2u8; 1]).expect_err("past the cut");
        assert_eq!(err.kind(), ErrorKind::BrokenPipe);
        assert_eq!(stream.bytes_written(), 10);
    }

    #[test]
    fn corruption_flips_bits_deterministically() {
        let data = vec![0u8; 256];
        // `short=1.0` forces single-byte reads so corruption gets many rolls.
        let plan = FaultPlan::parse("seed=11,corrupt=0.5,short=1.0").unwrap();
        let mut stream = FaultStream::new(Cursor::new(data.clone()), plan.clone());
        let mut out = Vec::new();
        std::io::Read::read_to_end(&mut stream, &mut out).unwrap();
        assert_eq!(out.len(), data.len());
        assert!(out.iter().any(|&b| b != 0), "no bit was flipped");

        let mut again = FaultStream::new(Cursor::new(data), plan);
        let mut out2 = Vec::new();
        std::io::Read::read_to_end(&mut again, &mut out2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn write_side_corruption_never_changes_the_inner_length() {
        let plan = FaultPlan::parse("seed=5,corrupt=1.0,short=0.5").unwrap();
        let mut stream = FaultStream::new(Vec::new(), plan);
        let payload = vec![0xAAu8; 100];
        stream.write_all(&payload).unwrap();
        assert_eq!(stream.bytes_written(), 100);
        let inner = stream.into_inner();
        assert_eq!(inner.len(), 100);
        assert!(inner.iter().any(|&b| b != 0xAA), "no corruption happened");
    }
}
